"""A distributed control pipeline with RPC messages on a shared bus.

Demonstrates the part of Sec. 2.4 the paper's own example skips: when caller
and callee live on different nodes, each synchronous call contributes a
request and a reply message scheduled on a network platform ("the network is
similar to a computational node").

Topology: a Controller node samples a remote IO node every 20 ms over a
CAN-like bus (125 kbit/s ~ 15.6 bytes/ms) and actuates locally; a Logger
node shares the same bus with lower-priority telemetry.

Run:  python examples/distributed_pipeline.py
"""

from repro import SystemAssembly, analyze
from repro.components import (
    CallStep,
    Component,
    EventThread,
    PeriodicThread,
    ProvidedMethod,
    RequiredMethod,
    TaskStep,
)
from repro.platforms import (
    LinearSupplyPlatform,
    Message,
    NetworkLinkPlatform,
)
from repro.sim import validate_against_analysis

# --- components ---------------------------------------------------------------
# The sampler serves two clients: the 20 ms control loop plus the 100 ms
# telemetry -- an aggregate rate of 0.06 calls/ms, so the provided MIT must
# be at most 1/0.06 ~ 16.6 ms (the assembly validator enforces this).
io_node = Component(
    name="RemoteIO",
    provided=[ProvidedMethod("sample", mit=15.0)],
    threads=[
        EventThread(
            name="sampler",
            realizes="sample",
            priority=2,
            body=[TaskStep("adc_read", wcet=1.2, bcet=0.6)],
        )
    ],
)

controller = Component(
    name="Controller",
    required=[RequiredMethod("io", mit=20.0)],
    threads=[
        PeriodicThread(
            name="loop",
            period=20.0,
            deadline=20.0,
            priority=3,
            body=[
                TaskStep("precompute", wcet=0.8, bcet=0.4),
                CallStep("io"),
                TaskStep("control_law", wcet=2.0, bcet=1.0),
                TaskStep("actuate", wcet=0.5, bcet=0.3),
            ],
        )
    ],
)

logger = Component(
    name="Logger",
    required=[RequiredMethod("io", mit=100.0)],
    threads=[
        PeriodicThread(
            name="telemetry",
            period=100.0,
            deadline=100.0,
            priority=1,
            body=[CallStep("io"), TaskStep("store", wcet=4.0, bcet=2.0)],
        )
    ],
)

# --- assembly -----------------------------------------------------------------
asm = SystemAssembly(name="distributed-pipeline")
asm.add_instance("IO", io_node)
asm.add_instance("Ctrl", controller)
asm.add_instance("Log", logger)

# Abstract CPU shares (one per node) and the bus as a platform.  The bus
# carries 15.6 bytes per ms; the synchronous window gives control traffic
# 70% of it, with a worst-case arbitration delay of one max frame (~0.9 ms).
asm.add_platform("cpu.io", LinearSupplyPlatform(0.5, 1.0, 0.0, name="cpu.io"))
asm.add_platform("cpu.ctrl", LinearSupplyPlatform(0.6, 0.5, 0.0, name="cpu.ctrl"))
asm.add_platform("cpu.log", LinearSupplyPlatform(0.3, 2.0, 0.0, name="cpu.log"))
asm.add_platform(
    "bus",
    NetworkLinkPlatform(
        bandwidth=15.6,            # bytes per ms
        share=0.7,
        arbitration_delay=0.9,     # one maximal frame
        frame_overhead=6.0,        # CAN header+CRC bytes
        name="bus",
    ),
)
asm.place("IO", platform="cpu.io")
asm.place("Ctrl", platform="cpu.ctrl")
asm.place("Log", platform="cpu.log")

asm.bind(
    "Ctrl", "io", "IO", "sample",
    request=Message(payload=2.0, priority=5, name="ctrl.req"),
    reply=Message(payload=8.0, priority=5, name="ctrl.rep"),
    network="bus",
)
asm.bind(
    "Log", "io", "IO", "sample",
    request=Message(payload=2.0, priority=1, name="log.req"),
    reply=Message(payload=8.0, priority=1, name="log.rep"),
    network="bus",
)

# --- derive, analyze, validate ---------------------------------------------------
system = asm.derive_transactions()
print("derived transactions:")
for tr in system:
    chain = " -> ".join(
        f"{t.name}[{'net' if t.meta.get('kind') == 'message' else 'cpu'}]"
        for t in tr.tasks
    )
    print(f"  {tr.name} (T={tr.period:g}): {chain}")

result = analyze(system, trace=True)
print(f"\nschedulable: {result.schedulable} "
      f"({result.outer_iterations} outer iterations)")
for i, tr in enumerate(system):
    print(f"  {tr.name}: end-to-end R = {result.transaction_wcrt[i]:.2f} ms, "
          f"D = {tr.deadline:g} ms, slack = {result.slack(i):.2f} ms")

bus_index = 3
bus_util = system.utilization(bus_index)
print(f"\nbus utilization (of the reserved window): {bus_util:.1%}")

report = validate_against_analysis(system, horizon=4000.0, seeds=(0,))
print(f"simulation validation: sound = {report.sound} over {report.runs} runs")
e2e = report.analysis.transaction_wcrt if report.analysis else []
for i, tr in enumerate(system):
    last = len(tr.tasks) - 1
    print(f"  {tr.name}: observed {report.observed.get((i, last), 0.0):.2f} "
          f"<= bound {report.bound[(i, last)]:.2f}")
