"""A complete component-marketplace workflow on a curated preset.

The scenario the paper's introduction motivates: reusable components are
shipped as specifications, integrated by a third party, dimensioned, and
certified -- all without touching component internals.

1. load the automotive-cluster preset (3 ECUs + CAN bus);
2. persist the assembly to JSON and reload it (the "marketplace" artifact);
3. validate + derive the transaction system (Sec. 2.4);
4. produce the certification report (analysis + verdicts);
5. dimension cheaper ECU reservations while staying schedulable;
6. render a Gantt chart of the executing system.

Run:  python examples/component_workflow.py
"""

import tempfile
from pathlib import Path

from repro.analysis import text_report
from repro.gen import automotive_cluster
from repro.io import load_assembly, save_assembly
from repro.opt import minimize_bandwidth
from repro.sim import SimulationConfig, simulate
from repro.viz import render_gantt

workdir = Path(tempfile.mkdtemp(prefix="repro-workflow-"))

# --- 1-2: the marketplace artifact --------------------------------------------
assembly = automotive_cluster()
spec_path = save_assembly(assembly, workdir / "cluster.json")
print(f"assembly specification written to {spec_path}")
assembly = load_assembly(spec_path)

problems = assembly.validate()
print(f"validation: {len(problems)} problem(s)")
for p in problems:
    print("  ", p)

# --- 3: derive -----------------------------------------------------------------
system = assembly.derive_transactions()
print(f"\nderived: {len(system.transactions)} transactions, "
      f"{system.total_tasks()} tasks, {len(system.platforms)} platforms")

# --- 4: certification report ------------------------------------------------------
print()
print(text_report(system))

# --- 5: dimensioning ---------------------------------------------------------------
design = minimize_bandwidth(system, rate_tol=5e-3)
print(f"\ndimensioning: total ECU+bus bandwidth "
      f"{design.initial_bandwidth:.3f} -> {design.total_bandwidth:.3f} "
      f"({design.savings:.1%} saved), still schedulable = {design.feasible}")

# --- 6: watch it run ----------------------------------------------------------------
trace = simulate(
    system,
    config=SimulationConfig(horizon=120.0, record_intervals=True, seed=0),
)
print()
print(render_gantt(system, trace, end=120.0, width=80))
print(f"\nobserved end-to-end maxima: "
      f"{ {i: round(r, 2) for i, r in trace.observed_end_to_end().items()} }")
