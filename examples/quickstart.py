"""Quickstart: analyze a two-platform pipeline in ~30 lines.

Build a transaction system directly (no component layer), run the holistic
analysis of the paper, and print per-task response times.

Run:  python examples/quickstart.py
"""

from repro import (
    LinearSupplyPlatform,
    PeriodicServer,
    Task,
    Transaction,
    TransactionSystem,
    analyze,
)

# Two abstract platforms: a (Q=2, P=5) reservation on a shared CPU and a
# bare (rate, delay, burstiness) triple like the paper's Table 2 entries.
platforms = [
    PeriodicServer(budget=2.0, period=5.0, name="cpu-share"),
    LinearSupplyPlatform(rate=0.5, delay=1.0, burstiness=0.5, name="dsp-share"),
]

# A producer/consumer pipeline crossing both platforms, plus a local
# housekeeping task competing on the first one.
pipeline = Transaction(
    period=40.0,
    deadline=40.0,
    name="pipeline",
    tasks=[
        Task(wcet=2.0, bcet=1.0, platform=0, priority=1, name="produce"),
        Task(wcet=3.0, bcet=1.5, platform=1, priority=2, name="transform"),
        Task(wcet=1.0, bcet=0.5, platform=0, priority=2, name="commit"),
    ],
)
housekeeping = Transaction(
    period=10.0,
    name="housekeeping",
    tasks=[Task(wcet=1.0, bcet=0.4, platform=0, priority=3, name="tick")],
)

system = TransactionSystem(
    transactions=[pipeline, housekeeping],
    platforms=platforms,
    name="quickstart",
)

result = analyze(system, trace=True)

print(f"system: {system}")
print(f"platform utilizations: {[round(u, 3) for u in system.utilizations()]}")
print(f"schedulable: {result.schedulable} "
      f"(converged in {result.outer_iterations} outer iterations)")
print()
print(f"{'task':<28} {'bcrt':>8} {'wcrt':>8} {'deadline':>9}")
for (i, j), ta in sorted(result.tasks.items()):
    deadline = system.transactions[i].deadline
    print(f"{ta.name or f'({i},{j})':<28} {ta.bcrt:>8.2f} {ta.wcrt:>8.2f} "
          f"{deadline:>9.1f}")
print()
for i, tr in enumerate(system.transactions):
    print(f"{tr.name}: end-to-end R = {result.transaction_wcrt[i]:.2f} "
          f"<= D = {tr.deadline} -> slack {result.slack(i):.2f}")
