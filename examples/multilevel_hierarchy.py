"""Multi-level hierarchical scheduling: reservations inside reservations.

The paper's model is two-level; this example shows the natural extension:
an avionics-style partition owns a periodic server on the CPU (ARINC-style
outer level), and *inside* that partition two component-level servers share
the partition's supply.  Supply functions compose
(Zmin_inner(Zmin_outer(t))), triples follow the closed form
alpha = a_i*a_o, Delta = D_o + D_i/a_o, beta = b_i + a_i*b_o, and the
paper's analysis runs unchanged on the composed platforms.

Also demonstrates resource blocking (the B term of Eq. 13) between the two
components inside the partition.

Run:  python examples/multilevel_hierarchy.py
"""

from repro import Task, Transaction, TransactionSystem, analyze
from repro.analysis import ResourceSpec, assign_ceiling_blocking
from repro.platforms import PeriodicServer, nest

# --- platform construction ------------------------------------------------------
# Outer level: the partition gets 6 ms of every 10 ms major frame.
partition = PeriodicServer(budget=6.0, period=10.0, name="partition")

# Inner level: two component servers dividing the partition's supply.
# Their parameters count units of time actually received from the partition.
ctrl_share = nest(partition, PeriodicServer(2.0, 4.0), name="ctrl-share")
mon_share = nest(partition, PeriodicServer(1.0, 4.0), name="monitor-share")

print("composed platforms (alpha, Delta, beta):")
for p in (partition, ctrl_share, mon_share):
    a, d, b = p.triple()
    name = getattr(p, "name", "?")
    print(f"  {name:<14} ({a:.3f}, {d:.2f}, {b:.2f})")

# --- workload ---------------------------------------------------------------------
control = Transaction(
    period=80.0,
    deadline=80.0,
    name="control",
    tasks=[
        Task(wcet=2.0, bcet=1.0, platform=0, priority=2, name="sense"),
        Task(wcet=3.0, bcet=1.5, platform=0, priority=3, name="act"),
    ],
)
monitor = Transaction(
    period=120.0,
    deadline=120.0,
    name="monitor",
    tasks=[Task(wcet=4.0, bcet=2.0, platform=1, priority=1, name="scan")],
)
logger = Transaction(
    period=200.0,
    deadline=200.0,
    name="logger",
    tasks=[Task(wcet=3.0, bcet=1.0, platform=0, priority=1, name="log")],
)

system = TransactionSystem(
    transactions=[control, monitor, logger],
    platforms=[ctrl_share, mon_share],
    name="multilevel",
)

# The control 'act' task and the logger share a flash device inside the
# partition: the classical SRP bound fills B (Eq. 13 carries it unused in
# the paper).
spec = ResourceSpec()
spec.add(0, 1, "flash", 0.5)   # act holds flash for 0.5 cycles
spec.add(2, 0, "flash", 1.5)   # logger holds flash for 1.5 cycles
assign_ceiling_blocking(system, spec)
print("\nblocking terms (time units, rate-scaled):")
for i, tr in enumerate(system.transactions):
    for j, t in enumerate(tr.tasks):
        if t.blocking:
            print(f"  {t.name}: B = {t.blocking:.2f}")

# --- analysis ----------------------------------------------------------------------
result = analyze(system, trace=True)
print(f"\nschedulable: {result.schedulable} "
      f"({result.outer_iterations} outer iterations)")
for i, tr in enumerate(system.transactions):
    print(f"  {tr.name}: end-to-end R = {result.transaction_wcrt[i]:.2f} "
          f"<= D = {tr.deadline:g} (slack {result.slack(i):.2f})")

# --- what does the hierarchy cost? --------------------------------------------------
flat = TransactionSystem(
    transactions=[control, monitor, logger],
    platforms=[PeriodicServer(2.0, 4.0), PeriodicServer(1.0, 4.0)],
    name="flat",
)
assign_ceiling_blocking(flat, spec)
flat_result = analyze(flat)
print("\ncost of the extra level (same inner servers on a dedicated CPU):")
for i, tr in enumerate(system.transactions):
    print(f"  {tr.name}: R = {flat_result.transaction_wcrt[i]:.2f} flat "
          f"-> {result.transaction_wcrt[i]:.2f} nested")
