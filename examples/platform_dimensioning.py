"""Platform dimensioning: the paper's future work, executed.

Given the sensor-fusion workload, find the cheapest abstract platforms that
still make it schedulable:

1. minimize total reserved bandwidth at the current delays;
2. trace the rate/delay trade-off frontier of the integrator platform;
3. synthesize concrete periodic servers realizing the designed triples.

Run:  python examples/platform_dimensioning.py
"""

from repro import analyze
from repro.opt import minimize_bandwidth, rate_delay_frontier, server_for_triple
from repro.paper import sensor_fusion_system
from repro.viz import ascii_plot

system = sensor_fusion_system()
print("workload: paper sensor-fusion example")
print(f"starting platforms: {[p.triple() for p in system.platforms]}")
print(f"starting total bandwidth: {sum(p.rate for p in system.platforms):.3f}\n")

# --- 1: bandwidth-minimal design ------------------------------------------------
design = minimize_bandwidth(system, rate_tol=2e-3)
print(f"bandwidth-minimal design (delays fixed, {design.sweeps} sweeps):")
for k, p in enumerate(design.platforms):
    print(f"  Pi{k + 1}: rate {system.platforms[k].rate:.3f} -> {p.rate:.3f}")
print(f"  total bandwidth {design.initial_bandwidth:.3f} -> "
      f"{design.total_bandwidth:.3f}  (saves {design.savings:.1%})")
designed = design.designed_system(system)
print(f"  designed system schedulable: {analyze(designed).schedulable}\n")

# --- 2: rate/delay frontier of Pi3 ----------------------------------------------
delays = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 24.0]
frontier = rate_delay_frontier(system, 2, delays, rate_tol=2e-3)
print("rate/delay frontier of Pi3 (others fixed):")
print("  delay   min rate")
for d, a in frontier:
    print(f"  {d:5.1f}   {a:.3f}" if a != float("inf") else f"  {d:5.1f}   infeasible")

finite = [(d, a) for d, a in frontier if a != float("inf")]
print()
print(ascii_plot(
    [("min feasible rate", [d for d, _ in finite], [a for _, a in finite])],
    width=56, height=12,
    title="Pi3: minimum rate vs permitted delay",
    xlabel="delay", ylabel="rate",
))

# --- 3: concrete servers ----------------------------------------------------------
print("\nperiodic servers realizing the designed triples:")
for k, p in enumerate(design.platforms):
    if p.rate < 1.0 and p.delay > 0:
        srv = server_for_triple(p.rate, p.delay, name=f"srv{k + 1}")
        print(f"  Pi{k + 1}: Q = {srv.budget:.3f}, P = {srv.period:.3f} "
              f"(rate {srv.rate:.3f}, delay {srv.delay:.3f})")
    else:
        print(f"  Pi{k + 1}: dedicated/full-speed, no server needed")

# --- 4: the modular alternative - component interfaces ----------------------------
# Instead of the coupled system-level search above, each component vendor
# can publish a (rate, delay) interface curve computed from the LOCAL task
# set alone; the integrator composes curves without seeing task internals.
from repro.analysis.compositional import LocalTask
from repro.opt import component_interface, compose_interfaces

local_sets = {
    "Sensor1": [LocalTask(wcet=1.0, period=15.0, priority=2),
                LocalTask(wcet=1.0, period=50.0, priority=1)],
    "Sensor2": [LocalTask(wcet=1.0, period=15.0, priority=2),
                LocalTask(wcet=1.0, period=50.0, priority=1)],
    "Integrator": [LocalTask(wcet=1.0, period=50.0, priority=2),
                   LocalTask(wcet=1.0, period=50.0, priority=3),
                   LocalTask(wcet=7.0, period=70.0, priority=1)],
}
print("\ncomponent interfaces (modular, local-task view):")
interfaces = []
for name, tasks in local_sets.items():
    iface = component_interface(tasks, [1.0, 2.0, 4.0], name=name, rate_tol=2e-3)
    interfaces.append(iface)
    pts = ", ".join(f"D={p.delay:g}:a={p.rate:.3f}" for p in iface.points)
    print(f"  {name:<11} U={iface.utilization:.3f}  [{pts}]")
comp = compose_interfaces(interfaces)
print(f"composition on one CPU: feasible={comp.feasible}, "
      f"total bandwidth={comp.total_bandwidth:.3f}")
print("(the modular view ignores RPC-induced jitter; the coupled search of "
      "step 1 is what certifies the interacting system)")
