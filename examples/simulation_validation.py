"""Batch validation of the analysis against the simulator.

Draws a batch of random transaction systems at increasing utilization,
simulates each under multiple seeds/placements/phasings, and reports the
soundness of the analytic bounds plus their tightness distribution -- the
experiment behind benchmark E8.

Run:  python examples/simulation_validation.py
"""

import numpy as np

from repro.gen import RandomSystemSpec, random_system
from repro.sim import validate_against_analysis

UTILIZATIONS = (0.2, 0.4, 0.6)
SEEDS_PER_LEVEL = 4

print(f"{'util':>5} {'seed':>5} {'tasks':>6} {'sound':>6} "
      f"{'tightness p50':>14} {'tightness max':>14}")

all_sound = True
for util in UTILIZATIONS:
    for seed in range(SEEDS_PER_LEVEL):
        spec = RandomSystemSpec(
            n_platforms=2,
            n_transactions=3,
            tasks_per_transaction=(1, 3),
            utilization=util,
            delay_range=(0.0, 2.0),
        )
        system = random_system(spec, seed=seed)
        report = validate_against_analysis(
            system,
            seeds=(seed,),
            placements=("late", "random"),
            release_modes=("synchronous", "random"),
            horizon=60.0 * max(tr.period for tr in system.transactions),
        )
        ratios = [
            report.tightness(*key)
            for key in report.bound
            if report.bound[key] not in (0.0, float("inf"))
        ]
        p50 = float(np.median(ratios)) if ratios else float("nan")
        mx = max(ratios) if ratios else float("nan")
        all_sound &= report.sound
        print(f"{util:>5.1f} {seed:>5} {system.total_tasks():>6} "
              f"{str(report.sound):>6} {p50:>14.2f} {mx:>14.2f}")

print(f"\nall bounds sound: {all_sound}")
print("tightness = observed worst response / analytic bound; "
      "1.0 means the bound is attained, lower means pessimism.")
