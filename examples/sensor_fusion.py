"""The paper's worked example, end to end.

1. Build the three components of Figures 1-2 and wire them (Sec. 2.2.1).
2. Derive the transactions of Figure 5 via the Sec. 2.4 transform.
3. Run the holistic analysis and print Tables 1, 2 and 3.
4. Cross-validate against the discrete-event simulator.

Run:  python examples/sensor_fusion.py
"""

from repro import analyze
from repro.paper import (
    render_table1,
    render_table2,
    render_table3,
    sensor_fusion_components,
    sensor_fusion_system,
)
from repro.sim import validate_against_analysis

# --- 1-2: component specification -> transactions --------------------------
assembly = sensor_fusion_components()
problems = assembly.validate()
print(f"assembly validation: {len(problems)} problem(s)")
for p in problems:
    print("  ", p)

derived = assembly.derive_transactions()
print("\nderived transactions (Figure 5):")
for tr in derived:
    chain = " -> ".join(
        f"{t.name}@Pi{t.platform + 1}" for t in tr.tasks
    )
    print(f"  {tr.name} (T={tr.period:g}): {chain}")

# --- 3: analysis, tables -----------------------------------------------------
system = sensor_fusion_system()  # the canonical Table 1/2 parameterization
result = analyze(system, trace=True)

print()
print(render_table1(system, result))
print()
print(render_table2(system))
print()
print(render_table3(result))
print()
print(f"schedulable: {result.schedulable}")
print(f"Gamma_1 end-to-end response: {result.wcrt(0, 3):g} "
      f"(paper's Table 3 prints 39; its own equations give 31 -- "
      "see EXPERIMENTS.md)")

# --- 4: a look at the actual schedule ----------------------------------------
from repro.sim import SimulationConfig, simulate
from repro.viz import render_gantt

trace = simulate(
    system,
    config=SimulationConfig(horizon=150.0, record_intervals=True, seed=0),
)
print()
print(render_gantt(system, trace, end=150.0, width=75))

# --- 5: validation -----------------------------------------------------------
report = validate_against_analysis(system, horizon=3000.0, seeds=(0, 1))
print(f"\nsimulation validation over {report.runs} runs: "
      f"sound = {report.sound}")
print(f"{'task':<10} {'observed':>9} {'bound':>7} {'tightness':>10}")
for key in sorted(report.bound):
    print(f"{str(key):<10} {report.observed.get(key, 0.0):>9.2f} "
          f"{report.bound[key]:>7.2f} {report.tightness(*key):>10.2f}")
