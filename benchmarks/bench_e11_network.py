"""E11 -- messages as network tasks (Sec. 2.4, the part the example skips).

The paper: "messages can simply be modeled by considering additional tasks
that have to be executed on an abstract computing platform that models the
network".  This bench builds the distributed variant of the sensor-fusion
example -- the integrator reads both sensors over a shared bus -- and shows
(a) the transform inserts request/reply message tasks in chain order,
(b) the system analyzes end to end, and (c) removing the bus reservation
(shrinking its share) breaks schedulability: the network is a first-class
platform.
"""

import pytest

from repro.analysis import analyze
from repro.components import (
    CallStep,
    Component,
    EventThread,
    PeriodicThread,
    ProvidedMethod,
    RequiredMethod,
    SystemAssembly,
    TaskStep,
)
from repro.platforms import LinearSupplyPlatform, Message, NetworkLinkPlatform
from repro.viz import format_table


def build(share: float) -> SystemAssembly:
    sensor = Component(
        name="SensorReading",
        provided=[ProvidedMethod("read", mit=50.0)],
        threads=[
            PeriodicThread(name="poll", period=15.0, priority=2,
                           body=[TaskStep("acquire", wcet=1.0, bcet=0.25)]),
            EventThread(name="serve", realizes="read", priority=1,
                        body=[TaskStep("serve_read", wcet=1.0, bcet=0.8)]),
        ],
    )
    integrator = Component(
        name="SensorIntegration",
        required=[RequiredMethod("readSensor1", mit=50.0),
                  RequiredMethod("readSensor2", mit=50.0)],
        threads=[
            PeriodicThread(
                name="fuse", period=50.0, priority=2,
                body=[TaskStep("init", wcet=1.0, bcet=0.8),
                      CallStep("readSensor1"), CallStep("readSensor2"),
                      TaskStep("compute", wcet=1.0, bcet=0.8, priority=3)],
            )
        ],
    )
    asm = SystemAssembly(name="distributed-sensor-fusion")
    asm.add_instance("Sensor1", sensor)
    asm.add_instance("Sensor2", sensor)
    asm.add_instance("Integrator", integrator)
    asm.add_platform("Pi1", LinearSupplyPlatform(0.4, 1.0, 1.0, name="Pi1"))
    asm.add_platform("Pi2", LinearSupplyPlatform(0.4, 1.0, 1.0, name="Pi2"))
    asm.add_platform("Pi3", LinearSupplyPlatform(0.2, 2.0, 1.0, name="Pi3"))
    asm.add_platform("bus", NetworkLinkPlatform(
        bandwidth=4.0, share=share, arbitration_delay=1.0,
        frame_overhead=2.0, name="bus",
    ))
    asm.place("Sensor1", platform="Pi1")
    asm.place("Sensor2", platform="Pi2")
    asm.place("Integrator", platform="Pi3")
    for k in (1, 2):
        asm.bind(
            "Integrator", f"readSensor{k}", f"Sensor{k}", "read",
            request=Message(payload=2.0, priority=2, name=f"req{k}"),
            reply=Message(payload=6.0, priority=2, name=f"rep{k}"),
            network="bus",
        )
    return asm


def test_network_as_platform(benchmark, write_artifact):
    system = build(share=0.8).derive_transactions()

    result = benchmark(lambda: analyze(system, trace=True))

    fuse = next(tr for tr in system if "Integrator" in tr.name)
    kinds = [t.meta.get("kind") for t in fuse.tasks]
    assert kinds == ["code", "message", "code", "message",
                     "message", "code", "message", "code"]
    assert result.schedulable

    rows = [
        [t.name, "bus" if t.meta.get("kind") == "message" else f"Pi{t.platform+1}",
         f"{t.wcet:g}", f"{result.tasks[(system.transactions.index(fuse), j)].wcrt:.2f}"]
        for j, t in enumerate(fuse.tasks)
    ]
    table = format_table(
        ["task", "platform", "cycles/bytes", "wcrt"],
        rows,
        title="E11: distributed sensor fusion with bus messages",
    )
    write_artifact("e11_network.txt", table + "\n")

    # Crossover claim: starving the bus reservation breaks the deadline.
    starving = build(share=0.07).derive_transactions()
    starved = analyze(starving)
    assert not starved.schedulable
    # End-to-end response grows monotonically as the share shrinks.
    mid = analyze(build(share=0.3).derive_transactions())
    fuse_idx = next(i for i, tr in enumerate(system) if "Integrator" in tr.name)
    assert mid.transaction_wcrt[fuse_idx] >= result.transaction_wcrt[fuse_idx] - 1e-9
