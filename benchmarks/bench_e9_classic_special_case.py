"""E9 -- the classical special case: (alpha, Delta, beta) = (1, 0, 0).

End of Sec. 2.3: with the identity triple the model degenerates to "a
processor used at its full capacity".  This bench verifies the degeneration
quantitatively: on dedicated platforms our generalized analysis coincides
with textbook fixed-priority RTA, and the shared-platform analysis is
consistently more pessimistic (never less).
"""

import pytest

from repro.analysis import analyze, analyze_dedicated, rta_independent
from repro.analysis.classic import IndependentTask
from repro.gen import RandomSystemSpec, random_system
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.paper import sensor_fusion_system
from repro.platforms.linear import DedicatedPlatform
from repro.viz import format_table


def test_classic_special_case(benchmark, write_artifact):
    # 1) textbook agreement on independent task sets.
    specs = [(1.0, 5.0, 4), (1.5, 8.0, 3), (2.0, 14.0, 2), (2.5, 33.0, 1)]
    txns = [
        Transaction(period=p, tasks=[Task(wcet=c, platform=0, priority=prio)],
                    name=f"G{k}")
        for k, (c, p, prio) in enumerate(specs)
    ]
    system = TransactionSystem(transactions=txns, platforms=[DedicatedPlatform()])
    ours = analyze(system).transaction_wcrt
    textbook = rta_independent([
        IndependentTask(wcet=c, period=p, deadline=p, priority=prio)
        for c, p, prio in specs
    ])
    assert ours == pytest.approx(textbook)

    # 2) dedicated vs shared on the paper example: dedication dominates.
    paper = sensor_fusion_system()
    shared = analyze(paper)
    dedicated = analyze_dedicated(paper)
    rows = []
    for key in sorted(shared.tasks):
        s, d = shared.tasks[key].wcrt, dedicated.tasks[key].wcrt
        assert d <= s + 1e-9
        rows.append([str(key), f"{d:.2f}", f"{s:.2f}", f"{s / d:.2f}"])
    table = format_table(
        ["task", "R dedicated", "R shared", "sharing cost"],
        rows,
        title="E9: dedicated (1,0,0) vs shared abstract platforms",
    )
    write_artifact("e9_classic.txt", table + "\n")

    # 3) random systems: the dedicated analysis is the optimistic baseline.
    for seed in range(3):
        rnd = random_system(RandomSystemSpec(utilization=0.4), seed=seed)
        rs = analyze(rnd)
        rd = analyze_dedicated(rnd)
        for key in rs.tasks:
            if rs.tasks[key].wcrt != float("inf"):
                assert rd.tasks[key].wcrt <= rs.tasks[key].wcrt + 1e-9

    benchmark(lambda: analyze_dedicated(paper))
