"""A1 (ablation) -- best-case estimator: published vs sound vs iterative.

The best-case bound feeds Eq. 18 twice (offsets and jitters), so the choice
of estimator shifts every downstream worst case.  This bench quantifies the
effect on the paper example: the published formula yields the paper's
numbers; the sound formula yields larger jitters (smaller best cases) and
hence equal-or-larger worst cases; the iterative refinement wins back some
of that pessimism.
"""

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.paper import sensor_fusion_system
from repro.viz import format_table

METHODS = ("simple", "sound", "iterative")


def test_bestcase_ablation(benchmark, write_artifact):
    system = sensor_fusion_system()
    results = {
        m: analyze(system, config=AnalysisConfig(best_case=m)) for m in METHODS
    }

    rows = []
    for key in sorted(results["simple"].tasks):
        cells = [str(key)]
        for m in METHODS:
            ta = results[m].tasks[key]
            cells.append(f"{ta.bcrt:.2f}/{ta.wcrt:.2f}")
        rows.append(cells)
    table = format_table(
        ["task"] + [f"{m} (bcrt/wcrt)" for m in METHODS],
        rows,
        title="A1: best-case estimator ablation on the paper example",
    )
    write_artifact("a1_bestcase_ablation.txt", table + "\n")

    # Invariants: all three verdicts hold; sound bcrt <= simple bcrt
    # (the published formula over-estimates); wcrt under the sound bound is
    # never smaller than under the published one (larger jitters).
    for m in METHODS:
        assert results[m].schedulable
    for key in results["simple"].tasks:
        simple = results["simple"].tasks[key]
        sound = results["sound"].tasks[key]
        iterative = results["iterative"].tasks[key]
        assert sound.bcrt <= simple.bcrt + 1e-9
        assert sound.wcrt >= simple.wcrt - 1e-9
        assert iterative.bcrt >= sound.bcrt - 1e-9
        assert iterative.wcrt <= sound.wcrt + 1e-9

    # The published numbers are the "simple" column.
    assert results["simple"].wcrt(0, 3) == pytest.approx(31.0)

    benchmark(
        lambda: analyze(system, config=AnalysisConfig(best_case="iterative"))
    )
