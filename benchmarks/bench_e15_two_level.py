"""E15 (deployment) -- the two-level hierarchy on one physical CPU.

Sec. 2.3: the abstract platforms are implemented "upon the physical
platform [by] the global scheduler".  This bench performs the full
deployment of the paper's example: synthesize the periodic servers
realizing the three (rate, delay) pairs, schedule their budgets on ONE
physical processor under global EDF (total utilization is exactly 1.0),
feed the resulting single-timeline supplies to the component-level
simulator, and check every observed response against the analytic bounds.

This is the strongest end-to-end statement the reproduction makes: the
abstract-platform analysis is sound for an actual two-level schedule, not
just for per-platform synthetic supplies.
"""

import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.opt import server_for_triple
from repro.paper import sensor_fusion_system
from repro.sim import SimulationConfig, Simulator, schedule_servers
from repro.viz import format_table


def test_two_level_deployment(benchmark, write_artifact):
    system = sensor_fusion_system()
    horizon = 3000.0

    servers = [
        server_for_triple(p.rate, p.delay, name=f"srv{m + 1}")
        for m, p in enumerate(system.platforms)
    ]
    total_util = sum(s.rate for s in servers)
    assert total_util == pytest.approx(1.0)

    def deploy():
        res = schedule_servers(servers, horizon=horizon + 100.0, policy="edf")
        sim = Simulator(
            system, SimulationConfig(horizon=horizon), supplies=res.supplies
        )
        return res, sim.run()

    res, trace = benchmark(deploy)
    assert res.feasible
    assert res.idle_fraction == pytest.approx(0.0, abs=1e-6)

    bounds = analyze(system, config=AnalysisConfig(best_case="sound"))
    rows = []
    for key in sorted(bounds.tasks):
        obs = trace.tasks[key].max_response if key in trace.tasks else 0.0
        bound = bounds.tasks[key].wcrt
        assert obs <= bound + 1e-6, key
        rows.append([
            str(key), f"{obs:.2f}", f"{bound:.2f}",
            f"{obs / bound:.2f}" if bound else "-",
        ])

    table = format_table(
        ["task", "observed (2-level EDF)", "analytic bound", "ratio"],
        rows,
        title=(
            "E15: paper example deployed on one CPU "
            f"(3 servers, total utilization {total_util:g}, global EDF)"
        ),
    )
    write_artifact("e15_two_level.txt", table + "\n")
    assert trace.total_misses() == 0
