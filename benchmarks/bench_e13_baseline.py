"""E13 (baseline) -- per-component compositional analysis vs the paper.

The prior art the paper extends ([12], [7]) analyzes each component in
isolation and *cannot* express RPC-interacting components.  This bench
quantifies that gap on the paper's example:

* the three platform-local task sets pass the per-component FP test when
  RPC-induced load is accounted for, but the per-component view has no way
  to derive the cross-platform offsets/jitters -- naively treating each
  RPC-handler as an independent task with unknown release gives either an
  unsound answer (ignoring jitter) or no answer at all;
* the paper's holistic analysis handles the interaction and produces the
  end-to-end response times of Table 3.

Concretely we compare three admissions for Pi1's task set
{tau_1_2 (RPC handler), tau_2_1 (poller)}:

1. compositional, jitter-ignorant (treats tau_1_2 as an independent
   periodic task): accepts -- but with a local response bound that is NOT a
   valid end-to-end statement;
2. the holistic analysis: accepts with the correct transaction-level bound;
3. compositional after the holistic jitter is known: consistent with 2.
"""

import pytest

from repro.analysis import analyze
from repro.analysis.compositional import (
    LocalTask,
    fp_component_schedulable,
)
from repro.paper import sensor_fusion_system
from repro.viz import format_table


def test_compositional_baseline(benchmark, write_artifact):
    system = sensor_fusion_system()
    holistic = benchmark(lambda: analyze(system, trace=False))
    assert holistic.schedulable

    rows = []
    # Per-platform local view: every task projected as an independent
    # periodic task with its transaction's period.
    for m, platform in enumerate(system.platforms):
        local = []
        for i, j, task in system.tasks_on(m):
            local.append(
                LocalTask(
                    wcet=task.wcet,
                    period=system.transactions[i].period,
                    priority=task.priority,
                    name=task.name,
                )
            )
        verdict = fp_component_schedulable(local, platform)
        rows.append([
            getattr(platform, "name", f"Pi{m + 1}"),
            str(len(local)),
            "yes" if verdict else "no",
        ])
        # The per-component test must accept each platform-local set: the
        # holistic analysis already proved a stronger statement.
        assert verdict

    table = format_table(
        ["platform", "local tasks", "per-component FP test"],
        rows,
        title="E13: compositional baseline on the example's platform-local sets",
    )
    notes = (
        "\nWhat the baseline cannot express: the end-to-end response of\n"
        "Gamma_1 (init -> readSensor1 -> readSensor2 -> compute) spans three\n"
        "platforms; the compositional tests have no notion of the\n"
        "inter-platform offsets/jitters of Eq. 18.  The holistic analysis\n"
        f"bounds it at {holistic.wcrt(0, 3):g} <= 50.\n"
    )
    write_artifact("e13_baseline.txt", table + notes)

    # The gap, made concrete: the local response bound of tau_1_2 computed
    # in isolation (no jitter) underestimates what the transaction-level
    # analysis proves once the predecessor jitter (9) is injected.
    local_wcrt_iso = 9.0   # w + phi with J=0 (iteration 0 of Table 3)
    assert holistic.tasks[(0, 1)].wcrt > local_wcrt_iso
    assert holistic.tasks[(0, 1)].wcrt == pytest.approx(18.0)
