"""E13 (baseline) -- per-component compositional analysis vs the paper.

The prior art the paper extends ([12], [7]) analyzes each component in
isolation and *cannot* express RPC-interacting components.  This bench
quantifies that gap on the paper's example.

Since ISSUE 1 the comparison is a two-method campaign on the ``paper``
generator: the engine's built-in ``compositional`` method *is* the
prior-art baseline (per-platform FP tests, blind to cross-platform
offsets/jitters), run side by side with the holistic ``reduced`` analysis:

* both accept the example -- but the compositional verdict is a local
  statement with no end-to-end content, while the holistic analysis
  produces the transaction-level bounds of Table 3;
* the local response bound of tau_1_2 computed in isolation (no jitter)
  underestimates what the transaction-level analysis proves once the
  predecessor jitter (9) is injected.
"""

import pytest

from repro.analysis import analyze
from repro.batch import Campaign, CampaignSpec
from repro.paper import sensor_fusion_system
from repro.viz import format_table

SPEC = CampaignSpec(
    grid={},
    methods=("reduced", "compositional"),
    systems_per_cell=1,
    generator="paper",
)


def test_compositional_baseline(benchmark, write_artifact):
    result = Campaign(SPEC).run(workers=1)
    by_method = {c.method: c for c in result.cells}

    # The per-component test must accept each platform-local set: the
    # holistic analysis already proved a stronger statement.
    comp = by_method["compositional"]
    assert comp.schedulable
    assert comp.extras["platforms_accepted"] == comp.extras["platforms"] == 3
    holistic_cell = by_method["reduced"]
    assert holistic_cell.schedulable
    assert holistic_cell.max_wcrt_ratio < 1.0

    system = sensor_fusion_system()
    holistic = benchmark(lambda: analyze(system, trace=False))
    assert holistic.schedulable

    rows = [
        [
            getattr(platform, "name", f"Pi{m + 1}"),
            str(sum(1 for _ in system.tasks_on(m))),
            "yes",
        ]
        for m, platform in enumerate(system.platforms)
    ]
    table = format_table(
        ["platform", "local tasks", "per-component FP test"],
        rows,
        title="E13: compositional baseline on the example's platform-local sets",
    )
    notes = (
        "\nWhat the baseline cannot express: the end-to-end response of\n"
        "Gamma_1 (init -> readSensor1 -> readSensor2 -> compute) spans three\n"
        "platforms; the compositional tests have no notion of the\n"
        "inter-platform offsets/jitters of Eq. 18.  The holistic analysis\n"
        f"bounds it at {holistic.wcrt(0, 3):g} <= 50.\n"
    )
    write_artifact("e13_baseline.txt", table + notes)

    # The gap, made concrete: the local response bound of tau_1_2 computed
    # in isolation (no jitter) underestimates what the transaction-level
    # analysis proves once the predecessor jitter (9) is injected.
    local_wcrt_iso = 9.0   # w + phi with J=0 (iteration 0 of Table 3)
    assert holistic.tasks[(0, 1)].wcrt > local_wcrt_iso
    assert holistic.tasks[(0, 1)].wcrt == pytest.approx(18.0)
