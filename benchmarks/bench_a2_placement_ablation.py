"""A2 (ablation) -- budget-window placement: how adversarial is 'late'?

The analysis assumes the worst-case supply pattern (the 2(P-Q) blackout of
Figure 3).  The simulator can place each period's budget window early, late
or randomly; this bench measures how much of the analytic bound each
placement actually exercises on the paper example.  Expectation: 'late'
placements push observed responses closest to the bound; 'early' is the
friendliest.
"""

import numpy as np

from repro.analysis import AnalysisConfig, analyze
from repro.paper import sensor_fusion_system
from repro.sim import SimulationConfig, simulate
from repro.viz import format_table, write_csv

PLACEMENTS = ("early", "late", "random")


def test_placement_ablation(benchmark, output_dir, write_artifact):
    system = sensor_fusion_system()
    bound = analyze(system, config=AnalysisConfig(best_case="sound"))

    observed = {p: {} for p in PLACEMENTS}
    for placement in PLACEMENTS:
        for seed in range(3):
            trace = simulate(
                system,
                config=SimulationConfig(
                    horizon=4000.0, seed=seed, placement=placement
                ),
            )
            for key, st in trace.tasks.items():
                observed[placement][key] = max(
                    observed[placement].get(key, 0.0), st.max_response
                )

    rows = []
    csv_rows = []
    for key in sorted(bound.tasks):
        b = bound.tasks[key].wcrt
        cells = [str(key), f"{b:.2f}"]
        ratios = []
        for p in PLACEMENTS:
            o = observed[p].get(key, 0.0)
            cells.append(f"{o:.2f}")
            ratios.append(o / b if b else 0.0)
            assert o <= b + 1e-6, f"{p} violated the bound for {key}"
        rows.append(cells)
        csv_rows.append([str(key), b] + [observed[p].get(key, 0.0) for p in PLACEMENTS])

    table = format_table(
        ["task", "bound"] + [f"obs({p})" for p in PLACEMENTS],
        rows,
        title="A2: observed worst responses by budget-window placement",
    )
    write_artifact("a2_placement_ablation.txt", table + "\n")
    write_csv(
        output_dir / "a2_placement.csv",
        ["task", "bound"] + list(PLACEMENTS),
        csv_rows,
    )

    # Aggregate shape claim: late placements are at least as adversarial as
    # early ones on average.
    def mean_ratio(p):
        vals = [
            observed[p].get(key, 0.0) / bound.tasks[key].wcrt
            for key in bound.tasks
            if bound.tasks[key].wcrt not in (0.0, float("inf"))
        ]
        return float(np.mean(vals))

    assert mean_ratio("late") >= mean_ratio("early") - 0.05

    benchmark(
        lambda: simulate(
            system, config=SimulationConfig(horizon=1000.0, placement="late")
        )
    )
