"""Campaign engine throughput across the kernel and scheduler axes.

Runs the reference utilization sweep under every interesting combination
of the two PR 2 axes -- interference *kernel* (scalar reference closures
vs the NumPy vector kernel vs the size-adaptive auto default) and outer
*scheduler* (Jacobi, full Gauss-Seidel, chain-aware dirty-set
Gauss-Seidel, and the PR 1-cost-model reference mode with every driver
cache disabled) -- and records systems-analyzed-per-second plus the
evaluation accounting in ``BENCH_campaign.json`` at the repository root.

The acceptance criterion of ISSUE 2 is >=2x systems/sec over PR 1's
``gs_warm_cached`` run on this same sweep; PR 1's recorded numbers are
pinned in ``PR1_REFERENCE`` below (they were re-measured against PR 1's
actual code on this hardware within 3% before being frozen here).  Each
configuration is timed best-of-N to damp scheduler noise.

Caveat on "the same sweep": PR 2 batched the generator's RNG draws (one
call per parameter family), which changes the random stream, so the same
seeds now draw *statistically identical but not bit-identical* systems.
Throughput comparisons against PR 1 therefore compare equal-distribution
workloads, not the very same 84 systems; within-tree comparisons (every
assertion below except the calibrated one) are unaffected.
"""

import json
import time
from pathlib import Path

from repro.analysis import AnalysisConfig
from repro.batch import (
    Campaign,
    CampaignSpec,
    holistic_method,
    linspace_levels,
    register_method,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_campaign.json"

#: PR 1's ``gs_warm_cached`` reference run on this sweep, as recorded in
#: the BENCH_campaign.json committed by PR 1.
PR1_REFERENCE = {
    "method": "gauss_seidel",
    "systems": 84,
    "wall_time_s": 0.23934251199989376,
    "systems_per_second": 350.9614706477104,
    "evaluations_total": 34392,
    "outer_iterations_total": 175,
}

#: Wall-time ratio between PR 1's *actual code* and this tree's
#: ``pr1_cost_model`` ablation mode on this sweep, measured by
#: interleaving the two builds (git stash <-> working tree) over six
#: rounds of best-of-N timings on the same hardware: the ablation gates
#: the driver caches, dirty set and job chaining, but keeps the
#: compile-layer rework (merged W rows, inlined fixed-point loops) and
#: the batched generator, which cannot be switched off by config.
#: Multiplying the in-process ablation wall time by this factor
#: reconstructs a PR 1 wall time measured in the *same machine phase* as
#: the new run -- the container's throughput drifts by +-30% over
#: minutes, so comparing against the absolute recorded numbers alone
#: would make the speedup assertion a coin flip.  Measured pairs
#: (PR 1 wall, ablation wall): (0.2301, 0.2218), (0.2363, 0.2257),
#: (0.2450, 0.2099), (0.3086, 0.2573), (0.2484, 0.2146),
#: (0.2535, 0.2222) -> ratios 1.04-1.20, mean 1.16.  Re-measure (stash
#: PR 2, interleave both builds) before trusting this constant after any
#: change to what the ablation mode covers.
PR1_WALL_OVER_COST_MODEL = 1.16

BASE = {
    "n_platforms": 3,
    "n_transactions": 4,
    "tasks_per_transaction": (2, 4),
}
LEVELS = linspace_levels(0.30, 0.95, 14)
REPEATS = 3

#: Extra method variants spanning the kernel/scheduler matrix; the
#: built-in ``gauss_seidel`` (dirty set + auto kernel) is the new default
#: and ``gauss_seidel_full`` the dirty-set ablation.
VARIANTS = {
    "gs_kernel_scalar": AnalysisConfig(
        method="reduced", update="gauss_seidel", kernel="scalar"
    ),
    "gs_kernel_vector": AnalysisConfig(
        method="reduced", update="gauss_seidel", kernel="vector"
    ),
    "pr1_cost_model": AnalysisConfig(
        method="reduced", update="gauss_seidel", incremental=False,
        kernel="scalar", driver_cache=False,
    ),
}


def _spec(method: str, warm: bool) -> CampaignSpec:
    return CampaignSpec(
        grid={"utilization": LEVELS},
        base=BASE,
        methods=(method,),
        systems_per_cell=6,
        seed=3,
        warm_start=warm,
    )


def _run(method: str, warm: bool, *, kernel: str, scheduler: str) -> dict:
    spec = _spec(method, warm)
    Campaign(spec).run(workers=1)  # warm the interpreter/caches
    best = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = Campaign(spec).run(workers=1)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, result)
    wall, result = best
    acc = result.accounting()
    return {
        "method": method,
        "warm_start": warm,
        "kernel": kernel,
        "scheduler": scheduler,
        "systems": acc["systems"],
        "wall_time_s": wall,
        "systems_per_second": acc["systems"] / wall,
        "evaluations_total": acc["evaluations_total"],
        "outer_iterations_total": acc["outer_iterations_total"],
        "task_solves": sum(
            c.extras.get("fp_task_solves", 0) for c in result.cells
        ),
        "task_skips": sum(
            c.extras.get("fp_task_skips", 0) for c in result.cells
        ),
        "schedulable": [int(c.schedulable) for c in result.cells],
    }


def test_campaign_throughput(benchmark, write_artifact):
    for name, config in VARIANTS.items():
        register_method(name, holistic_method(config), supports_warm_start=True)

    runs = {
        # The headline configuration: dirty-set Gauss-Seidel, auto kernel,
        # warm-start chaining, driver caches on.
        "gs_warm_cached": _run(
            "gauss_seidel", True, kernel="auto", scheduler="gs_incremental"
        ),
        # Kernel axis (same scheduler, forced kernels).
        "gs_warm_scalar": _run(
            "gs_kernel_scalar", True, kernel="scalar",
            scheduler="gs_incremental",
        ),
        "gs_warm_vector": _run(
            "gs_kernel_vector", True, kernel="vector",
            scheduler="gs_incremental",
        ),
        # Scheduler axis (auto kernel unless noted).
        "gs_full_warm": _run(
            "gauss_seidel_full", True, kernel="auto", scheduler="gs_full"
        ),
        "gs_cold_cached": _run(
            "gauss_seidel", False, kernel="auto", scheduler="gs_incremental"
        ),
        "jacobi_cold": _run(
            "reduced", False, kernel="auto", scheduler="jacobi"
        ),
        # PR 1 cost model: full Gauss-Seidel sweeps, scalar kernel, no
        # driver caches/memos/warm job chains -- the in-process ablation
        # of everything this PR added on top of PR 1's code structure.
        "pr1_cost_model_warm": _run(
            "pr1_cost_model", True, kernel="scalar", scheduler="gs_full"
        ),
    }

    new = runs["gs_warm_cached"]
    full = runs["gs_full_warm"]
    cold = runs["gs_cold_cached"]
    jacobi = runs["jacobi_cold"]
    pr1_mode = runs["pr1_cost_model_warm"]

    # Verdicts must agree across every kernel/scheduler combination.
    for name, run in runs.items():
        assert run["schedulable"] == new["schedulable"], name

    # The measured savings each layer claims:
    # dirty-set skips work without changing outer accounting semantics,
    assert new["task_skips"] > 0
    assert new["evaluations_total"] < full["evaluations_total"]
    # warm-start chaining still saves evaluations over the cold sweep,
    assert new["evaluations_total"] < cold["evaluations_total"]
    # and Gauss-Seidel still beats the Jacobi baseline.
    assert cold["evaluations_total"] < jacobi["evaluations_total"]

    speedups = {
        "vs_pr1_recorded": new["systems_per_second"]
        / PR1_REFERENCE["systems_per_second"],
        "vs_pr1_cost_model_inprocess": pr1_mode["wall_time_s"]
        / new["wall_time_s"],
        # Same-machine-phase estimate of the full PR 1 -> PR 2 speedup:
        # the in-process ablation ratio scaled by the pinned
        # actual-PR1-vs-ablation factor (see PR1_WALL_OVER_COST_MODEL).
        "vs_pr1_calibrated": PR1_WALL_OVER_COST_MODEL
        * pr1_mode["wall_time_s"] / new["wall_time_s"],
        "dirty_set_evaluations_saved": 1.0
        - new["evaluations_total"] / full["evaluations_total"],
        "warm_vs_cold_evaluations": 1.0
        - new["evaluations_total"] / cold["evaluations_total"],
        "gauss_seidel_vs_jacobi_evaluations": 1.0
        - cold["evaluations_total"] / jacobi["evaluations_total"],
    }

    # ISSUE 2 acceptance: >=2x systems/sec over PR 1's gs_warm_cached
    # reference on the same sweep (phase-calibrated, see above).
    assert speedups["vs_pr1_calibrated"] >= 2.0, speedups

    for run in runs.values():
        del run["schedulable"]  # bulky and redundant once cross-checked
    payload = {
        "description": "campaign engine throughput (systems analyzed/sec) "
        "across kernel x scheduler axes; see "
        "benchmarks/bench_campaign_engine.py",
        "sweep": {
            "levels": list(LEVELS),
            "systems_per_cell": 6,
            "base": {k: list(v) if isinstance(v, tuple) else v
                     for k, v in BASE.items()},
        },
        "pr1_reference": PR1_REFERENCE,
        "runs": runs,
        "speedups": speedups,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    write_artifact(
        "campaign_engine.txt",
        json.dumps(payload["speedups"], indent=2) + "\n",
    )

    benchmark(lambda: Campaign(
        CampaignSpec(
            grid={"utilization": (0.4, 0.6)},
            base=BASE,
            methods=("gauss_seidel",),
            systems_per_cell=2,
            seed=3,
        )
    ).run(workers=1))
