"""Campaign engine throughput and the warm-start / memoization speedup.

Runs the same utilization sweep four ways -- {warm, cold} x {phase cache
on, off} -- and records systems-analyzed-per-second plus the evaluation
accounting in ``BENCH_campaign.json`` at the repository root (the number
the ROADMAP's scaling work tracks).

The warm runs use the ``gauss_seidel`` method: warm-start chaining saves
outer rounds only when a round propagates jitter through whole chains
(Jacobi's round count is floored by chain depth, so its warm savings are
marginal -- the report records both).
"""

import json
from pathlib import Path

from repro.analysis.busy import set_phase_cache_enabled
from repro.batch import Campaign, CampaignSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_campaign.json"

BASE = {
    "n_platforms": 3,
    "n_transactions": 4,
    "tasks_per_transaction": (2, 4),
}
LEVELS = tuple(0.3 + 0.05 * k for k in range(14))


def _spec(method: str, warm: bool) -> CampaignSpec:
    return CampaignSpec(
        grid={"utilization": LEVELS},
        base=BASE,
        methods=(method,),
        systems_per_cell=6,
        seed=3,
        warm_start=warm,
    )


def _run(method: str, warm: bool, cache: bool) -> dict:
    previous = set_phase_cache_enabled(cache)
    try:
        result = Campaign(_spec(method, warm)).run(workers=1)
    finally:
        set_phase_cache_enabled(previous)
    acc = result.accounting()
    return {
        "method": method,
        "warm_start": warm,
        "phase_cache": cache,
        "systems": acc["systems"],
        "wall_time_s": acc["wall_time_s"],
        "systems_per_second": acc["systems_per_second"],
        "evaluations_total": acc["evaluations_total"],
        "outer_iterations_total": acc["outer_iterations_total"],
    }


def test_campaign_throughput(benchmark, write_artifact):
    runs = {
        "gs_warm_cached": _run("gauss_seidel", warm=True, cache=True),
        "gs_cold_cached": _run("gauss_seidel", warm=False, cache=True),
        "gs_cold_uncached": _run("gauss_seidel", warm=False, cache=False),
        "jacobi_cold_cached": _run("reduced", warm=False, cache=True),
    }

    warm, cold = runs["gs_warm_cached"], runs["gs_cold_cached"]
    jacobi = runs["jacobi_cold_cached"]

    # The measured speedups the ISSUE 1 acceptance criterion asks for:
    # warm-start chaining must save evaluations over the cold sweep, and
    # the Gauss-Seidel path must beat the Jacobi baseline.
    assert warm["evaluations_total"] < cold["evaluations_total"]
    assert cold["evaluations_total"] < jacobi["evaluations_total"]

    payload = {
        "description": "campaign engine throughput (systems analyzed/sec); "
        "see benchmarks/bench_campaign_engine.py",
        "sweep": {
            "levels": list(LEVELS),
            "systems_per_cell": 6,
            "base": {k: list(v) if isinstance(v, tuple) else v
                     for k, v in BASE.items()},
        },
        "runs": runs,
        "speedups": {
            "warm_vs_cold_evaluations": 1.0
            - warm["evaluations_total"] / cold["evaluations_total"],
            "gauss_seidel_vs_jacobi_evaluations": 1.0
            - cold["evaluations_total"] / jacobi["evaluations_total"],
            "warm_vs_cold_wall": 1.0
            - warm["wall_time_s"] / cold["wall_time_s"],
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    write_artifact(
        "campaign_engine.txt",
        json.dumps(payload["speedups"], indent=2) + "\n",
    )

    benchmark(lambda: Campaign(
        CampaignSpec(
            grid={"utilization": (0.4, 0.6)},
            base=BASE,
            methods=("gauss_seidel",),
            systems_per_cell=2,
            seed=3,
        )
    ).run(workers=1))
