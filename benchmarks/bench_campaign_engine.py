"""Campaign engine throughput across the kernel and scheduler axes.

Runs the reference utilization sweep under every interesting combination
of the two PR 2 axes -- interference *kernel* (scalar reference closures
vs the NumPy vector kernel vs the size-adaptive auto default) and outer
*scheduler* (Jacobi, full Gauss-Seidel, chain-aware dirty-set
Gauss-Seidel, and the PR 1-cost-model reference mode with every driver
cache disabled) -- and records systems-analyzed-per-second plus the
evaluation accounting in ``BENCH_campaign.json`` at the repository root.

ISSUE 3 additions, recorded alongside the kernel x scheduler matrix:

* ``sharding`` -- the reference sweep split ``--shard 0/2`` / ``1/2``;
  aggregate throughput models two hosts running side by side
  (total systems / slowest shard wall) and must reach >= 1.8x the
  single-shard run; the shard union is asserted bit-identical to it.
* ``collection`` -- the 2-worker sweep under ``collect="pickle"`` vs the
  ``collect="shm"`` fixed-width shared-memory ring.
* ``wide_view`` -- the vector-vs-scalar kernel speedup on the
  ``wide_view_spec`` generator preset (>= 100 batched jobs per Eq. 15
  call), where ``kernel="auto"`` selects the vector kernel.

ISSUE 4 addition:

* ``verdict_mode`` -- the reference sweep analyzed with the ``verdict``
  method (deadline-ceiling early exits + pre-filters + monotone level
  pruning/bisection along each chain) against the exact ``gauss_seidel``
  baseline.  Verdicts are asserted identical cell for cell; the
  acceptance criterion is >= 3x systems/sec.

ISSUE 6 addition:

* ``result_store`` -- the reference sweep cold (filling a fresh
  content-addressed store) vs fully warmed (every cell served from
  disk), both asserted bit-identical to the storeless run.  Non-gating:
  the warm/cold ratio depends on disk latency, not on this code.

The acceptance criterion of ISSUE 2 is >=2x systems/sec over PR 1's
``gs_warm_cached`` run on this same sweep; PR 1's recorded numbers are
pinned in ``PR1_REFERENCE`` below (they were re-measured against PR 1's
actual code on this hardware within 3% before being frozen here).  Each
configuration is timed best-of-N to damp scheduler noise.

Caveat on "the same sweep": PR 2 batched the generator's RNG draws (one
call per parameter family), which changes the random stream, so the same
seeds now draw *statistically identical but not bit-identical* systems.
Throughput comparisons against PR 1 therefore compare equal-distribution
workloads, not the very same 84 systems; within-tree comparisons (every
assertion below except the calibrated one) are unaffected.
"""

import argparse
import json
import time
from pathlib import Path

from repro.analysis import AnalysisConfig
from repro.batch import (
    Campaign,
    CampaignSpec,
    holistic_method,
    linspace_levels,
    merge_campaign_results,
    register_method,
)
from repro.gen import campaign_base, wide_view_spec

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_campaign.json"

#: PR 1's ``gs_warm_cached`` reference run on this sweep, as recorded in
#: the BENCH_campaign.json committed by PR 1.
PR1_REFERENCE = {
    "method": "gauss_seidel",
    "systems": 84,
    "wall_time_s": 0.23934251199989376,
    "systems_per_second": 350.9614706477104,
    "evaluations_total": 34392,
    "outer_iterations_total": 175,
}

#: Wall-time ratio between PR 1's *actual code* and this tree's
#: ``pr1_cost_model`` ablation mode on this sweep, measured by
#: interleaving the two builds (git stash <-> working tree) over six
#: rounds of best-of-N timings on the same hardware: the ablation gates
#: the driver caches, dirty set and job chaining, but keeps the
#: compile-layer rework (merged W rows, inlined fixed-point loops) and
#: the batched generator, which cannot be switched off by config.
#: Multiplying the in-process ablation wall time by this factor
#: reconstructs a PR 1 wall time measured in the *same machine phase* as
#: the new run -- the container's throughput drifts by +-30% over
#: minutes, so comparing against the absolute recorded numbers alone
#: would make the speedup assertion a coin flip.  Measured pairs
#: (PR 1 wall, ablation wall): (0.2301, 0.2218), (0.2363, 0.2257),
#: (0.2450, 0.2099), (0.3086, 0.2573), (0.2484, 0.2146),
#: (0.2535, 0.2222) -> ratios 1.04-1.20, mean 1.16.  Re-measure (stash
#: PR 2, interleave both builds) before trusting this constant after any
#: change to what the ablation mode covers.
PR1_WALL_OVER_COST_MODEL = 1.16

BASE = {
    "n_platforms": 3,
    "n_transactions": 4,
    "tasks_per_transaction": (2, 4),
}
LEVELS = linspace_levels(0.30, 0.95, 14)
REPEATS = 3
#: Replicates per grid cell of the matrix sweep / the sharding sweep.
SYSTEMS_PER_CELL = 6
SHARD_REPLICATES = 64

#: Extra method variants spanning the kernel/scheduler matrix; the
#: built-in ``gauss_seidel`` (dirty set + auto kernel) is the new default
#: and ``gauss_seidel_full`` the dirty-set ablation.
VARIANTS = {
    "gs_kernel_scalar": AnalysisConfig(
        method="reduced", update="gauss_seidel", kernel="scalar"
    ),
    "gs_kernel_vector": AnalysisConfig(
        method="reduced", update="gauss_seidel", kernel="vector"
    ),
    "pr1_cost_model": AnalysisConfig(
        method="reduced", update="gauss_seidel", incremental=False,
        kernel="scalar", driver_cache=False,
    ),
}


def _spec(method: str, warm: bool) -> CampaignSpec:
    return CampaignSpec(
        grid={"utilization": LEVELS},
        base=BASE,
        methods=(method,),
        systems_per_cell=SYSTEMS_PER_CELL,
        seed=3,
        warm_start=warm,
    )


#: The kernel x scheduler matrix: name -> (method, warm, kernel, scheduler).
MATRIX = {
    # The headline configuration: dirty-set Gauss-Seidel, auto kernel,
    # warm-start chaining, driver caches on.
    "gs_warm_cached": ("gauss_seidel", True, "auto", "gs_incremental"),
    # Kernel axis (same scheduler, forced kernels).
    "gs_warm_scalar": ("gs_kernel_scalar", True, "scalar", "gs_incremental"),
    "gs_warm_vector": ("gs_kernel_vector", True, "vector", "gs_incremental"),
    # Scheduler axis (auto kernel unless noted).
    "gs_full_warm": ("gauss_seidel_full", True, "auto", "gs_full"),
    "gs_cold_cached": ("gauss_seidel", False, "auto", "gs_incremental"),
    "jacobi_cold": ("reduced", False, "auto", "jacobi"),
    # PR 1 cost model: full Gauss-Seidel sweeps, scalar kernel, no
    # driver caches/memos/warm job chains -- the in-process ablation
    # of everything PR 2 added on top of PR 1's code structure.
    "pr1_cost_model_warm": ("pr1_cost_model", True, "scalar", "gs_full"),
}


def _matrix_runs() -> dict:
    """Best-of-REPEATS walls of every matrix configuration, interleaved
    (the speedup asserts compare *ratios*; see :func:`_interleaved_best`)."""
    campaigns = {
        name: Campaign(_spec(method, warm))
        for name, (method, warm, _k, _s) in MATRIX.items()
    }
    # The headline speedup assert rides on this block's ratios: give the
    # best-of minimum two extra samples over the satellite blocks.
    best = _interleaved_best(
        {name: lambda c=c: c.run(workers=1) for name, c in campaigns.items()},
        repeats=REPEATS + 2,
    )
    runs = {}
    for name, (method, warm, kernel, scheduler) in MATRIX.items():
        wall, result = best[name]
        acc = result.accounting()
        runs[name] = {
            "method": method,
            "warm_start": warm,
            "kernel": kernel,
            "scheduler": scheduler,
            "systems": acc["systems"],
            "wall_time_s": wall,
            "systems_per_second": acc["systems"] / wall,
            "evaluations_total": acc["evaluations_total"],
            "outer_iterations_total": acc["outer_iterations_total"],
            "task_solves": sum(
                c.extras.get("fp_task_solves", 0) for c in result.cells
            ),
            "task_skips": sum(
                c.extras.get("fp_task_skips", 0) for c in result.cells
            ),
            "schedulable": [int(c.schedulable) for c in result.cells],
        }
    return runs


def _interleaved_best(fns: dict, repeats: int | None = None) -> dict:
    """Best-of-*repeats* walls for several configurations, interleaved.

    Ratios between configurations are what the acceptance asserts check,
    and this container's throughput drifts by +-30% over tens of seconds
    -- measuring each configuration's block sequentially bakes that drift
    into the ratio.  Rotating through the configurations each repeat makes
    every configuration sample the same machine phases, so their best-of
    walls stay comparable.  Returns ``{name: (wall, result)}``.
    """
    if repeats is None:
        repeats = REPEATS  # read at call time so --quick can shrink it
    for fn in fns.values():  # warm interpreter/caches per config
        fn()
    best: dict = {name: None for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            t0 = time.perf_counter()
            result = fn()
            wall = time.perf_counter() - t0
            if best[name] is None or wall < best[name][0]:
                best[name] = (wall, result)
    return best


def _measure_sharding(spec: CampaignSpec) -> dict:
    """The reference sweep as a 2-shard deployment.

    Each shard runs on one (simulated) host; aggregate throughput is
    total systems / slowest shard wall -- the moment the union is ready.
    The union itself is asserted bit-identical to the unsharded run.

    The sweep runs with 64 replicates (64 chains) instead of the
    matrix's 6: the hash partition balances chain *counts* within one,
    but per-chain analysis cost varies with the drawn systems (heavy
    chains hit divergent high-utilization levels), so a 6-chain sweep
    can land a 2:1 wall-time split on two hosts.  A few dozen chains --
    still tiny by distributed-campaign standards -- let the cost
    imbalance average out, which is the regime the shard flag exists
    for (at 64 chains the seed-3 split balances to < 1%).
    """
    spec = CampaignSpec.from_dict(
        {**spec.to_dict(), "systems_per_cell": SHARD_REPLICATES}
    )
    campaign = Campaign(spec)
    # max(shard walls) is biased upward by per-run scheduler noise (it
    # takes the worse of two noisy samples); extra best-of repeats debias
    # each wall before the max.
    best = _interleaved_best(
        {
            "full": lambda: campaign.run(workers=1),
            "shard0": lambda: campaign.run(workers=1, shard=(0, 2)),
            "shard1": lambda: campaign.run(workers=1, shard=(1, 2)),
        },
        repeats=REPEATS + 2,
    )
    full_wall, full = best["full"]
    shard_walls = [best["shard0"][0], best["shard1"][0]]
    parts = [best["shard0"][1], best["shard1"][1]]
    assert merge_campaign_results(parts).metrics() == full.metrics()
    aggregate_speedup = full_wall / max(shard_walls)
    return {
        "shards": 2,
        "unsharded_wall_s": full_wall,
        "shard_wall_s": shard_walls,
        "shard_systems": [p.n_systems for p in parts],
        "aggregate_systems_per_second": full.n_systems / max(shard_walls),
        "aggregate_speedup": aggregate_speedup,
    }


def _measure_collection(spec: CampaignSpec) -> dict:
    """2-worker pool: pickled chunk returns vs the shared-memory ring."""
    campaign = Campaign(spec)
    best = _interleaved_best(
        {
            mode: lambda m=mode: campaign.run(workers=2, collect=m)
            for mode in ("pickle", "shm")
        }
    )
    out: dict = {}
    for mode, (wall, result) in best.items():
        out[mode] = {
            "wall_time_s": wall,
            "systems_per_second": result.n_systems / wall,
            "shm_records": result.shm_records,
            "shm_overflow": result.shm_overflow,
        }
    assert best["shm"][1].metrics() == best["pickle"][1].metrics()
    out["shm_vs_pickle"] = (
        out["pickle"]["wall_time_s"] / out["shm"]["wall_time_s"]
    )
    return out


def _measure_verdict_mode(spec: CampaignSpec) -> dict:
    """Exact vs verdict-mode throughput on the reference sweep.

    Same spec, two methods: ``gauss_seidel`` (the PR 3 exact pipeline) and
    ``verdict`` (early-exit solves, pre-filters, monotone level pruning).
    Every cell's verdict must agree; the verdict run additionally reports
    how many cells were *inferred* by the pruning instead of solved.
    """
    exact_c = Campaign(
        CampaignSpec.from_dict({**spec.to_dict(), "methods": ["gauss_seidel"]})
    )
    verdict_c = Campaign(
        CampaignSpec.from_dict({**spec.to_dict(), "methods": ["verdict"]})
    )
    best = _interleaved_best(
        {
            "exact": lambda: exact_c.run(workers=1),
            "verdict": lambda: verdict_c.run(workers=1),
        },
        repeats=REPEATS + 2,
    )
    exact_wall, exact = best["exact"]
    verdict_wall, verdict = best["verdict"]
    assert [c.schedulable for c in verdict.cells] == [
        c.schedulable for c in exact.cells
    ], "verdict-mode verdicts diverged from exact mode"
    inferred = sum(
        1 for c in verdict.cells if c.extras.get("verdict_inferred")
    )
    return {
        "exact": {
            "wall_time_s": exact_wall,
            "systems_per_second": exact.n_systems / exact_wall,
            "evaluations_total": exact.accounting()["evaluations_total"],
        },
        "verdict": {
            "wall_time_s": verdict_wall,
            "systems_per_second": verdict.n_systems / verdict_wall,
            "evaluations_total": verdict.accounting()["evaluations_total"],
            "cells": len(verdict.cells),
            "inferred_cells": inferred,
            "solved_cells": len(verdict.cells) - inferred,
            "ceiling_exits": sum(
                c.extras.get("fp_ceiling_exits", 0) for c in verdict.cells
            ),
            "prefilter_classified": sum(
                1 for c in verdict.cells if c.extras.get("fp_prefilter")
            ),
        },
        "verdict_vs_exact": exact_wall / verdict_wall,
    }


def _measure_result_store(spec: CampaignSpec) -> dict:
    """Cold-vs-warmed reference sweep through the content-addressed store.

    The cold run fills a fresh store (paying the put overhead on top of
    every solve); the warmed rerun serves every cell from disk.  Both
    must stay bit-identical to the storeless run; the interesting number
    is ``warm_vs_cold`` -- how much a fully warmed store compresses the
    sweep (non-gating: it depends on disk latency).
    """
    import shutil
    import tempfile

    from repro.batch import ResultStore

    campaign = Campaign(spec)
    root = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        store = ResultStore(root)
        reference = campaign.run(workers=1)
        t0 = time.perf_counter()
        cold = campaign.run(workers=1, store=store)
        cold_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = campaign.run(workers=1, store=store)
        warm_wall = time.perf_counter() - t0
        assert cold.metrics() == reference.metrics()
        assert warm.metrics() == reference.metrics()
        n = spec.n_analyses()
        assert cold.store_hits == 0 and cold.store_misses == n
        assert warm.store_hits == n and warm.store_misses == 0
        stats = store.stats()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cold": {
            "wall_time_s": cold_wall,
            "systems_per_second": cold.n_systems / cold_wall,
            "store_misses": cold.store_misses,
        },
        "warm": {
            "wall_time_s": warm_wall,
            "systems_per_second": warm.n_systems / warm_wall,
            "store_hits": warm.store_hits,
        },
        "warm_vs_cold": cold_wall / warm_wall,
        "entries": stats.entries,
        "store_bytes": stats.bytes,
    }


def _measure_wide_view() -> dict:
    """Vector-vs-scalar kernel on the wide-view preset (ROADMAP item)."""
    kernels = {
        "scalar": AnalysisConfig(
            method="reduced", update="gauss_seidel", kernel="scalar"
        ),
        "vector": AnalysisConfig(
            method="reduced", update="gauss_seidel", kernel="vector"
        ),
    }
    campaigns = {}
    for name, config in kernels.items():
        method = f"wv_{name}"
        register_method(
            method, holistic_method(config), supports_warm_start=True
        )
        campaigns[name] = Campaign(
            CampaignSpec(
                grid={"utilization": linspace_levels(0.30, 0.60, 3)},
                base=campaign_base(wide_view_spec()),
                methods=(method,),
                systems_per_cell=2,
                seed=7,
            )
        )
    best = _interleaved_best(
        {name: lambda c=c: c.run(workers=1) for name, c in campaigns.items()}
    )
    out: dict = {}
    verdicts = {}
    for name, (wall, result) in best.items():
        verdicts[name] = [int(c.schedulable) for c in result.cells]
        out[name] = {
            "wall_time_s": wall,
            "systems_per_second": result.n_systems / wall,
            "evaluations_total": result.accounting()["evaluations_total"],
        }
    assert verdicts["scalar"] == verdicts["vector"]
    out["vector_vs_scalar"] = (
        out["scalar"]["wall_time_s"] / out["vector"]["wall_time_s"]
    )
    return out


def run_bench(*, gating: bool = True, out_path: Path = BENCH_JSON) -> dict:
    """Measure every block and write the bench JSON.

    ``gating=False`` (the CI ``--quick`` smoke) keeps the deterministic
    cost-model asserts (eval-count relations, verdict equality, shard
    union exactness) but skips the wall-clock *ratio* asserts -- shared
    CI runners are too noisy to gate on; the artifact is the point.
    """
    for name, config in VARIANTS.items():
        register_method(name, holistic_method(config), supports_warm_start=True)

    runs = _matrix_runs()

    new = runs["gs_warm_cached"]
    full = runs["gs_full_warm"]
    cold = runs["gs_cold_cached"]
    jacobi = runs["jacobi_cold"]
    pr1_mode = runs["pr1_cost_model_warm"]

    # Verdicts must agree across every kernel/scheduler combination.
    for name, run in runs.items():
        assert run["schedulable"] == new["schedulable"], name

    # The measured savings each layer claims:
    # dirty-set skips work without changing outer accounting semantics,
    assert new["task_skips"] > 0
    assert new["evaluations_total"] < full["evaluations_total"]
    # warm-start chaining still saves evaluations over the cold sweep,
    assert new["evaluations_total"] < cold["evaluations_total"]
    # and Gauss-Seidel still beats the Jacobi baseline.
    assert cold["evaluations_total"] < jacobi["evaluations_total"]

    speedups = {
        "vs_pr1_recorded": new["systems_per_second"]
        / PR1_REFERENCE["systems_per_second"],
        "vs_pr1_cost_model_inprocess": pr1_mode["wall_time_s"]
        / new["wall_time_s"],
        # Same-machine-phase estimate of the full PR 1 -> PR 2 speedup:
        # the in-process ablation ratio scaled by the pinned
        # actual-PR1-vs-ablation factor (see PR1_WALL_OVER_COST_MODEL).
        "vs_pr1_calibrated": PR1_WALL_OVER_COST_MODEL
        * pr1_mode["wall_time_s"] / new["wall_time_s"],
        "dirty_set_evaluations_saved": 1.0
        - new["evaluations_total"] / full["evaluations_total"],
        "warm_vs_cold_evaluations": 1.0
        - new["evaluations_total"] / cold["evaluations_total"],
        "gauss_seidel_vs_jacobi_evaluations": 1.0
        - cold["evaluations_total"] / jacobi["evaluations_total"],
    }

    # ISSUE 2 acceptance: >=2x systems/sec over PR 1's gs_warm_cached
    # reference on the same sweep (phase-calibrated, see above).
    if gating:
        assert speedups["vs_pr1_calibrated"] >= 2.0, speedups

    # ISSUE 3: the distributed-execution measurements.
    sharding = _measure_sharding(_spec("gauss_seidel", True))
    collection = _measure_collection(_spec("gauss_seidel", True))
    wide_view = _measure_wide_view()

    # ISSUE 3 acceptance: a 2-shard deployment of the reference sweep
    # delivers >= 1.8x the single-host aggregate throughput.
    if gating:
        assert sharding["aggregate_speedup"] >= 1.8, sharding

    # ISSUE 4: the verdict-mode pipeline on the reference sweep.
    verdict_mode = _measure_verdict_mode(_spec("gauss_seidel", True))
    # ISSUE 4 acceptance: >= 3x systems/sec over the exact pipeline.
    if gating:
        assert verdict_mode["verdict_vs_exact"] >= 3.0, verdict_mode
    assert verdict_mode["verdict"]["inferred_cells"] > 0, verdict_mode

    # ISSUE 6: cold-vs-warmed reference sweep through the result store.
    # Deliberately non-gating on the speedup ratio -- serving from disk
    # always beats solving, but by a disk-latency-dependent factor.
    result_store = _measure_result_store(_spec("gauss_seidel", True))

    for run in runs.values():
        del run["schedulable"]  # bulky and redundant once cross-checked
    payload = {
        "description": "campaign engine throughput (systems analyzed/sec) "
        "across kernel x scheduler axes; see "
        "benchmarks/bench_campaign_engine.py",
        "sweep": {
            "levels": list(LEVELS),
            "systems_per_cell": SYSTEMS_PER_CELL,
            "base": {k: list(v) if isinstance(v, tuple) else v
                     for k, v in BASE.items()},
        },
        "pr1_reference": PR1_REFERENCE,
        "runs": runs,
        "speedups": speedups,
        "sharding": sharding,
        "collection": collection,
        "wide_view": wide_view,
        "verdict_mode": verdict_mode,
        "result_store": result_store,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_campaign_throughput(benchmark, write_artifact):
    payload = run_bench(gating=True)

    write_artifact(
        "campaign_engine.txt",
        json.dumps(
            {
                "speedups": payload["speedups"],
                "sharding_aggregate_speedup":
                    payload["sharding"]["aggregate_speedup"],
                "collection_shm_vs_pickle":
                    payload["collection"]["shm_vs_pickle"],
                "wide_view_vector_vs_scalar":
                    payload["wide_view"]["vector_vs_scalar"],
                "verdict_vs_exact":
                    payload["verdict_mode"]["verdict_vs_exact"],
            },
            indent=2,
        ) + "\n",
    )

    benchmark(lambda: Campaign(
        CampaignSpec(
            grid={"utilization": (0.4, 0.6)},
            base=BASE,
            methods=("gauss_seidel",),
            systems_per_cell=2,
            seed=3,
        )
    ).run(workers=1))


def main(argv=None) -> int:
    """Standalone entry point (CI smoke): ``python benchmarks/bench_campaign_engine.py``.

    ``--quick`` shrinks the sweep and skips the wall-clock ratio gates so
    the run fits a non-gating CI smoke step in well under a minute while
    still writing the full-schema bench JSON artifact.
    """
    global LEVELS, REPEATS, SYSTEMS_PER_CELL, SHARD_REPLICATES

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small sweep, one repeat, no wall-clock ratio gates",
    )
    parser.add_argument(
        "--out", default=str(BENCH_JSON), metavar="PATH",
        help="where to write the bench JSON (default: repo root)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        LEVELS = linspace_levels(0.30, 0.90, 5)
        REPEATS = 1
        SYSTEMS_PER_CELL = 3
        SHARD_REPLICATES = 12
    payload = run_bench(gating=not args.quick, out_path=Path(args.out))
    print(json.dumps(
        {
            "quick": args.quick,
            "speedups": payload["speedups"],
            "sharding_aggregate_speedup":
                payload["sharding"]["aggregate_speedup"],
            "verdict_vs_exact": payload["verdict_mode"]["verdict_vs_exact"],
            "result_store_warm_vs_cold":
                payload["result_store"]["warm_vs_cold"],
            "written": str(Path(args.out)),
        },
        indent=2,
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
