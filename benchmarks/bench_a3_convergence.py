"""A3 (ablation) -- convergence of the dynamic-offset fixed point.

Sec. 3.2 asserts convergence "by the monotonic dependency of the response
times and the jitter terms".  This bench measures how many outer (Jacobi)
iterations the fixed point actually needs as utilization grows, on random
3-platform pipelines: iterations grow with load, stay small below
saturation, and the final verdicts remain consistent with a one-shot
re-analysis at the fixed point.

Since ISSUE 1 the sweep is a declarative config over :mod:`repro.batch`
(warm-start chaining disabled: the bench measures *cold* convergence).
"""

import numpy as np
import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.batch import Campaign, CampaignSpec
from repro.gen import RandomSystemSpec, random_system
from repro.viz import format_table, write_csv

LEVELS = (0.2, 0.4, 0.6, 0.8)
N_SYSTEMS = 5

SPEC = CampaignSpec(
    grid={"utilization": LEVELS},
    base={
        "n_platforms": 3,
        "n_transactions": 4,
        "tasks_per_transaction": (2, 4),
        "delay_range": (0.0, 2.0),
    },
    methods=("reduced",),
    systems_per_cell=N_SYSTEMS,
    seed=0,
    warm_start=False,
)


def test_convergence(benchmark, output_dir, write_artifact):
    result = Campaign(SPEC).run(workers=1)
    assert all(cell.converged for cell in result.cells)

    rows = []
    csv_rows = []
    for row in result.acceptance():
        util = row["utilization"]
        cells = [
            c for c in result.cells if c.params["utilization"] == util
        ]
        iters = [c.outer_iterations for c in cells]
        rows.append([
            f"{util:.1f}", f"{np.mean(iters):.1f}", str(max(iters)),
            f"{row['accepted']}/{row['n']}",
        ])
        csv_rows.append([util, float(np.mean(iters)), max(iters), row["accepted"]])

    table = format_table(
        ["utilization", "mean iters", "max iters", "schedulable"],
        rows,
        title="A3: outer-iteration count of the Eq. 18 fixed point",
    )
    write_artifact("a3_convergence.txt", table + "\n")
    write_csv(
        output_dir / "a3_convergence.csv",
        ["utilization", "mean_iterations", "max_iterations", "schedulable"],
        csv_rows,
    )

    # Shape: mean iterations never decrease dramatically with load.
    means = [float(r[1]) for r in rows]
    assert means[-1] >= means[0] - 0.5

    # Fixed-point property, spot-checked: re-running the analysis at the
    # converged jitters reproduces the responses.
    spec = RandomSystemSpec(
        n_platforms=3, n_transactions=4, tasks_per_transaction=(2, 4),
        utilization=0.6, delay_range=(0.0, 2.0),
    )
    system = random_system(spec, seed=0)
    first = analyze(system, trace=True)
    assert first.converged
    again = analyze(system)
    for key in first.tasks:
        assert again.tasks[key].wcrt == pytest.approx(first.tasks[key].wcrt)

    spec_b = RandomSystemSpec(
        n_platforms=3, n_transactions=4, tasks_per_transaction=(2, 4),
        utilization=0.6,
    )
    system_b = random_system(spec_b, seed=0)
    benchmark(lambda: analyze(system_b, config=AnalysisConfig()))
