"""A3 (ablation) -- convergence of the dynamic-offset fixed point.

Sec. 3.2 asserts convergence "by the monotonic dependency of the response
times and the jitter terms".  This bench measures how many outer (Jacobi)
iterations the fixed point actually needs as utilization grows, on random
3-platform pipelines: iterations grow with load, stay small below
saturation, and the final verdicts remain consistent with a one-shot
re-analysis at the fixed point.
"""

import numpy as np
import pytest

from repro.analysis import AnalysisConfig, analyze
from repro.gen import RandomSystemSpec, random_system
from repro.viz import format_table, write_csv

LEVELS = (0.2, 0.4, 0.6, 0.8)
SEEDS = tuple(range(5))


def test_convergence(benchmark, output_dir, write_artifact):
    rows = []
    csv_rows = []
    for util in LEVELS:
        iters = []
        sched = 0
        for seed in SEEDS:
            spec = RandomSystemSpec(
                n_platforms=3,
                n_transactions=4,
                tasks_per_transaction=(2, 4),
                utilization=util,
                delay_range=(0.0, 2.0),
            )
            system = random_system(spec, seed=seed)
            result = analyze(system, trace=True)
            assert result.converged
            iters.append(result.outer_iterations)
            sched += int(result.schedulable)

            # Fixed-point property: re-running the per-task analysis with
            # the final jitters reproduces the final responses.
            again = analyze(system)
            for key in result.tasks:
                assert again.tasks[key].wcrt == pytest.approx(
                    result.tasks[key].wcrt
                )
        rows.append([
            f"{util:.1f}", f"{np.mean(iters):.1f}", str(max(iters)),
            f"{sched}/{len(SEEDS)}",
        ])
        csv_rows.append([util, float(np.mean(iters)), max(iters), sched])

    table = format_table(
        ["utilization", "mean iters", "max iters", "schedulable"],
        rows,
        title="A3: outer-iteration count of the Eq. 18 fixed point",
    )
    write_artifact("a3_convergence.txt", table + "\n")
    write_csv(
        output_dir / "a3_convergence.csv",
        ["utilization", "mean_iterations", "max_iterations", "schedulable"],
        csv_rows,
    )

    # Shape: mean iterations never decrease dramatically with load.
    means = [float(r[1]) for r in rows]
    assert means[-1] >= means[0] - 0.5

    spec = RandomSystemSpec(
        n_platforms=3, n_transactions=4, tasks_per_transaction=(2, 4),
        utilization=0.6,
    )
    system = random_system(spec, seed=0)
    benchmark(lambda: analyze(system, config=AnalysisConfig()))
