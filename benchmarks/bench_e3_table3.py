"""E3 -- Table 3: the per-iteration (J, R) trace of Gamma_1.

The headline reproduction: the dynamic-offset fixed point of Sec. 3.2 on
the example, iteration by iteration.  All published cells match except the
R = 39 entries of tau_1_4, where the paper's own equations give 31 (same
verdict; full derivation in EXPERIMENTS.md).
"""

import pytest

from repro.analysis import analyze
from repro.paper import (
    PAPER_TABLE3_CORRECTED,
    paper_table3_rows,
    render_table3,
    sensor_fusion_system,
)

EXPECTED = {
    # (task j, iteration n) -> (J, R); ours, which equals the paper except (3, 3).
    (0, 0): (0, 12), (0, 1): (0, 12), (0, 2): (0, 12), (0, 3): (0, 12),
    (1, 0): (0, 9), (1, 1): (9, 18), (1, 2): (9, 18), (1, 3): (9, 18),
    (2, 0): (0, 10), (2, 1): (5, 15), (2, 2): (14, 24), (2, 3): (14, 24),
    (3, 0): (0, 12), (3, 1): (5, 17), (3, 2): (10, 22),
    (3, 3): (19, PAPER_TABLE3_CORRECTED),
}


def test_table3_regeneration(benchmark, write_artifact):
    system = sensor_fusion_system()
    result = benchmark(lambda: analyze(system, trace=True))

    table = render_table3(result)
    published = "\n".join(
        f"{r['task']}: J={r['J']} R={r['R']}" for r in paper_table3_rows()
    )
    write_artifact(
        "table3.txt",
        table + "\n\npublished reference:\n" + published + "\n",
    )

    assert len(result.iterations) == 4
    for (j, n), (jit, resp) in EXPECTED.items():
        row = result.iterations[n]
        assert row.jitters[(0, j)] == pytest.approx(jit), f"J({n}) task {j}"
        assert row.responses[(0, j)] == pytest.approx(resp), f"R({n}) task {j}"

    assert result.schedulable
    assert result.wcrt(0, 3) <= 50.0  # the paper's acceptance criterion
