"""E16 (study) -- acceptance ratio vs utilization.

The canonical schedulability-paper figure the 2006 paper did not have room
for: the fraction of random systems deemed schedulable as per-platform
utilization grows, for (a) the reduced analysis on shared platforms,
(b) the exact analysis, and (c) the dedicated-processor upper baseline.

Shape claims checked: all curves decrease with load; exact accepts at least
as much as reduced; dedicated accepts at least as much as both.
"""

import pytest

from repro.analysis import AnalysisConfig, analyze, analyze_dedicated
from repro.gen import RandomSystemSpec, random_system
from repro.viz import format_table, write_csv

LEVELS = (0.3, 0.5, 0.7, 0.85, 0.95)
SEEDS = tuple(range(12))


def _spec(util: float) -> RandomSystemSpec:
    return RandomSystemSpec(
        n_platforms=2,
        n_transactions=3,
        tasks_per_transaction=(1, 3),
        utilization=util,
        delay_range=(0.0, 1.5),
        deadline_factor=1.5,
    )


def test_acceptance_ratio(benchmark, output_dir, write_artifact):
    rows = []
    csv_rows = []
    prev = (1.1, 1.1, 1.1)
    for util in LEVELS:
        accepted = {"reduced": 0, "exact": 0, "dedicated": 0}
        for seed in SEEDS:
            system = random_system(_spec(util), seed=seed)
            red = analyze(system)
            if red.schedulable:
                accepted["reduced"] += 1
            exa = analyze(system, config=AnalysisConfig(method="exact"))
            if exa.schedulable:
                accepted["exact"] += 1
            if red.schedulable:
                assert exa.schedulable, "exact must accept whatever reduced accepts"
            ded = analyze_dedicated(system)
            if ded.schedulable:
                accepted["dedicated"] += 1
            if exa.schedulable:
                assert ded.schedulable, "dedicated platforms dominate shared ones"
        n = len(SEEDS)
        ratios = (
            accepted["reduced"] / n,
            accepted["exact"] / n,
            accepted["dedicated"] / n,
        )
        assert ratios[0] <= ratios[1] <= ratios[2] + 1e-9
        rows.append([f"{util:.2f}"] + [f"{r:.2f}" for r in ratios])
        csv_rows.append([util, *ratios])
        prev = ratios

    table = format_table(
        ["utilization", "reduced", "exact", "dedicated"],
        rows,
        title=f"E16: acceptance ratio over {len(SEEDS)} random systems per level",
    )
    write_artifact("e16_acceptance.txt", table + "\n")
    write_csv(
        output_dir / "e16_acceptance.csv",
        ["utilization", "reduced", "exact", "dedicated"],
        csv_rows,
    )

    # Monotone-ish decline: the highest load level accepts no more than the
    # lowest for every method.
    first = [float(x) for x in rows[0][1:]]
    last = [float(x) for x in rows[-1][1:]]
    for a, b in zip(last, first):
        assert a <= b + 1e-9

    benchmark(lambda: analyze(random_system(_spec(0.7), seed=0)))
