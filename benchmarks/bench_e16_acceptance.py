"""E16 (study) -- acceptance ratio vs utilization, on the campaign engine.

The canonical schedulability-paper figure the 2006 paper did not have room
for: the fraction of random systems deemed schedulable as per-platform
utilization grows, for (a) the reduced analysis on shared platforms,
(b) the exact analysis, and (c) the dedicated-processor upper baseline.

Since ISSUE 1 this bench is a declarative config over
:mod:`repro.batch`: one :class:`CampaignSpec` replaces the hand-rolled
triple loop, and the per-system method comparisons read off the engine's
paired cells (every method analyzes the *same* generated system).

Shape claims checked: all curves decrease with load; exact accepts at least
as much as reduced; dedicated accepts at least as much as both.
"""

from repro.analysis import analyze
from repro.batch import Campaign, CampaignSpec
from repro.gen import RandomSystemSpec, random_system
from repro.viz import format_table, write_csv

LEVELS = (0.3, 0.5, 0.7, 0.85, 0.95)
SEEDS = 12

SPEC = CampaignSpec(
    grid={"utilization": LEVELS},
    base={
        "n_platforms": 2,
        "n_transactions": 3,
        "tasks_per_transaction": (1, 3),
        "delay_range": (0.0, 1.5),
        "deadline_factor": 1.5,
    },
    methods=("reduced", "exact", "dedicated"),
    systems_per_cell=SEEDS,
    seed=0,
)


def test_acceptance_ratio(benchmark, output_dir, write_artifact):
    result = Campaign(SPEC).run(workers=1)

    # Per-system dominance: the engine pairs methods on identical systems.
    verdicts: dict[tuple, dict[str, bool]] = {}
    for cell in result.cells:
        key = (cell.params["utilization"], cell.replicate)
        verdicts.setdefault(key, {})[cell.method] = cell.schedulable
    for key, v in verdicts.items():
        if v["reduced"]:
            assert v["exact"], f"exact must accept whatever reduced accepts ({key})"
        if v["exact"]:
            assert v["dedicated"], f"dedicated platforms dominate shared ones ({key})"

    # Aggregate acceptance table straight from the engine.
    ratios: dict[float, dict[str, float]] = {}
    for row in result.acceptance():
        ratios.setdefault(row["utilization"], {})[row["method"]] = row["ratio"]

    rows = []
    csv_rows = []
    for util in LEVELS:
        r = ratios[util]
        assert r["reduced"] <= r["exact"] <= r["dedicated"] + 1e-9
        rows.append([f"{util:.2f}"] + [
            f"{r[m]:.2f}" for m in ("reduced", "exact", "dedicated")
        ])
        csv_rows.append([util, r["reduced"], r["exact"], r["dedicated"]])

    table = format_table(
        ["utilization", "reduced", "exact", "dedicated"],
        rows,
        title=f"E16: acceptance ratio over {SEEDS} random systems per level",
    )
    write_artifact("e16_acceptance.txt", table + "\n")
    write_csv(
        output_dir / "e16_acceptance.csv",
        ["utilization", "reduced", "exact", "dedicated"],
        csv_rows,
    )

    # Monotone-ish decline: the highest load level accepts no more than the
    # lowest for every method.
    first = [float(x) for x in rows[0][1:]]
    last = [float(x) for x in rows[-1][1:]]
    for a, b in zip(last, first):
        assert a <= b + 1e-9

    spec = RandomSystemSpec(
        n_platforms=2, n_transactions=3, tasks_per_transaction=(1, 3),
        utilization=0.7, delay_range=(0.0, 1.5), deadline_factor=1.5,
    )
    benchmark(lambda: analyze(random_system(spec, seed=0)))
