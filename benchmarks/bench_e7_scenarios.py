"""E7 -- Eq. 12: scenario explosion, exact vs reduced analysis.

The paper motivates the reduced analysis by the scenario count of the exact
one (Eq. 12).  This bench regenerates that comparison quantitatively:
scenario counts and wall-clock time of both methods on systems of growing
size, confirming the exponential/linear split and that the reduced bound
stays above the exact one.

Since ISSUE 1 the sweep runs on the campaign engine with a *custom*
generator and two *custom* per-task methods -- the extensibility path of
:mod:`repro.batch` (``register_generator`` / ``register_method``).
"""

import pytest

from repro.analysis import (
    count_scenarios_exact,
    count_scenarios_reduced,
    response_time_exact,
    response_time_reduced,
)
from repro.analysis.interfaces import AnalysisConfig
from repro.batch import Campaign, CampaignSpec, MethodOutcome, register_generator, register_method
from repro.gen import RandomSystemSpec, random_system
from repro.viz import format_table, write_csv

SIZES = (2, 3, 4, 5, 6)


def jittered_system(params, seed):
    """One-platform systems where everything interferes with the analyzed
    task; the bench pins its own seed so the published table reproduces."""
    n = int(params["n_transactions"])
    spec = RandomSystemSpec(
        n_platforms=1,               # everything interferes -> worst case
        n_transactions=n,
        tasks_per_transaction=(2, 2),
        utilization=0.4,
        delay_range=(0.0, 1.0),
    )
    system = random_system(spec, seed=1)
    for tr in system.transactions:
        for k, t in enumerate(tr.tasks):
            t.jitter = 1.5 * k
            t.offset = 0.5 * k
    # Make the analyzed task (last task of the last transaction) the lowest
    # priority in the system so *every* other task interferes: the scenario
    # product of Eq. 12 is then 2^(n-1) times the own-transaction candidates.
    system.transactions[-1].tasks[-1].priority = 0
    return system


def _last_task_method(kind):
    def run(system, warm_start):
        del warm_start
        a, b = len(system.transactions) - 1, 1
        if kind == "exact":
            scenarios = count_scenarios_exact(system, a, b)
            res = response_time_exact(
                system, a, b, config=AnalysisConfig(max_exact_scenarios=10**7)
            )
        else:
            scenarios = count_scenarios_reduced(system, a, b)
            res = response_time_reduced(system, a, b)
        deadline = float(system.transactions[a].deadline)
        return MethodOutcome(
            schedulable=res.wcrt <= deadline + 1e-9,
            evaluations=res.evaluations,
            max_wcrt_ratio=res.wcrt / deadline,
            extras={
                "scenarios": scenarios,
                "scenarios_evaluated": res.scenarios_evaluated,
                "wcrt": res.wcrt,
            },
        )

    return run


register_generator("e7_jittered", jittered_system)
register_method("e7_exact", _last_task_method("exact"))
register_method("e7_reduced", _last_task_method("reduced"))

SPEC = CampaignSpec(
    grid={"n_transactions": SIZES},
    methods=("e7_exact", "e7_reduced"),
    systems_per_cell=1,
    generator="e7_jittered",
)


def test_scenario_explosion(benchmark, output_dir, write_artifact):
    result = Campaign(SPEC).run(workers=1)
    cells = {(c.params["n_transactions"], c.method): c for c in result.cells}

    rows = []
    csv_rows = []
    for n in SIZES:
        exa, red = cells[(n, "e7_exact")], cells[(n, "e7_reduced")]
        assert red.extras["wcrt"] >= exa.extras["wcrt"] - 1e-9
        rows.append([
            str(n), str(exa.extras["scenarios"]), str(red.extras["scenarios"]),
            f"{exa.time_s * 1e3:.2f}", f"{red.time_s * 1e3:.2f}",
            f"{exa.extras['wcrt']:.2f}", f"{red.extras['wcrt']:.2f}",
        ])
        csv_rows.append([
            n, exa.extras["scenarios"], red.extras["scenarios"],
            exa.time_s, red.time_s, exa.extras["wcrt"], red.extras["wcrt"],
        ])

    table = format_table(
        ["txns", "scen(exact)", "scen(reduced)", "ms(exact)", "ms(reduced)",
         "R(exact)", "R(reduced)"],
        rows,
        title="E7: scenario counts and runtimes (Eq. 12)",
    )
    write_artifact("e7_scenarios.txt", table + "\n")
    write_csv(
        output_dir / "e7_scenarios.csv",
        ["transactions", "scenarios_exact", "scenarios_reduced",
         "time_exact_s", "time_reduced_s", "wcrt_exact", "wcrt_reduced"],
        csv_rows,
    )

    # Shape claims: exact scenario count grows (geometrically in the number
    # of interfering transactions); reduced count stays flat and small.
    exact_counts = [int(r[1]) for r in rows]
    reduced_counts = [int(r[2]) for r in rows]
    assert exact_counts == sorted(exact_counts)
    assert exact_counts[-1] > 8 * reduced_counts[-1]
    assert max(reduced_counts) <= 3

    # Time the reduced analysis on the largest instance.
    largest = jittered_system({"n_transactions": SIZES[-1]}, seed=1)
    benchmark(lambda: response_time_reduced(largest, SIZES[-1] - 1, 1))
