"""E7 -- Eq. 12: scenario explosion, exact vs reduced analysis.

The paper motivates the reduced analysis by the scenario count of the exact
one (Eq. 12).  This bench regenerates that comparison quantitatively:
scenario counts and wall-clock time of both methods on systems of growing
size, confirming the exponential/linear split and that the reduced bound
stays above the exact one.
"""

import time

import pytest

from repro.analysis import (
    count_scenarios_exact,
    count_scenarios_reduced,
    response_time_exact,
    response_time_reduced,
)
from repro.analysis.interfaces import AnalysisConfig
from repro.gen import RandomSystemSpec, random_system
from repro.viz import format_table, write_csv


def jittered_system(n_transactions, seed=1):
    spec = RandomSystemSpec(
        n_platforms=1,               # everything interferes -> worst case
        n_transactions=n_transactions,
        tasks_per_transaction=(2, 2),
        utilization=0.4,
        delay_range=(0.0, 1.0),
    )
    system = random_system(spec, seed=seed)
    for tr in system.transactions:
        for k, t in enumerate(tr.tasks):
            t.jitter = 1.5 * k
            t.offset = 0.5 * k
    # Make the analyzed task (last task of the last transaction) the lowest
    # priority in the system so *every* other task interferes: the scenario
    # product of Eq. 12 is then 2^(n-1) times the own-transaction candidates.
    system.transactions[-1].tasks[-1].priority = 0
    return system


def test_scenario_explosion(benchmark, output_dir, write_artifact):
    sizes = [2, 3, 4, 5, 6]
    rows = []
    csv_rows = []
    for n in sizes:
        system = jittered_system(n)
        a, b = n - 1, 1  # analyze the last task of the last transaction
        n_exact = count_scenarios_exact(system, a, b)
        n_reduced = count_scenarios_reduced(system, a, b)

        t0 = time.perf_counter()
        r_exact = response_time_exact(
            system, a, b, config=AnalysisConfig(max_exact_scenarios=10**7)
        ).wcrt
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        r_reduced = response_time_reduced(system, a, b).wcrt
        t_reduced = time.perf_counter() - t0

        assert r_reduced >= r_exact - 1e-9
        rows.append([
            str(n), str(n_exact), str(n_reduced),
            f"{t_exact * 1e3:.2f}", f"{t_reduced * 1e3:.2f}",
            f"{r_exact:.2f}", f"{r_reduced:.2f}",
        ])
        csv_rows.append([n, n_exact, n_reduced, t_exact, t_reduced,
                         r_exact, r_reduced])

    table = format_table(
        ["txns", "scen(exact)", "scen(reduced)", "ms(exact)", "ms(reduced)",
         "R(exact)", "R(reduced)"],
        rows,
        title="E7: scenario counts and runtimes (Eq. 12)",
    )
    write_artifact("e7_scenarios.txt", table + "\n")
    write_csv(
        output_dir / "e7_scenarios.csv",
        ["transactions", "scenarios_exact", "scenarios_reduced",
         "time_exact_s", "time_reduced_s", "wcrt_exact", "wcrt_reduced"],
        csv_rows,
    )

    # Shape claims: exact scenario count grows (geometrically in the number
    # of interfering transactions); reduced count stays flat and small.
    exact_counts = [int(r[1]) for r in rows]
    reduced_counts = [int(r[2]) for r in rows]
    assert exact_counts == sorted(exact_counts)
    assert exact_counts[-1] > 8 * reduced_counts[-1]
    assert max(reduced_counts) <= 3

    # Time the reduced analysis on the largest instance.
    largest = jittered_system(sizes[-1])
    benchmark(lambda: response_time_reduced(largest, sizes[-1] - 1, 1))
