"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see the
per-experiment index in DESIGN.md) and

* asserts the regenerated content against the expected shape,
* writes the artifact under ``benchmarks/output/`` (text and/or CSV),
* times the computation via pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def write_artifact(output_dir):
    """Write a text artifact and echo its path."""

    def _write(name: str, content: str) -> Path:
        path = output_dir / name
        path.write_text(content)
        return path

    return _write
