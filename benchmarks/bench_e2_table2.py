"""E2 -- Table 2: platform parameters (alpha, Delta, beta).

Regenerates the platform table and times the numeric triple extraction from
an exact supply curve (the operation a designer runs when characterizing a
concrete server as an abstract platform).
"""

import pytest

from repro.opt import server_for_triple
from repro.paper import paper_table2_rows, render_table2, sensor_fusion_system
from repro.platforms.algebra import extract_linear_bounds, verify_linear_bounds


def test_table2_regeneration(benchmark, write_artifact):
    system = sensor_fusion_system()

    table = render_table2(system)
    write_artifact("table2.txt", table + "\n")

    for platform, row in zip(system.platforms, paper_table2_rows()):
        assert platform.rate == row["alpha"]
        assert platform.delay == row["delta"]
        assert platform.burstiness == row["beta"]

    # Time the characterization pipeline: synthesize the concrete periodic
    # server realizing Pi3's (rate, delay) and re-extract its triple
    # numerically from the exact supply functions.
    server = server_for_triple(0.2, 2.0)

    def characterize():
        return extract_linear_bounds(
            server, horizon=20 * server.period, rate=server.rate
        )

    est = benchmark(characterize)
    assert est.delay == pytest.approx(server.delay, abs=0.05)
    assert verify_linear_bounds(server, horizon=20 * server.period)
