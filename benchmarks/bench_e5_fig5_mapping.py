"""E5 -- Figure 5: the derived transaction set and task-to-platform mapping.

Regenerates the figure's content -- four transactions, their task chains and
the platform assignment -- from the component specification, and checks it
against the mapping drawn in the paper (Pi1 = {tau_1_2, tau_2_1},
Pi2 = {tau_1_3, tau_3_1}, Pi3 = {tau_1_1, tau_1_4, tau_4_1}).
"""

from repro.paper import sensor_fusion_system
from repro.viz import format_table

EXPECTED_MAPPING = {
    0: {(0, 1), (1, 0)},          # Pi1
    1: {(0, 2), (2, 0)},          # Pi2
    2: {(0, 0), (0, 3), (3, 0)},  # Pi3
}
EXPECTED_PERIODS = [50.0, 15.0, 15.0, 70.0]


def test_fig5_mapping(benchmark, write_artifact):
    system = benchmark(sensor_fusion_system)

    rows = []
    for m in range(len(system.platforms)):
        members = system.tasks_on(m)
        rows.append([
            getattr(system.platforms[m], "name", f"Pi{m+1}"),
            f"({system.platforms[m].rate:g}, {system.platforms[m].delay:g}, "
            f"{system.platforms[m].burstiness:g})",
            ", ".join(f"tau_{i+1}_{j+1}" for i, j, _ in members),
        ])
    txn_rows = [
        [tr.name, f"{tr.period:g}", " -> ".join(t.name.split(":")[0] for t in tr.tasks)]
        for tr in system.transactions
    ]
    art = (
        format_table(["Platform", "(a,D,b)", "Tasks"], rows,
                     title="Figure 5: task-to-platform mapping")
        + "\n\n"
        + format_table(["Transaction", "T", "Chain"], txn_rows)
    )
    write_artifact("fig5_mapping.txt", art + "\n")

    for m, expected in EXPECTED_MAPPING.items():
        got = {(i, j) for i, j, _ in system.tasks_on(m)}
        assert got == expected, f"platform {m} mapping"
    assert [tr.period for tr in system.transactions] == EXPECTED_PERIODS
