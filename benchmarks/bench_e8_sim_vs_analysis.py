"""E8 -- soundness and tightness: analysis vs discrete-event simulation.

For the paper example and a batch of random systems, every observed response
time must stay below the analytic bound (soundness); the tightness ratios
quantify the pessimism of the linear supply abstraction the paper warns
about at the end of Sec. 2.3.
"""

import numpy as np

from repro.gen import RandomSystemSpec, random_system
from repro.paper import sensor_fusion_system
from repro.sim import SimulationConfig, simulate, validate_against_analysis
from repro.viz import format_table, write_csv


def test_sim_vs_analysis(benchmark, output_dir, write_artifact):
    rows = []
    csv_rows = []

    def record(label, system, report):
        ratios = [
            report.tightness(*key)
            for key in report.bound
            if report.bound[key] not in (0.0, float("inf"))
        ]
        rows.append([
            label, str(system.total_tasks()), str(report.runs),
            str(report.sound),
            f"{float(np.median(ratios)):.2f}", f"{max(ratios):.2f}",
        ])
        csv_rows.append([
            label, system.total_tasks(), report.runs, int(report.sound),
            float(np.median(ratios)), float(max(ratios)),
        ])
        assert report.sound, f"{label}: {report.violations}"

    paper = sensor_fusion_system()
    record(
        "paper-example", paper,
        validate_against_analysis(paper, horizon=3000.0, seeds=(0, 1)),
    )
    for seed in range(3):
        spec = RandomSystemSpec(
            n_platforms=2, n_transactions=3, tasks_per_transaction=(1, 3),
            utilization=0.45, delay_range=(0.0, 2.0),
        )
        system = random_system(spec, seed=seed)
        record(
            f"random-{seed}", system,
            validate_against_analysis(
                system, seeds=(seed,), placements=("late", "random"),
                release_modes=("synchronous",),
                horizon=50.0 * max(tr.period for tr in system.transactions),
            ),
        )

    table = format_table(
        ["workload", "tasks", "runs", "sound", "tightness p50", "tightness max"],
        rows,
        title="E8: analysis bounds vs observed responses",
    )
    write_artifact("e8_sim_vs_analysis.txt", table + "\n")
    write_csv(
        output_dir / "e8_sim_vs_analysis.csv",
        ["workload", "tasks", "runs", "sound", "tightness_p50", "tightness_max"],
        csv_rows,
    )

    # Benchmark one representative simulation run.
    benchmark(
        lambda: simulate(paper, config=SimulationConfig(horizon=1000.0, seed=0))
    )
