"""E10 -- platform-parameter optimization (the paper's future work, Sec. 5).

"The search for the optimal platform parameters would allow a better
utilization of the resources."  This bench runs that search on the paper's
example: bandwidth-minimal rates at the given delays, plus the rate/delay
frontier of the integrator platform, and reports the achieved savings.
"""

import math

from repro.analysis import analyze
from repro.opt import minimize_bandwidth, rate_delay_frontier
from repro.paper import sensor_fusion_system
from repro.viz import format_table, write_csv


def test_platform_design(benchmark, output_dir, write_artifact):
    system = sensor_fusion_system()

    design = benchmark(lambda: minimize_bandwidth(system, rate_tol=5e-3))

    assert design.feasible
    assert design.savings > 0.10
    assert analyze(design.designed_system(system)).schedulable

    rows = [
        [f"Pi{k + 1}", f"{old.rate:.3f}", f"{new.rate:.3f}",
         f"{(1 - new.rate / old.rate):.1%}"]
        for k, (old, new) in enumerate(zip(system.platforms, design.platforms))
    ]
    rows.append(["total", f"{design.initial_bandwidth:.3f}",
                 f"{design.total_bandwidth:.3f}", f"{design.savings:.1%}"])
    table = format_table(
        ["platform", "rate (paper)", "rate (designed)", "saved"],
        rows,
        title="E10: bandwidth-minimal platform design",
    )

    delays = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
    frontier = rate_delay_frontier(system, 2, delays, rate_tol=5e-3)
    finite = [(d, a) for d, a in frontier if not math.isinf(a)]
    assert len(finite) == len(frontier), "all tested delays must be feasible"
    rates = [a for _, a in finite]
    assert rates == sorted(rates) or all(
        b >= a - 5e-3 for a, b in zip(rates, rates[1:])
    ), "required rate must not decrease with delay"

    frontier_table = format_table(
        ["delay", "min rate"],
        [[f"{d:g}", f"{a:.3f}"] for d, a in finite],
        title="E10b: rate/delay frontier of Pi3",
    )
    write_artifact("e10_design.txt", table + "\n\n" + frontier_table + "\n")
    write_csv(output_dir / "e10_frontier.csv", ["delay", "min_rate"], finite)
