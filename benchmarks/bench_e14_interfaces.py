"""E14 (methodology) -- component interface generation and composition.

The design flow of the cited methodology (Lipari & Bini [7]): each
component is abstracted by its feasible (rate, delay) curve; an integrator
composes curves on a shared processor without seeing task internals.  This
bench generates the interfaces of the paper's two component classes and
composes them, confirming

* the curves are non-decreasing in delay and lower-bounded by utilization;
* EDF interfaces never demand more bandwidth than FP ones;
* the three example components fit on ONE physical processor (total
  bandwidth < 1) -- i.e. the paper's three platform reservations are
  realizable on a uniprocessor, which is exactly the deployment its global
  scheduler implements.
"""

import pytest

from repro.analysis.compositional import LocalTask
from repro.opt import component_interface, compose_interfaces
from repro.viz import format_table, write_csv

DELAYS = [0.5, 1.0, 2.0, 4.0]


def local_task_sets():
    """Platform-local task sets of the paper example (periods as MITs)."""
    sensor = [
        LocalTask(wcet=1.0, period=15.0, priority=2, name="poll"),
        LocalTask(wcet=1.0, period=50.0, priority=1, name="serve_read"),
    ]
    integrator = [
        LocalTask(wcet=1.0, period=50.0, priority=2, name="init"),
        LocalTask(wcet=1.0, period=50.0, priority=3, name="compute"),
        LocalTask(wcet=7.0, period=70.0, priority=1, name="background"),
    ]
    return {"Sensor1": sensor, "Sensor2": sensor, "Integrator": integrator}


def test_interface_generation(benchmark, output_dir, write_artifact):
    sets = local_task_sets()

    interfaces = {
        name: component_interface(tasks, DELAYS, name=name, rate_tol=2e-3)
        for name, tasks in sets.items()
    }

    rows = []
    csv_rows = []
    for name, iface in interfaces.items():
        for p in iface.points:
            rows.append([name, f"{p.delay:g}", f"{p.rate:.3f}"])
            csv_rows.append([name, p.delay, p.rate])
        rates = [p.rate for p in iface.points]
        assert all(b >= a - 2e-3 for a, b in zip(rates, rates[1:]))
        assert all(r >= iface.utilization - 1e-6 for r in rates)

    # EDF never demands more bandwidth.
    for name, tasks in sets.items():
        edf = component_interface(tasks, DELAYS, scheduler="edf", rate_tol=2e-3)
        for pe, pf in zip(edf.points, interfaces[name].points):
            assert pe.rate <= pf.rate + 2e-3

    comp = compose_interfaces(list(interfaces.values()))
    assert comp.feasible, "the example's components must fit one processor"
    assert comp.total_bandwidth < 1.0

    table = format_table(
        ["component", "delay", "min rate"],
        rows,
        title=(
            "E14: component interfaces (FP); composition total bandwidth "
            f"{comp.total_bandwidth:.3f} < 1"
        ),
    )
    write_artifact("e14_interfaces.txt", table + "\n")
    write_csv(output_dir / "e14_interfaces.csv",
              ["component", "delay", "min_rate"], csv_rows)

    benchmark(
        lambda: component_interface(
            sets["Integrator"], DELAYS, name="Integrator", rate_tol=5e-3
        )
    )


def test_composition_matches_paper_provisioning(benchmark):
    """The paper's Table 2 rates dominate the generated minimum rates."""
    sets = local_task_sets()
    paper_rates = {"Sensor1": 0.4, "Sensor2": 0.4, "Integrator": 0.2}
    paper_delays = {"Sensor1": 1.0, "Sensor2": 1.0, "Integrator": 2.0}

    def needed_rates():
        return {
            name: component_interface(
                tasks, [paper_delays[name]], rate_tol=2e-3
            ).points[0].rate
            for name, tasks in sets.items()
        }

    needed = benchmark(needed_rates)
    for name, rate in needed.items():
        assert rate <= paper_rates[name] + 2e-3, (
            f"{name}: paper provisions {paper_rates[name]}, interface needs "
            f"{rate:.3f}"
        )
