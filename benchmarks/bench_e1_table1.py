"""E1 -- Table 1: task parameters of the example with derived offsets.

Regenerates the paper's Table 1 (including the phi_min column, which is the
best-case response time of each task's predecessor) and times the full
holistic analysis that produces it.
"""

import pytest

from repro.analysis import analyze
from repro.paper import paper_table1_rows, render_table1, sensor_fusion_system


@pytest.fixture(scope="module")
def system():
    return sensor_fusion_system()


def test_table1_regeneration(benchmark, system, write_artifact):
    result = benchmark(lambda: analyze(system, trace=True))

    table = render_table1(system, result)
    write_artifact("table1.txt", table + "\n")

    # Every row of the published table must be reproduced.
    rows = paper_table1_rows()
    flat = [
        (i, j)
        for i, tr in enumerate(system.transactions)
        for j in range(len(tr.tasks))
    ]
    assert len(flat) == len(rows)
    for (i, j), row in zip(flat, rows):
        task = system.transactions[i].tasks[j]
        assert task.wcet == row["wcet"]
        assert task.bcet == row["bcet"]
        assert task.priority == row["priority"]
        assert system.transactions[i].period == row["period"]
        assert result.tasks[(i, j)].offset == pytest.approx(row["phi_min"]), (
            f"phi_min of {row['task']}"
        )
