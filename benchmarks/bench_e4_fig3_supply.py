"""E4 -- Figure 3: min/max supply functions of a periodic server.

Regenerates the figure's four curves -- Zmin, Zmax and their linear bounds
alpha*(t - Delta) and beta + alpha*t -- as CSV + ASCII art, and checks the
figure's visual claims: the staircase curves are sandwiched by the lines,
touching them at the corner points.
"""

import numpy as np
import pytest

from repro.platforms.periodic_server import PeriodicServer
from repro.viz import ascii_plot, write_csv


def test_fig3_supply_functions(benchmark, output_dir, write_artifact):
    # The figure is drawn for a generic (Q, P); use Q=2, P=5 so the corner
    # structure (blackout 6, double hit 4) is clearly visible.
    server = PeriodicServer(2.0, 5.0)
    ts = np.linspace(0.0, 3 * server.period + server.delay, 600)

    def sample():
        return (
            server.sample_zmin(ts),
            server.sample_zmax(ts),
            np.maximum(0.0, server.rate * (ts - server.delay)),
            server.burstiness + server.rate * ts,
        )

    zmin, zmax, lower, upper = benchmark(sample)

    write_csv(
        output_dir / "fig3_supply.csv",
        ["t", "zmin", "zmax", "alpha(t-delta)", "beta+alpha*t"],
        np.column_stack([ts, zmin, zmax, lower, upper]).tolist(),
    )
    art = ascii_plot(
        [
            ("Zmin", ts, zmin),
            ("Zmax", ts, zmax),
            ("alpha(t-Delta)", ts, lower),
            ("beta+alpha t", ts, upper),
        ],
        width=70,
        height=22,
        title=f"Figure 3: periodic server Q={server.budget:g}, P={server.period:g}",
    )
    write_artifact("fig3_supply.txt", art + "\n")

    # Figure claims: sandwich + tight corners.
    assert np.all(zmin <= zmax + 1e-12)
    assert np.all(zmin >= lower - 1e-9)
    assert np.all(zmax <= upper + 1e-9)
    assert server.zmin(server.delay) == 0.0  # end of the blackout
    assert server.zmax(2 * server.budget) == pytest.approx(
        server.burstiness + server.rate * 2 * server.budget
    )
