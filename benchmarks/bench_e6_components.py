"""E6 -- Figures 1-2: the component specification round trip.

The component classes of Figures 1-2, assembled per Sec. 2.2.1 and expanded
per Sec. 2.4, must produce a transaction system whose analysis agrees with
the hand-built Table 1/2 system.  Times the full spec -> validate ->
transform pipeline.
"""

import pytest

from repro.analysis import analyze
from repro.paper import sensor_fusion_components, sensor_fusion_system


def test_component_roundtrip(benchmark, write_artifact):
    def pipeline():
        assembly = sensor_fusion_components()
        problems = assembly.validate()
        assert not [p for p in problems if p.fatal]
        return assembly.derive_transactions()

    derived = benchmark(pipeline)

    lines = []
    for tr in derived:
        chain = " -> ".join(f"{t.name}@Pi{t.platform + 1}(p{t.priority})"
                            for t in tr.tasks)
        lines.append(f"{tr.name} (T={tr.period:g}, D={tr.deadline:g}): {chain}")
    write_artifact("fig12_components.txt", "\n".join(lines) + "\n")

    reference = sensor_fusion_system()
    ra = analyze(derived)
    rb = analyze(reference)
    assert ra.schedulable == rb.schedulable
    assert sorted(ra.transaction_wcrt) == pytest.approx(sorted(rb.transaction_wcrt))

    # Structural equivalence of Gamma_1's chain.
    g1 = next(tr for tr in derived if "Integrator" in tr.name)
    assert [t.platform for t in g1.tasks] == [2, 0, 1, 2]
    assert [t.priority for t in g1.tasks] == [2, 1, 1, 3]
    assert [t.wcet for t in g1.tasks] == [1.0] * 4
