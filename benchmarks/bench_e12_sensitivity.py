"""E12 -- robustness of the example: scaling factors and platform slacks.

Quantifies how far the paper's example is from the schedulability boundary:
the critical WCET scaling factor, the minimum feasible rate and the maximum
tolerable delay of each platform.  These are the quantities the Sec. 5
future-work optimizer consumes.
"""

import math

from repro.analysis import (
    critical_scaling_factor,
    delay_slack,
    rate_slack,
)
from repro.paper import sensor_fusion_system
from repro.viz import format_table


def test_sensitivity(benchmark, write_artifact):
    system = sensor_fusion_system()

    factor = benchmark(lambda: critical_scaling_factor(system, tol=1e-3))
    assert 1.0 < factor < 16.0

    rows = []
    for m, platform in enumerate(system.platforms):
        need_rate = rate_slack(system, m, tol=1e-3)
        max_delay = delay_slack(system, m, tol=1e-2)
        assert need_rate <= platform.rate + 1e-6
        assert max_delay >= platform.delay - 1e-6
        rows.append([
            getattr(platform, "name", f"Pi{m + 1}"),
            f"{platform.rate:g}", f"{need_rate:.3f}",
            f"{platform.delay:g}",
            f"{max_delay:.2f}" if not math.isinf(max_delay) else "inf",
        ])

    table = format_table(
        ["platform", "rate", "min rate", "delay", "max delay"],
        rows,
        title=f"E12: sensitivity (critical WCET scaling factor {factor:.3f})",
    )
    write_artifact("e12_sensitivity.txt", table + "\n")
