"""Robust scalar arithmetic for schedulability analysis.

Response-time analysis evaluates expressions such as ``ceil((t - phi) / T)``
at points where ``t - phi`` is an *exact* multiple of ``T`` -- the busy-period
boundaries.  With plain floating point, ``math.ceil(0.30000000000000004 /
0.1)`` returns 4 instead of 3 and the analysis becomes non-deterministic in
the last bit.  All quantities in this library therefore go through the
epsilon-guarded helpers below.

The guard :data:`EPS` is an *absolute* tolerance.  Task periods and execution
times in the paper (and in the generators of :mod:`repro.gen`) live in the
range ``1e-3 .. 1e6``; an absolute guard of ``1e-9`` is at least six orders
of magnitude below any meaningful difference while being far above the
accumulated rounding error of the handful of additions a single fixed-point
iteration performs.
"""

from __future__ import annotations

import math

__all__ = [
    "EPS",
    "ceil_div",
    "floor_div",
    "fceil",
    "ffloor",
    "fmod_pos",
    "is_close",
    "is_integer_multiple",
    "phase_in_period",
    "safe_div",
]

#: Absolute tolerance used by every epsilon-guarded comparison in the library.
EPS: float = 1e-9


def fceil(x: float) -> int:
    """Ceiling of *x* robust to floating-point noise.

    Values within :data:`EPS` below an integer are snapped to that integer,
    so ``fceil(3.0000000001) == 3`` while ``fceil(3.1) == 4``.
    """
    nearest = round(x)
    if abs(x - nearest) <= EPS:
        return int(nearest)
    return int(math.ceil(x))


def ffloor(x: float) -> int:
    """Floor of *x* robust to floating-point noise (dual of :func:`fceil`)."""
    nearest = round(x)
    if abs(x - nearest) <= EPS:
        return int(nearest)
    return int(math.floor(x))


def ceil_div(num: float, den: float) -> int:
    """``ceil(num / den)`` with epsilon snapping; *den* must be positive."""
    if den <= 0:
        raise ValueError(f"ceil_div requires a positive denominator, got {den!r}")
    return fceil(num / den)


def floor_div(num: float, den: float) -> int:
    """``floor(num / den)`` with epsilon snapping; *den* must be positive."""
    if den <= 0:
        raise ValueError(f"floor_div requires a positive denominator, got {den!r}")
    return ffloor(num / den)


def fmod_pos(x: float, period: float) -> float:
    """Mathematical modulo in ``[0, period)`` with epsilon snapping.

    Unlike ``math.fmod``, the result is always non-negative, and values that
    are within :data:`EPS` of ``0`` or ``period`` are snapped to ``0``.  This
    is the reduction used for task offsets (``phi mod T``, Section 2.4 of the
    paper).
    """
    if period <= 0:
        raise ValueError(f"fmod_pos requires a positive period, got {period!r}")
    r = math.fmod(x, period)
    if r < 0:
        r += period
    if r >= period - EPS or r <= EPS:
        # Snap both boundaries to zero: x was an exact multiple of period.
        if abs(r) <= EPS or abs(r - period) <= EPS:
            return 0.0
    return r


def phase_in_period(x: float, period: float) -> float:
    """Phase ``period - (x mod period)`` taken in the half-open set ``(0, period]``.

    This is the convention of Eq. (7)/(10) in the paper: when ``x`` is an
    exact multiple of the period the phase is ``period`` (the first
    activation inside the busy period happens one full period after its
    start), *not* zero.  Pinned by hand-verification against Table 3.
    """
    r = fmod_pos(x, period)
    return period - r if r > 0.0 else period


def is_close(a: float, b: float, tol: float = EPS) -> bool:
    """Absolute-tolerance equality used for convergence tests."""
    return abs(a - b) <= tol


def is_integer_multiple(x: float, base: float) -> bool:
    """True when *x* is an integer multiple of *base* up to :data:`EPS`."""
    if base <= 0:
        raise ValueError(f"is_integer_multiple requires base > 0, got {base!r}")
    return fmod_pos(x, base) == 0.0


def safe_div(num: float, den: float, *, what: str = "value") -> float:
    """Division raising :class:`ZeroDivisionError` with a useful message."""
    if den == 0:
        raise ZeroDivisionError(f"division by zero while computing {what}")
    return num / den
