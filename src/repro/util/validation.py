"""Argument-validation helpers with consistent error messages.

The public API validates eagerly: a malformed task set should fail at
construction time with a message naming the offending field, not deep inside
a fixed-point iteration three calls later.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
]


def check_type(value: Any, types: type | tuple[type, ...], name: str) -> Any:
    """Raise :class:`TypeError` unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__} ({value!r})"
        )
    return value


def check_finite(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless *value* is a finite real number."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return float(value)


def check_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless *value* is finite and ``> 0``."""
    v = check_finite(value, name)
    if v <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return v


def check_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless *value* is finite and ``>= 0``."""
    v = check_finite(value, name)
    if v < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return v


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str,
    *,
    low_open: bool = False,
    high_open: bool = False,
) -> float:
    """Raise :class:`ValueError` unless *value* lies in the given interval."""
    v = check_finite(value, name)
    low_ok = v > low if low_open else v >= low
    high_ok = v < high if high_open else v <= high
    if not (low_ok and high_ok):
        lo = "(" if low_open else "["
        hi = ")" if high_open else "]"
        raise ValueError(f"{name} must lie in {lo}{low}, {high}{hi}, got {value!r}")
    return v
