"""Numeric and iteration utilities shared by the whole library.

This sub-package provides the small, heavily exercised substrate on which
every analysis module is built:

* :mod:`repro.util.math` -- robust ceiling/floor/modulo arithmetic on
  floating-point quantities (schedulability analyses are notoriously
  sensitive to ``ceil(x/T)`` evaluated at exact multiples of ``T``).
* :mod:`repro.util.fixedpoint` -- drivers for the monotone fixed-point
  iterations used by every response-time computation in the paper
  (Eq. 13, Eq. 16 and the busy-period recurrences).
* :mod:`repro.util.validation` -- argument-validation helpers producing
  consistent error messages across the public API.
"""

from repro.util.math import (
    EPS,
    ceil_div,
    floor_div,
    fceil,
    ffloor,
    fmod_pos,
    is_close,
    is_integer_multiple,
    phase_in_period,
    safe_div,
)
from repro.util.fixedpoint import (
    FixedPointDiverged,
    FixedPointResult,
    FixedPointStats,
    fixed_point_stats,
    iterate_fixed_point,
    iterate_monotone,
    reset_fixed_point_stats,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "EPS",
    "ceil_div",
    "floor_div",
    "fceil",
    "ffloor",
    "fmod_pos",
    "is_close",
    "is_integer_multiple",
    "phase_in_period",
    "safe_div",
    "FixedPointDiverged",
    "FixedPointResult",
    "FixedPointStats",
    "fixed_point_stats",
    "iterate_fixed_point",
    "iterate_monotone",
    "reset_fixed_point_stats",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
]
