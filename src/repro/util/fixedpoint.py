"""Fixed-point iteration drivers.

Every response-time quantity in the paper is the least fixed point of a
monotone non-decreasing function: the job-completion recurrence (Eq. 13 and
Eq. 16), the busy-period length and the outer "dynamic offset" jitter
iteration of Section 3.2.  Centralizing the iteration gives uniform
convergence criteria, divergence detection (unschedulable systems make the
recurrences grow without bound) and iteration accounting for the benchmark
harness.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.util.math import EPS

__all__ = [
    "FixedPointCeilingHit",
    "FixedPointDiverged",
    "FixedPointResult",
    "FixedPointStats",
    "fixed_point_stats",
    "iterate_fixed_point",
    "iterate_monotone",
    "note_ceiling_exit",
    "note_outer_tasks",
    "note_prefilter",
    "note_solve",
    "note_solves",
    "reseed_scope",
    "reset_fixed_point_stats",
]


@dataclass
class FixedPointStats:
    """Process-wide evaluation accounting of the iteration drivers.

    The counters include *divergent* solves: a busy period that fails to
    close still costs its evaluations, and the campaign engine charges them
    to the analysis that triggered them (historically the counts carried by
    :class:`FixedPointDiverged` were discarded by every caller, making
    aggregate iteration reports undercount unschedulable cells).
    """

    #: Total evaluations of iterated maps (convergent and divergent solves).
    evaluations: int = 0
    #: Number of completed solves (convergent or divergent).
    solves: int = 0
    #: Number of solves that ended in :class:`FixedPointDiverged`.
    diverged: int = 0
    #: Number of solves that began from a caller-supplied warm start.
    warm_started: int = 0
    #: Outer-round task response-time solves performed / skipped by the
    #: chain-aware dirty-set scheduler (see ``analysis.holistic``).  A skip
    #: is a whole per-task solve the incremental Gauss-Seidel round proved
    #: redundant -- the savings the campaign accounting reports.
    outer_task_solves: int = 0
    outer_task_skips: int = 0
    #: Solves/evaluations spent *re-seeding* warm-start state rather than
    #: producing a reported result: a chain-prefix resume re-solves the last
    #: completed sweep level only to recover its converged jitter vector
    #: (the least fixed point is start-independent), so this work belongs to
    #: the resume machinery, not to any recorded cell.  Counted inside
    #: :func:`reseed_scope`; the campaign threads the totals into
    #: ``CampaignResult.reseed_*``.
    reseed_solves: int = 0
    reseed_evaluations: int = 0
    #: Verdict-mode accounting (``AnalysisConfig.mode="verdict"``), all zero
    #: in exact mode: solves abandoned at a caller's deadline ceiling (the
    #: iterate provably passed the deadline, so the exact fixed point is no
    #: longer needed), systems the necessary utilization pre-filter rejected
    #: and systems the sufficient response-bound pre-filter accepted without
    #: running the holistic outer iteration.
    ceiling_exits: int = 0
    prefilter_rejects: int = 0
    prefilter_accepts: int = 0

    def snapshot(self) -> "FixedPointStats":
        # Positional construction: dataclasses.replace() re-introspects the
        # field list on every call, and the campaign engine snapshots the
        # stats several times per analyzed cell -- measurable at hot-path
        # campaign throughput.
        return FixedPointStats(
            self.evaluations,
            self.solves,
            self.diverged,
            self.warm_started,
            self.outer_task_solves,
            self.outer_task_skips,
            self.reseed_solves,
            self.reseed_evaluations,
            self.ceiling_exits,
            self.prefilter_rejects,
            self.prefilter_accepts,
        )

    def delta(self, before: "FixedPointStats") -> "FixedPointStats":
        """Counters accumulated since *before* was snapshotted."""
        return FixedPointStats(
            evaluations=self.evaluations - before.evaluations,
            solves=self.solves - before.solves,
            diverged=self.diverged - before.diverged,
            warm_started=self.warm_started - before.warm_started,
            outer_task_solves=self.outer_task_solves - before.outer_task_solves,
            outer_task_skips=self.outer_task_skips - before.outer_task_skips,
            reseed_solves=self.reseed_solves - before.reseed_solves,
            reseed_evaluations=self.reseed_evaluations - before.reseed_evaluations,
            ceiling_exits=self.ceiling_exits - before.ceiling_exits,
            prefilter_rejects=self.prefilter_rejects - before.prefilter_rejects,
            prefilter_accepts=self.prefilter_accepts - before.prefilter_accepts,
        )


#: Module-global accounting; per-process (each campaign worker owns its own).
_STATS = FixedPointStats()


def fixed_point_stats() -> FixedPointStats:
    """A snapshot of the process-wide iteration counters."""
    return _STATS.snapshot()


def reset_fixed_point_stats() -> None:
    """Zero the process-wide iteration counters."""
    _STATS.evaluations = 0
    _STATS.solves = 0
    _STATS.diverged = 0
    _STATS.warm_started = 0
    _STATS.outer_task_solves = 0
    _STATS.outer_task_skips = 0
    _STATS.reseed_solves = 0
    _STATS.reseed_evaluations = 0
    _STATS.ceiling_exits = 0
    _STATS.prefilter_rejects = 0
    _STATS.prefilter_accepts = 0


@contextmanager
def reseed_scope() -> Iterator[FixedPointStats]:
    """Classify all solves inside the scope as warm-start re-seeding.

    Yields the stats snapshot taken on entry; on exit the solves and
    evaluations accumulated since then are additionally charged to the
    ``reseed_*`` counters, so accounting consumers can separate "work that
    produced a reported result" from "work that only rebuilt resume state".
    """
    before = _STATS.snapshot()
    try:
        yield before
    finally:
        d = _STATS.delta(before)
        _STATS.reseed_solves += d.solves
        _STATS.reseed_evaluations += d.evaluations


def note_outer_tasks(solved: int, skipped: int) -> None:
    """Charge one outer round's per-task solve/skip counts to the stats."""
    _STATS.outer_task_solves += solved
    _STATS.outer_task_skips += skipped


def note_ceiling_exit() -> None:
    """Charge one verdict-mode deadline-ceiling abort to the stats.

    Distinct from :attr:`FixedPointStats.diverged`: the recurrence did not
    blow past the divergence bound, the *caller* proved it no longer needs
    the exact fixed point (the iterate already implies a deadline miss).
    """
    _STATS.ceiling_exits += 1


def note_prefilter(*, accepted: bool) -> None:
    """Charge one verdict-mode pre-filter classification to the stats."""
    if accepted:
        _STATS.prefilter_accepts += 1
    else:
        _STATS.prefilter_rejects += 1


def note_solve(
    evaluations: int, *, diverged: bool = False, warm_started: bool = False
) -> None:
    """Charge one externally-iterated solve to the process-wide stats.

    For hot paths that hand-inline the fixed-point loop (the scenario
    solver) but must stay indistinguishable from :func:`iterate_fixed_point`
    in the accounting the campaign engine reports.
    """
    _STATS.evaluations += evaluations
    _STATS.solves += 1
    if diverged:
        _STATS.diverged += 1
    if warm_started:
        _STATS.warm_started += 1


def note_solves(
    evaluations: int, solves: int, *, warm_started: int = 0
) -> None:
    """Batched :func:`note_solve` for several convergent solves at once."""
    _STATS.evaluations += evaluations
    _STATS.solves += solves
    _STATS.warm_started += warm_started


class FixedPointDiverged(RuntimeError):
    """Raised when a monotone iteration exceeds its bound or iteration cap.

    For response-time recurrences this signals an unschedulable (or not
    provably schedulable) configuration: the busy period never closes.
    Callers that interpret divergence as "deadline miss" catch this and
    report an infinite response time instead of propagating the error.
    """

    def __init__(self, message: str, last_value: float, iterations: int):
        super().__init__(message)
        #: Value of the iterate when divergence was declared.
        self.last_value = last_value
        #: Number of iterations performed before giving up.
        self.iterations = iterations


class FixedPointCeilingHit(FixedPointDiverged):
    """Raised when an iterate crosses the caller's *ceiling* (not *bound*).

    The verdict-mode generalization of the divergence ceiling: iterating
    from below a monotone map, every iterate is a lower bound on the least
    fixed point, so an iterate above the caller's ceiling proves the fixed
    point lies above it too.  Callers that only need "is the fixed point at
    most the ceiling?" (a deadline check) can abort the solve there --
    hundreds of evaluations before either convergence or the much larger
    divergence bound would fire.  Subclasses :class:`FixedPointDiverged`
    so existing handlers keep treating it as "no useful fixed point".
    """


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a convergent fixed-point iteration."""

    #: The fixed point reached.
    value: float
    #: Number of evaluations of the iterated function.
    iterations: int

    def __float__(self) -> float:  # pragma: no cover - trivial
        return self.value


def iterate_fixed_point(
    func: Callable[[float], float],
    start: float,
    *,
    bound: float = float("inf"),
    max_iterations: int = 100_000,
    tol: float = EPS,
    warm_start: float | None = None,
    ceiling: float | None = None,
) -> FixedPointResult:
    """Iterate ``x <- func(x)`` from *start* until two iterates agree.

    Parameters
    ----------
    func:
        The iterated map.  For the schedulability recurrences it is monotone
        non-decreasing in its argument, which guarantees that iterating from
        below converges to the *least* fixed point when one exists.
    start:
        Initial iterate (``0`` for completion-time recurrences).
    bound:
        Declare divergence as soon as an iterate exceeds this value.  The
        analyses pass the transaction deadline plus one period: a busy period
        extending past that proves a deadline miss, so there is no reason to
        keep iterating.
    max_iterations:
        Safety cap independent of *bound*.
    tol:
        Absolute convergence tolerance between successive iterates.
    warm_start:
        Optional better initial iterate, typically the fixed point of a
        nearby problem (the previous cell of a parameter sweep).  Iteration
        begins from ``max(start, warm_start)``; for a monotone map this
        converges to the same least fixed point as starting from *start*
        whenever ``warm_start`` does not exceed that fixed point.
    ceiling:
        Optional verdict ceiling, typically far below *bound*: abort with
        :class:`FixedPointCeilingHit` as soon as an iterate exceeds it.
        Sound whenever the caller only needs to compare the least fixed
        point against the ceiling (iterates from below are lower bounds on
        the fixed point) -- the verdict-mode deadline test.

    Raises
    ------
    FixedPointCeilingHit
        If an iterate exceeds *ceiling* (charged to ``ceiling_exits``, not
        to ``diverged``).
    FixedPointDiverged
        If an iterate exceeds *bound* or the iteration cap is hit.
    """
    x = start
    if warm_start is not None and warm_start > start:
        x = warm_start
        _STATS.warm_started += 1
    for n in range(1, max_iterations + 1):
        nxt = func(x)
        # Checked after the bound below mirrors the inlined scenario
        # solver: an iterate exceeding *both* counts as a divergence, not
        # a ceiling exit, so the stats stay consistent across the two
        # implementations.
        if ceiling is not None and nxt > ceiling and nxt <= bound:
            _STATS.evaluations += n
            _STATS.solves += 1
            _STATS.ceiling_exits += 1
            raise FixedPointCeilingHit(
                f"fixed-point iterate passed the verdict ceiling {ceiling!r} "
                f"after {n} iterations (last value {nxt!r})",
                last_value=nxt,
                iterations=n,
            )
        if nxt > bound:
            _STATS.evaluations += n
            _STATS.solves += 1
            _STATS.diverged += 1
            raise FixedPointDiverged(
                f"fixed-point iteration exceeded bound {bound!r} "
                f"after {n} iterations (last value {nxt!r})",
                last_value=nxt,
                iterations=n,
            )
        if abs(nxt - x) <= tol:
            _STATS.evaluations += n
            _STATS.solves += 1
            return FixedPointResult(value=nxt, iterations=n)
        x = nxt
    _STATS.evaluations += max_iterations
    _STATS.solves += 1
    _STATS.diverged += 1
    raise FixedPointDiverged(
        f"fixed-point iteration did not converge within {max_iterations} "
        f"iterations (last value {x!r})",
        last_value=x,
        iterations=max_iterations,
    )


def iterate_monotone(
    func: Callable[[float], float],
    start: float,
    *,
    bound: float = float("inf"),
    max_iterations: int = 100_000,
    tol: float = EPS,
    warm_start: float | None = None,
    ceiling: float | None = None,
) -> FixedPointResult:
    """Like :func:`iterate_fixed_point` but verifies monotonicity.

    The schedulability equations are monotone by construction; a decreasing
    step indicates a modelling bug (e.g. a W-function that is not
    non-decreasing in ``t``).  This variant is used by the test suite and by
    debug runs; production code paths call :func:`iterate_fixed_point`
    directly to avoid the extra comparison.  The monotonicity check is
    relative to the *cold* start: a warm start above the least fixed point
    would make the first step decrease, so the check also guards warm-start
    misuse.
    """
    x = start
    if warm_start is not None and warm_start > start:
        x = warm_start
        _STATS.warm_started += 1
    for n in range(1, max_iterations + 1):
        nxt = func(x)
        if nxt < x - tol:
            raise AssertionError(
                f"monotone iteration decreased from {x!r} to {nxt!r}; "
                "the iterated map is not monotone non-decreasing"
            )
        # Same ordering contract as iterate_fixed_point: the divergence
        # bound takes precedence over the verdict ceiling.
        if ceiling is not None and nxt > ceiling and nxt <= bound:
            _STATS.evaluations += n
            _STATS.solves += 1
            _STATS.ceiling_exits += 1
            raise FixedPointCeilingHit(
                f"monotone iterate passed the verdict ceiling {ceiling!r} "
                f"after {n} iterations (last value {nxt!r})",
                last_value=nxt,
                iterations=n,
            )
        if nxt > bound:
            _STATS.evaluations += n
            _STATS.solves += 1
            _STATS.diverged += 1
            raise FixedPointDiverged(
                f"monotone iteration exceeded bound {bound!r} "
                f"after {n} iterations (last value {nxt!r})",
                last_value=nxt,
                iterations=n,
            )
        if abs(nxt - x) <= tol:
            _STATS.evaluations += n
            _STATS.solves += 1
            return FixedPointResult(value=nxt, iterations=n)
        x = nxt
    _STATS.evaluations += max_iterations
    _STATS.solves += 1
    _STATS.diverged += 1
    raise FixedPointDiverged(
        f"monotone iteration did not converge within {max_iterations} "
        f"iterations (last value {x!r})",
        last_value=x,
        iterations=max_iterations,
    )
