"""Campaign dispatcher: drive a sharded campaign to completion unattended.

PR 3/4 made the chain the unit of distributed work (``--shard k/n``
partitions, chain-prefix ``--resume``, ``campaign-merge``) but left the
driving to a human.  This module closes the loop with a
:class:`CampaignDispatcher` that

* **over-partitions** the spec into more shards than worker slots and
  feeds them from a shared queue, so fast workers *steal* the long tail
  a static per-host split would leave on the slowest host (heavy chains
  hit divergent high-utilization levels; verdict-mode bisection shrinks
  but does not remove the imbalance);
* partitions **cost-aware** (``partition="lpt"``): per-chain wall times
  recorded by a previous run (``chain_costs`` in every campaign result
  JSON) drive a longest-processing-time assignment, with the ``levels x
  n_tasks`` size proxy as the manifest-free fallback;
* is **fault-tolerant**: every shard subprocess checkpoints its partial
  result (atomic write-then-rename), and a dead, killed or truncated
  shard is relaunched with ``--resume`` pointing at its partial output
  -- chain-prefix resume makes the retried shard bit-identical to an
  uninterrupted one;
* **auto-merges** shard results *as they complete* through
  :class:`repro.batch.campaign.StreamingMerger` -- each shard JSON is
  folded into the accumulating union and dropped, so dispatched peak
  memory stays bounded by the union plus one shard instead of every
  shard JSON at once -- yielding one canonical-order
  :class:`CampaignResult` that is bit-identical to a single-process run
  of the same spec;
* optionally threads a **content-addressed result store** (``store=``,
  CLI ``--store``) through to every shard subprocess, so overlapping or
  repeated campaigns skip cells the store already holds.

Shard subprocesses are plain ``python -m repro campaign --spec ...
--shard i/n`` invocations, launched through a pluggable *backend*:
:class:`LocalBackend` (subprocesses on this machine, the tested default)
or :class:`SshBackend` (a thin command template prefixing ``ssh <host>``
per worker slot; it assumes a shared filesystem for the work directory
and is trivially mockable in tests).  The CLI front end is ``python -m
repro campaign-dispatch``.
"""

from __future__ import annotations

import json
import os
import shlex
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.batch.campaign import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    StreamingMerger,
    chain_cost_estimates,
    partition_chains,
)

__all__ = [
    "CampaignDispatcher",
    "DispatchError",
    "DispatchReport",
    "LocalBackend",
    "ShardRecord",
    "SshBackend",
]


class DispatchError(RuntimeError):
    """A shard kept failing past ``max_attempts`` (or produced garbage)."""


@dataclass
class ShardRecord:
    """What happened to one shard across its (re)launches."""

    shard: int
    #: Chains the partition assigned to this shard.
    chains: int
    #: Expected cell count when complete (chains x levels x methods).
    expected_cells: int
    #: Estimated cost the partition balanced on (seconds or proxy units).
    estimated_cost: float
    attempts: int = 0
    #: Relaunches that passed ``--resume`` at a partial output.
    resumed_attempts: int = 0
    #: Worker slot that completed the shard.
    slot: int | None = None
    cells: int = 0
    wall_time_s: float = 0.0


@dataclass
class DispatchReport:
    """Outcome of one dispatched campaign."""

    #: The auto-merged union of every shard, canonical cell order.
    result: CampaignResult
    shards: list[ShardRecord]
    workers: int
    wall_time_s: float
    #: Shards completed per worker slot -- the work-stealing evidence
    #: (a slot that drew heavy shards completes fewer of them).
    shards_per_slot: dict[int, int] = field(default_factory=dict)

    @property
    def relaunches(self) -> int:
        return sum(max(0, s.attempts - 1) for s in self.shards)

    def format_summary(self) -> str:
        lines = [
            f"dispatched {len(self.shards)} shard(s) over {self.workers} "
            f"worker slot(s) in {self.wall_time_s:.2f}s "
            f"({self.relaunches} relaunch(es))",
        ]
        for slot in sorted(self.shards_per_slot):
            lines.append(
                f"  slot {slot}: {self.shards_per_slot[slot]} shard(s)"
            )
        return "\n".join(lines)


class LocalBackend:
    """Launch shard commands as subprocesses on this machine."""

    def launch(
        self,
        argv: Sequence[str],
        *,
        slot: int,
        log_path: Path,
        env: dict | None = None,
    ) -> subprocess.Popen:
        del slot  # local slots are interchangeable
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                list(argv), stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()  # the child holds its own descriptor


class SshBackend:
    """Launch shard commands through ``ssh <host> <command>``.

    A deliberately thin template: worker slot ``i`` is pinned to
    ``hosts[i % len(hosts)]`` and the shard argv is shell-quoted into one
    remote command.  It assumes the work directory (spec, shard JSONs,
    checkpoints) lives on a filesystem shared between the dispatcher and
    the hosts, and that ``python`` on the remote resolves the ``repro``
    package -- both standard cluster furniture.  ``ssh_command`` is
    injectable, which is also what makes the backend mockable:
    ``SshBackend(["h0"], ssh_command=("sh", "-c",))``-style substitutions
    exercise the template without a network.
    """

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        remote_python: Sequence[str] = ("python3",),
    ):
        if not hosts:
            raise ValueError("SshBackend needs at least one host")
        self.hosts = list(hosts)
        self.ssh_command = tuple(ssh_command)
        self.remote_python = tuple(remote_python)

    def launch(
        self,
        argv: Sequence[str],
        *,
        slot: int,
        log_path: Path,
        env: dict | None = None,
    ) -> subprocess.Popen:
        del env  # the remote shell owns its environment
        host = self.hosts[slot % len(self.hosts)]
        # The dispatcher builds argv around the *local* interpreter;
        # rewrite its head for the remote one.
        remote = list(self.remote_python) + list(argv[1:])
        command = list(self.ssh_command) + [host, shlex.join(remote)]
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT
            )
        finally:
            log.close()


@dataclass
class _Running:
    record: ShardRecord
    proc: subprocess.Popen
    slot: int
    started: float


class CampaignDispatcher:
    """Drive every shard of a campaign to completion and merge the union.

    Parameters
    ----------
    spec:
        The campaign to run.
    shards:
        Shard count of the partition.  Over-partition (several shards per
        worker) so the queue can balance the tail; the default CLI choice
        is ``4 x workers``.
    workers:
        Concurrent shard subprocesses (worker slots).
    partition / cost_manifest:
        Passed through to :func:`repro.batch.campaign.partition_chains`;
        every shard subprocess receives the same manifest file so all
        hosts derive the identical disjoint partition.
    work_dir:
        Directory for the spec file, cost manifest, shard JSONs,
        checkpoints and per-shard logs.
    backend:
        :class:`LocalBackend` (default) or :class:`SshBackend`-shaped
        object with the same ``launch`` signature.
    max_attempts:
        Launch attempts per shard before :class:`DispatchError`.
    checkpoint_every:
        Cells between the shard subprocesses' checkpoint writes.
    inject_kills:
        Deterministic fault injection for tests and drills: shard index
        -> cell budget for its *first* attempt (the subprocess truncates
        there via ``--max-cells``, exactly like a kill after N cells, and
        the dispatcher must recover it through ``--resume``).
    shard_args:
        Extra argv appended to every shard command line.  Flags the
        dispatcher builds itself (``--spec``, ``--shard``, ``--json``,
        ``--checkpoint``, ...) and collection-disabling flags
        (``--no-collect`` / ``--collect none``, which conflict with the
        always-on checkpointing) are rejected up front with
        :class:`ValueError` -- passing them through would make every
        shard fail every attempt at launch time.
    store:
        Root directory of a content-addressed result store
        (:class:`repro.batch.store.ResultStore`) passed to every shard
        via ``--store``; shards then serve already-solved cells from it
        and write fresh solves back.  Must be shared storage when the
        backend spans hosts.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        shards: int,
        workers: int,
        partition: str = "hash",
        cost_manifest: dict[int, float] | None = None,
        work_dir: str | Path,
        backend: LocalBackend | SshBackend | None = None,
        max_attempts: int = 3,
        poll_interval: float = 0.05,
        checkpoint_every: int = 16,
        shard_args: Sequence[str] = (),
        inject_kills: dict[int, int] | None = None,
        store: str | Path | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        shard_args = list(shard_args)
        self._validate_shard_args(shard_args)
        Campaign(spec)  # validates generator/method names up front
        self.spec = spec
        self._spec_dict = spec.to_dict()
        self.shards = shards
        self.workers = workers
        self.partition = partition
        self.cost_manifest = cost_manifest
        self.work_dir = Path(work_dir)
        self.backend = backend if backend is not None else LocalBackend()
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.checkpoint_every = checkpoint_every
        self.shard_args = shard_args
        self.inject_kills = dict(inject_kills or {})
        self.store = Path(store) if store is not None else None

    #: Flags every shard command line already carries (or that the
    #: dispatcher may append); a duplicate from ``shard_args`` would make
    #: the child's argument parsing fail on every attempt.
    _OWNED_FLAGS = frozenset({
        "--spec", "--shard", "--partition", "--workers", "--json",
        "--checkpoint", "--checkpoint-every", "--resume", "--max-cells",
        "--cost-manifest", "--store",
    })

    @classmethod
    def _validate_shard_args(cls, shard_args: list[str]) -> None:
        for i, arg in enumerate(shard_args):
            head, _, inline = arg.partition("=")
            owned = sorted(cls._OWNED_FLAGS & {head})
            if owned:
                raise ValueError(
                    f"shard_args may not set {owned[0]!r}: the dispatcher "
                    "builds that flag itself for every shard subprocess"
                )
            value = inline or (
                shard_args[i + 1] if i + 1 < len(shard_args) else ""
            )
            if head == "--no-collect" or (
                head == "--collect" and value == "none"
            ):
                raise ValueError(
                    "shard_args disable cell collection "
                    "(--no-collect / --collect none), but every dispatched "
                    "shard checkpoints its partial result, which requires "
                    "collected cells; drop the flag or run the campaign "
                    "undispatched"
                )

    # -- paths -------------------------------------------------------------

    def _spec_path(self) -> Path:
        return self.work_dir / "spec.json"

    def _manifest_path(self) -> Path:
        return self.work_dir / "cost_manifest.json"

    def _out_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.json"

    def _checkpoint_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.part.json"

    def _log_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.log"

    # -- planning ----------------------------------------------------------

    def _plan(self) -> list[ShardRecord]:
        chains = self.spec.chains()
        n_cells = len(self.spec.sweep_values()) * len(self.spec.methods)
        records = []
        for k in range(self.shards):
            assigned = partition_chains(
                self.spec, chains, (k, self.shards),
                partition=self.partition, cost_manifest=self.cost_manifest,
            )
            costs = chain_cost_estimates(
                self.spec, assigned, self.cost_manifest
            )
            records.append(
                ShardRecord(
                    shard=k,
                    chains=len(assigned),
                    expected_cells=len(assigned) * n_cells,
                    estimated_cost=sum(costs),
                )
            )
        return records

    def _command(self, record: ShardRecord, *, first: bool) -> list[str]:
        argv = [
            sys.executable, "-m", "repro", "campaign",
            "--spec", str(self._spec_path()),
            "--shard", f"{record.shard}/{self.shards}",
            "--partition", self.partition,
            "--workers", "1",
            "--json", str(self._out_path(record.shard)),
            "--checkpoint", str(self._checkpoint_path(record.shard)),
            "--checkpoint-every", str(self.checkpoint_every),
        ]
        if self.cost_manifest:
            argv += ["--cost-manifest", str(self._manifest_path())]
        if self.store is not None:
            argv += ["--store", str(self.store)]
        resume = self._resume_source(record.shard)
        if resume is not None:
            argv += ["--resume", str(resume)]
            record.resumed_attempts += 1
        if first and record.shard in self.inject_kills:
            argv += ["--max-cells", str(self.inject_kills[record.shard])]
        return argv + self.shard_args

    def _is_ours(self, result: CampaignResult, shard: int) -> bool:
        """Whether a loaded partial/final result belongs to this dispatch.

        A reused work dir may hold shard JSONs and checkpoints left
        behind by a previous dispatch of a *different* spec (or shard
        count).  Feeding one of those to ``--resume`` wedges the shard:
        the child rejects the spec mismatch with exit 2 on every
        attempt, so the dispatcher would burn ``max_attempts`` relaunches
        on a file it should simply ignore.  Ours means: the exact spec
        dict of this dispatch, and either this shard's ``k/n``
        designator or no designator at all (an unsharded partial of the
        same spec is a valid ``--resume`` input -- chain-prefix resume
        matches cells by identity, not by shard).
        """
        return result.spec == self._spec_dict and (
            result.shard is None or result.shard == [shard, self.shards]
        )

    def _resume_source(self, shard: int) -> Path | None:
        """The best partial output a relaunch can resume from.

        Both the final output (a truncated run wrote one) and the
        periodic checkpoint are written atomically, so a loadable
        candidate is structurally valid -- but it must also be *ours*
        (see :meth:`_is_ours`): foreign/stale files from a previous
        dispatch into the same work dir are skipped, not resumed from.
        Of the accepted candidates the one holding *more cells* wins:
        after a truncated attempt 1 and a killed attempt 2, the
        attempt-2 checkpoint supersedes the stale attempt-1 output, so
        repeated kills never re-run recovered work.
        """
        best: Path | None = None
        best_cells = -1
        for path in (self._out_path(shard), self._checkpoint_path(shard)):
            if path.exists():
                try:
                    result = CampaignResult.load_json(path)
                except (ValueError, KeyError, TypeError, OSError):
                    continue
                if not self._is_ours(result, shard):
                    continue
                if len(result.cells) > best_cells:
                    best, best_cells = path, len(result.cells)
        return best

    def _shard_complete(self, record: ShardRecord) -> CampaignResult | None:
        """The shard's final result, or ``None`` when it must relaunch.

        A stale-but-complete output of a *foreign* spec (a reused work
        dir) must never be accepted as this run's result, so the same
        ownership check as :meth:`_resume_source` applies -- with the
        shard designator required exactly, since every subprocess this
        dispatcher launches passes ``--shard``.
        """
        path = self._out_path(record.shard)
        if not path.exists():
            return None
        try:
            result = CampaignResult.load_json(path)
        except (ValueError, KeyError, TypeError, OSError):
            return None
        if result.spec != self._spec_dict or result.shard != [
            record.shard, self.shards,
        ]:
            return None
        if result.truncated or len(result.cells) != record.expected_cells:
            return None
        return result

    def _log_excerpt(self, shard: int, lines: int = 10) -> str:
        """The last *lines* of a shard's log, formatted for an error."""
        try:
            text = self._log_path(shard).read_text(errors="replace")
        except OSError:
            return ""
        tail = text.strip().splitlines()[-lines:]
        if not tail:
            return ""
        return "\nlast log lines:\n" + "\n".join(
            f"  {line}" for line in tail
        )

    # -- execution ---------------------------------------------------------

    def run(self) -> DispatchReport:
        t0 = time.perf_counter()
        self.work_dir.mkdir(parents=True, exist_ok=True)
        self._spec_path().write_text(
            json.dumps(self.spec.to_dict(), indent=2)
        )
        if self.cost_manifest:
            self._manifest_path().write_text(
                json.dumps(
                    {
                        "chain_costs": {
                            str(k): v for k, v in self.cost_manifest.items()
                        }
                    },
                    indent=2,
                )
            )

        records = self._plan()
        by_shard = {r.shard: r for r in records}
        # Heaviest shards first: launching the long poles early is the
        # other half of the makespan story (stealing only fixes tails the
        # queue has not yet committed).  Empty shards are born complete.
        pending = deque(
            sorted(
                (r.shard for r in records if r.chains > 0),
                key=lambda k: (-by_shard[k].estimated_cost, k),
            )
        )
        env = self._child_env()
        running: dict[int, _Running] = {}
        # Shard results are folded into the merger the moment their shard
        # completes and dropped; only the accumulating union stays in
        # memory, never the full set of shard JSONs.
        merger = StreamingMerger(self._spec_dict)
        shards_per_slot: dict[int, int] = {}
        try:
            while pending or running:
                free = [
                    s for s in range(self.workers) if s not in running
                ]
                for slot in free:
                    if not pending:
                        break
                    record = by_shard[pending.popleft()]
                    record.attempts += 1
                    proc = self.backend.launch(
                        self._command(record, first=record.attempts == 1),
                        slot=slot,
                        log_path=self._log_path(record.shard),
                        env=env,
                    )
                    running[slot] = _Running(
                        record, proc, slot, time.perf_counter()
                    )
                if not running:
                    continue
                time.sleep(self.poll_interval)
                for slot, active in list(running.items()):
                    if active.proc.poll() is None:
                        continue
                    del running[slot]
                    record = active.record
                    record.wall_time_s += time.perf_counter() - active.started
                    result = self._shard_complete(record)
                    if result is not None:
                        record.slot = slot
                        record.cells = len(result.cells)
                        merger.add(result)
                        shards_per_slot[slot] = shards_per_slot.get(slot, 0) + 1
                        self._checkpoint_path(record.shard).unlink(
                            missing_ok=True
                        )
                        continue
                    if record.attempts >= self.max_attempts:
                        raise DispatchError(
                            f"shard {record.shard}/{self.shards} failed "
                            f"{record.attempts} attempt(s) (last exit "
                            f"status {active.proc.returncode}); see "
                            f"{self._log_path(record.shard)}"
                            + self._log_excerpt(record.shard)
                        )
                    # Relaunch at the front of the queue: a failed shard
                    # is the current long pole by definition.
                    pending.appendleft(record.shard)
        finally:
            for active in running.values():
                active.proc.kill()
                active.proc.wait()

        # The merger was seeded with this dispatch's spec, so even a run
        # where every shard was empty (more shards than chains) finishes
        # into the spec's empty result.
        merged = merger.finish()
        expected = self.spec.n_analyses()
        if len(merged.cells) != expected:
            raise DispatchError(
                f"merged union holds {len(merged.cells)} of {expected} "
                "cells; a shard produced an incomplete result that "
                "slipped past the completeness check"
            )
        return DispatchReport(
            result=merged,
            shards=records,
            workers=self.workers,
            wall_time_s=time.perf_counter() - t0,
            shards_per_slot=shards_per_slot,
        )

    def _child_env(self) -> dict:
        """Child env that can import ``repro`` even without installation."""
        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + existing if existing else "")
            )
        return env
