"""Campaign dispatcher: drive a sharded campaign to completion unattended.

PR 3/4 made the chain the unit of distributed work (``--shard k/n``
partitions, chain-prefix ``--resume``, ``campaign-merge``) but left the
driving to a human.  This module closes the loop with a
:class:`CampaignDispatcher` that

* **over-partitions** the spec into more shards than worker slots and
  feeds them from a shared queue, so fast workers *steal* the long tail
  a static per-host split would leave on the slowest host (heavy chains
  hit divergent high-utilization levels; verdict-mode bisection shrinks
  but does not remove the imbalance);
* partitions **cost-aware** (``partition="lpt"``): per-chain wall times
  recorded by a previous run (``chain_costs`` in every campaign result
  JSON) drive a longest-processing-time assignment, with the ``levels x
  n_tasks`` size proxy as the manifest-free fallback;
* is **fault-tolerant**: every shard subprocess checkpoints its partial
  result (atomic write-then-rename), and a dead, killed or truncated
  shard is relaunched with ``--resume`` pointing at its partial output
  -- chain-prefix resume makes the retried shard bit-identical to an
  uninterrupted one;
* **auto-merges** the shard JSONs through
  :func:`repro.batch.campaign.merge_campaign_results` once the queue
  drains, yielding one canonical-order :class:`CampaignResult` that is
  bit-identical to a single-process run of the same spec.

Shard subprocesses are plain ``python -m repro campaign --spec ...
--shard i/n`` invocations, launched through a pluggable *backend*:
:class:`LocalBackend` (subprocesses on this machine, the tested default)
or :class:`SshBackend` (a thin command template prefixing ``ssh <host>``
per worker slot; it assumes a shared filesystem for the work directory
and is trivially mockable in tests).  The CLI front end is ``python -m
repro campaign-dispatch``.
"""

from __future__ import annotations

import json
import os
import shlex
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.batch.campaign import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    chain_cost_estimates,
    merge_campaign_results,
    partition_chains,
)

__all__ = [
    "CampaignDispatcher",
    "DispatchError",
    "DispatchReport",
    "LocalBackend",
    "ShardRecord",
    "SshBackend",
]


class DispatchError(RuntimeError):
    """A shard kept failing past ``max_attempts`` (or produced garbage)."""


@dataclass
class ShardRecord:
    """What happened to one shard across its (re)launches."""

    shard: int
    #: Chains the partition assigned to this shard.
    chains: int
    #: Expected cell count when complete (chains x levels x methods).
    expected_cells: int
    #: Estimated cost the partition balanced on (seconds or proxy units).
    estimated_cost: float
    attempts: int = 0
    #: Relaunches that passed ``--resume`` at a partial output.
    resumed_attempts: int = 0
    #: Worker slot that completed the shard.
    slot: int | None = None
    cells: int = 0
    wall_time_s: float = 0.0


@dataclass
class DispatchReport:
    """Outcome of one dispatched campaign."""

    #: The auto-merged union of every shard, canonical cell order.
    result: CampaignResult
    shards: list[ShardRecord]
    workers: int
    wall_time_s: float
    #: Shards completed per worker slot -- the work-stealing evidence
    #: (a slot that drew heavy shards completes fewer of them).
    shards_per_slot: dict[int, int] = field(default_factory=dict)

    @property
    def relaunches(self) -> int:
        return sum(max(0, s.attempts - 1) for s in self.shards)

    def format_summary(self) -> str:
        lines = [
            f"dispatched {len(self.shards)} shard(s) over {self.workers} "
            f"worker slot(s) in {self.wall_time_s:.2f}s "
            f"({self.relaunches} relaunch(es))",
        ]
        for slot in sorted(self.shards_per_slot):
            lines.append(
                f"  slot {slot}: {self.shards_per_slot[slot]} shard(s)"
            )
        return "\n".join(lines)


class LocalBackend:
    """Launch shard commands as subprocesses on this machine."""

    def launch(
        self,
        argv: Sequence[str],
        *,
        slot: int,
        log_path: Path,
        env: dict | None = None,
    ) -> subprocess.Popen:
        del slot  # local slots are interchangeable
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                list(argv), stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()  # the child holds its own descriptor


class SshBackend:
    """Launch shard commands through ``ssh <host> <command>``.

    A deliberately thin template: worker slot ``i`` is pinned to
    ``hosts[i % len(hosts)]`` and the shard argv is shell-quoted into one
    remote command.  It assumes the work directory (spec, shard JSONs,
    checkpoints) lives on a filesystem shared between the dispatcher and
    the hosts, and that ``python`` on the remote resolves the ``repro``
    package -- both standard cluster furniture.  ``ssh_command`` is
    injectable, which is also what makes the backend mockable:
    ``SshBackend(["h0"], ssh_command=("sh", "-c",))``-style substitutions
    exercise the template without a network.
    """

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        remote_python: Sequence[str] = ("python3",),
    ):
        if not hosts:
            raise ValueError("SshBackend needs at least one host")
        self.hosts = list(hosts)
        self.ssh_command = tuple(ssh_command)
        self.remote_python = tuple(remote_python)

    def launch(
        self,
        argv: Sequence[str],
        *,
        slot: int,
        log_path: Path,
        env: dict | None = None,
    ) -> subprocess.Popen:
        del env  # the remote shell owns its environment
        host = self.hosts[slot % len(self.hosts)]
        # The dispatcher builds argv around the *local* interpreter;
        # rewrite its head for the remote one.
        remote = list(self.remote_python) + list(argv[1:])
        command = list(self.ssh_command) + [host, shlex.join(remote)]
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT
            )
        finally:
            log.close()


@dataclass
class _Running:
    record: ShardRecord
    proc: subprocess.Popen
    slot: int
    started: float


class CampaignDispatcher:
    """Drive every shard of a campaign to completion and merge the union.

    Parameters
    ----------
    spec:
        The campaign to run.
    shards:
        Shard count of the partition.  Over-partition (several shards per
        worker) so the queue can balance the tail; the default CLI choice
        is ``4 x workers``.
    workers:
        Concurrent shard subprocesses (worker slots).
    partition / cost_manifest:
        Passed through to :func:`repro.batch.campaign.partition_chains`;
        every shard subprocess receives the same manifest file so all
        hosts derive the identical disjoint partition.
    work_dir:
        Directory for the spec file, cost manifest, shard JSONs,
        checkpoints and per-shard logs.
    backend:
        :class:`LocalBackend` (default) or :class:`SshBackend`-shaped
        object with the same ``launch`` signature.
    max_attempts:
        Launch attempts per shard before :class:`DispatchError`.
    checkpoint_every:
        Cells between the shard subprocesses' checkpoint writes.
    inject_kills:
        Deterministic fault injection for tests and drills: shard index
        -> cell budget for its *first* attempt (the subprocess truncates
        there via ``--max-cells``, exactly like a kill after N cells, and
        the dispatcher must recover it through ``--resume``).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        shards: int,
        workers: int,
        partition: str = "hash",
        cost_manifest: dict[int, float] | None = None,
        work_dir: str | Path,
        backend: LocalBackend | SshBackend | None = None,
        max_attempts: int = 3,
        poll_interval: float = 0.05,
        checkpoint_every: int = 16,
        shard_args: Sequence[str] = (),
        inject_kills: dict[int, int] | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        Campaign(spec)  # validates generator/method names up front
        self.spec = spec
        self.shards = shards
        self.workers = workers
        self.partition = partition
        self.cost_manifest = cost_manifest
        self.work_dir = Path(work_dir)
        self.backend = backend if backend is not None else LocalBackend()
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.checkpoint_every = checkpoint_every
        self.shard_args = list(shard_args)
        self.inject_kills = dict(inject_kills or {})

    # -- paths -------------------------------------------------------------

    def _spec_path(self) -> Path:
        return self.work_dir / "spec.json"

    def _manifest_path(self) -> Path:
        return self.work_dir / "cost_manifest.json"

    def _out_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.json"

    def _checkpoint_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.part.json"

    def _log_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.log"

    # -- planning ----------------------------------------------------------

    def _plan(self) -> list[ShardRecord]:
        chains = self.spec.chains()
        n_cells = len(self.spec.sweep_values()) * len(self.spec.methods)
        records = []
        for k in range(self.shards):
            assigned = partition_chains(
                self.spec, chains, (k, self.shards),
                partition=self.partition, cost_manifest=self.cost_manifest,
            )
            costs = chain_cost_estimates(
                self.spec, assigned, self.cost_manifest
            )
            records.append(
                ShardRecord(
                    shard=k,
                    chains=len(assigned),
                    expected_cells=len(assigned) * n_cells,
                    estimated_cost=sum(costs),
                )
            )
        return records

    def _command(self, record: ShardRecord, *, first: bool) -> list[str]:
        argv = [
            sys.executable, "-m", "repro", "campaign",
            "--spec", str(self._spec_path()),
            "--shard", f"{record.shard}/{self.shards}",
            "--partition", self.partition,
            "--workers", "1",
            "--json", str(self._out_path(record.shard)),
            "--checkpoint", str(self._checkpoint_path(record.shard)),
            "--checkpoint-every", str(self.checkpoint_every),
        ]
        if self.cost_manifest:
            argv += ["--cost-manifest", str(self._manifest_path())]
        resume = self._resume_source(record.shard)
        if resume is not None:
            argv += ["--resume", str(resume)]
            record.resumed_attempts += 1
        if first and record.shard in self.inject_kills:
            argv += ["--max-cells", str(self.inject_kills[record.shard])]
        return argv + self.shard_args

    def _resume_source(self, shard: int) -> Path | None:
        """The best partial output a relaunch can resume from.

        Both the final output (a truncated run wrote one) and the
        periodic checkpoint are written atomically, so loadability only
        filters files from foreign/stale runs -- anything loadable is a
        valid resume input.  Of the loadable candidates the one holding
        *more cells* wins: after a truncated attempt 1 and a killed
        attempt 2, the attempt-2 checkpoint supersedes the stale
        attempt-1 output, so repeated kills never re-run recovered work.
        """
        best: Path | None = None
        best_cells = -1
        for path in (self._out_path(shard), self._checkpoint_path(shard)):
            if path.exists():
                try:
                    cells = len(CampaignResult.load_json(path).cells)
                except (ValueError, KeyError, TypeError, OSError):
                    continue
                if cells > best_cells:
                    best, best_cells = path, cells
        return best

    def _shard_complete(self, record: ShardRecord) -> CampaignResult | None:
        """The shard's final result, or ``None`` when it must relaunch."""
        path = self._out_path(record.shard)
        if not path.exists():
            return None
        try:
            result = CampaignResult.load_json(path)
        except (ValueError, KeyError, TypeError, OSError):
            return None
        if result.truncated or len(result.cells) != record.expected_cells:
            return None
        return result

    # -- execution ---------------------------------------------------------

    def run(self) -> DispatchReport:
        t0 = time.perf_counter()
        self.work_dir.mkdir(parents=True, exist_ok=True)
        self._spec_path().write_text(
            json.dumps(self.spec.to_dict(), indent=2)
        )
        if self.cost_manifest:
            self._manifest_path().write_text(
                json.dumps(
                    {
                        "chain_costs": {
                            str(k): v for k, v in self.cost_manifest.items()
                        }
                    },
                    indent=2,
                )
            )

        records = self._plan()
        by_shard = {r.shard: r for r in records}
        # Heaviest shards first: launching the long poles early is the
        # other half of the makespan story (stealing only fixes tails the
        # queue has not yet committed).  Empty shards are born complete.
        pending = deque(
            sorted(
                (r.shard for r in records if r.chains > 0),
                key=lambda k: (-by_shard[k].estimated_cost, k),
            )
        )
        env = self._child_env()
        running: dict[int, _Running] = {}
        results: dict[int, CampaignResult] = {}
        shards_per_slot: dict[int, int] = {}
        try:
            while pending or running:
                free = [
                    s for s in range(self.workers) if s not in running
                ]
                for slot in free:
                    if not pending:
                        break
                    record = by_shard[pending.popleft()]
                    record.attempts += 1
                    proc = self.backend.launch(
                        self._command(record, first=record.attempts == 1),
                        slot=slot,
                        log_path=self._log_path(record.shard),
                        env=env,
                    )
                    running[slot] = _Running(
                        record, proc, slot, time.perf_counter()
                    )
                if not running:
                    continue
                time.sleep(self.poll_interval)
                for slot, active in list(running.items()):
                    if active.proc.poll() is None:
                        continue
                    del running[slot]
                    record = active.record
                    record.wall_time_s += time.perf_counter() - active.started
                    result = self._shard_complete(record)
                    if result is not None:
                        record.slot = slot
                        record.cells = len(result.cells)
                        results[record.shard] = result
                        shards_per_slot[slot] = shards_per_slot.get(slot, 0) + 1
                        self._checkpoint_path(record.shard).unlink(
                            missing_ok=True
                        )
                        continue
                    if record.attempts >= self.max_attempts:
                        raise DispatchError(
                            f"shard {record.shard}/{self.shards} failed "
                            f"{record.attempts} attempt(s) (last exit "
                            f"status {active.proc.returncode}); see "
                            f"{self._log_path(record.shard)}"
                        )
                    # Relaunch at the front of the queue: a failed shard
                    # is the current long pole by definition.
                    pending.appendleft(record.shard)
        finally:
            for active in running.values():
                active.proc.kill()
                active.proc.wait()

        merged = merge_campaign_results(
            [results[k] for k in sorted(results)]
            or [
                CampaignResult(
                    spec=self.spec.to_dict(), cells=[], workers=0,
                    wall_time_s=0.0,
                )
            ]
        )
        expected = self.spec.n_analyses()
        if len(merged.cells) != expected:
            raise DispatchError(
                f"merged union holds {len(merged.cells)} of {expected} "
                "cells; a shard produced an incomplete result that "
                "slipped past the completeness check"
            )
        return DispatchReport(
            result=merged,
            shards=records,
            workers=self.workers,
            wall_time_s=time.perf_counter() - t0,
            shards_per_slot=shards_per_slot,
        )

    def _child_env(self) -> dict:
        """Child env that can import ``repro`` even without installation."""
        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + existing if existing else "")
            )
        return env
