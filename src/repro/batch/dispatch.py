"""Campaign dispatcher: drive a sharded campaign to completion unattended.

PR 3/4 made the chain the unit of distributed work (``--shard k/n``
partitions, chain-prefix ``--resume``, ``campaign-merge``) but left the
driving to a human.  This module closes the loop with a
:class:`CampaignDispatcher` that

* **over-partitions** the spec into more shards than worker slots and
  feeds them from a shared queue, so fast workers *steal* the long tail
  a static per-host split would leave on the slowest host (heavy chains
  hit divergent high-utilization levels; verdict-mode bisection shrinks
  but does not remove the imbalance);
* partitions **cost-aware** (``partition="lpt"``): per-chain wall times
  recorded by a previous run (``chain_costs`` in every campaign result
  JSON) drive a longest-processing-time assignment, with the ``levels x
  n_tasks`` size proxy as the manifest-free fallback;
* is **fault-tolerant**: every shard subprocess checkpoints its partial
  result (atomic write-then-rename), and a dead, killed or truncated
  shard is relaunched with ``--resume`` pointing at its partial output
  -- chain-prefix resume makes the retried shard bit-identical to an
  uninterrupted one.  Relaunches wait out a deterministic exponential
  backoff (seeded jitter, so a drill replays exactly), and every shard
  can carry a wall-clock budget derived from the cost manifest
  (``timeout_factor x predicted + timeout_floor``) or a flat
  ``shard_timeout``;
* watches **heartbeats**: every shard subprocess publishes an atomic
  liveness file (monotonic cells-completed counter + beat sequence, see
  ``Campaign.run(heartbeat=...)``), and the poll loop classifies each
  slot as *progressing* (counter advanced recently), *stalled* (beats
  arrive but the counter froze for ``stall_after`` seconds -- the
  process is alive but wedged), or *dead* (no beats at all).  Stalled
  and dead shards are killed and relaunched from their checkpoint;
  healthy-but-slow shards keep beating through long solves and are
  never shot;
* **splits stragglers elastically**: when the queue has drained, slots
  sit idle and one shard has held its slot past ``split_after``
  seconds, its chains are re-partitioned by *remaining* cost into
  sub-shards (``--chains i,j,k`` subsets resumed from the straggler's
  checkpoint), so idle slots eat the critical path.  The partition is
  chain-granular, so the merged union stays bit-identical to the
  single-process run;
* **auto-merges** shard results *as they complete* through
  :class:`repro.batch.campaign.StreamingMerger` -- each shard JSON is
  folded into the accumulating union and dropped, so dispatched peak
  memory stays bounded by the union plus one shard instead of every
  shard JSON at once -- yielding one canonical-order
  :class:`CampaignResult` that is bit-identical to a single-process run
  of the same spec;
* optionally threads a **content-addressed result store** (``store=``,
  CLI ``--store``) through to every shard subprocess, so overlapping or
  repeated campaigns skip cells the store already holds;
* shuts down **gracefully**: a ``KeyboardInterrupt`` (SIGINT, or the
  CLI's SIGTERM trap) terminates every child, saves the merged union so
  far to ``work_dir/partial.json`` and raises
  :class:`DispatchInterrupted` -- the work dir stays resumable and no
  subprocess is orphaned.

Every read of a file a child writes (heartbeat, checkpoint, shard
result) is crash-consistent: truncated or corrupt JSON is treated as
absent, matching the result store's damaged-file-as-miss rule -- a torn
file costs a relaunch, never a traceback.

Recovery paths are drilled, not hoped for: a
:class:`repro.batch.faults.FaultPlan` handed to the dispatcher delivers
deterministic faults (kill at cell N, hang, heartbeat drop, corrupt
output, exit nonzero) to chosen shard attempts through the
:data:`repro.batch.faults.FAULT_ENV` environment variable.

Shard subprocesses are plain ``python -m repro campaign --spec ...
--shard i/n`` invocations, launched through a pluggable *backend*:
:class:`LocalBackend` (subprocesses on this machine, the tested default)
or :class:`SshBackend` (a thin command template prefixing ``ssh <host>``
per worker slot; it is trivially mockable in tests).  The CLI front end
is ``python -m repro campaign-dispatch``.

File movement between the dispatcher and its workers goes through a
pluggable *transport* (:mod:`repro.batch.transport`):
:class:`~repro.batch.transport.SharedDirTransport` keeps the shared-
filesystem behavior (worker paths are dispatcher paths), while
:class:`~repro.batch.transport.CopyBackTransport` gives every host its
own work dir -- inputs staged out before each launch, shard results,
checkpoints and heartbeats pulled back on each poll, every transfer
timeout-bounded, retried with seeded backoff, digest-verified and landed
atomically.  On top of the transport sit **host-level failure domains**:
a :class:`HostHealth` tracker scores each host from its shard outcomes
(``dead``/``stalled``/``timeout`` attempts and transport failures),
quarantines a host past ``host_blacklist_after`` consecutive failures --
its in-flight shards are evicted and rescheduled onto healthy hosts --
re-admits it on probation after ``host_cooldown`` seconds (one probe
shard at a time; a probation failure kills the host for the rest of the
dispatch), and degrades gracefully to fewer slots.  Only when *every*
host is gone does the dispatch fail, with one clear
:class:`DispatchError`.
"""

from __future__ import annotations

import heapq
import json
import os
import random
import shlex
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.batch.campaign import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    StreamingMerger,
    chain_cost_estimates,
    partition_chains,
)
from repro.batch.faults import FAULT_ENV, FaultPlan
from repro.batch.transport import CopyBackTransport, SharedDirTransport

__all__ = [
    "CampaignDispatcher",
    "DispatchError",
    "DispatchInterrupted",
    "DispatchReport",
    "HostHealth",
    "HostState",
    "LocalBackend",
    "ShardRecord",
    "SshBackend",
]


class DispatchError(RuntimeError):
    """A shard kept failing past ``max_attempts`` (or produced garbage)."""


class DispatchInterrupted(DispatchError):
    """The dispatch was interrupted (SIGINT/SIGTERM) and shut down cleanly.

    Every child was terminated, the merged union so far was saved to
    ``work_dir/partial.json``, and the work dir is a valid resume target
    for a fresh dispatch of the same spec.
    """


@dataclass
class ShardRecord:
    """What happened to one shard across its (re)launches."""

    shard: int
    #: Chains the partition assigned to this shard.
    chains: int
    #: Expected cell count when complete (chains x levels x methods).
    expected_cells: int
    #: Estimated cost the partition balanced on (seconds or proxy units).
    estimated_cost: float
    attempts: int = 0
    #: Relaunches that passed ``--resume`` at a partial output.
    resumed_attempts: int = 0
    #: Worker slot that completed the shard.
    slot: int | None = None
    cells: int = 0
    wall_time_s: float = 0.0
    #: Chain plan indices this shard runs (the derived partition for
    #: planned shards, the explicit subset for elastic sub-shards).
    chain_indices: list[int] = field(default_factory=list)
    #: Shard this record was split from; ``None`` for planned shards.
    parent: int | None = None
    #: Wall seconds of each attempt (parallel to ``attempt_outcomes``).
    attempt_walls: list[float] = field(default_factory=list)
    #: Per-attempt outcome: ``completed``, ``failed`` (exited without a
    #: complete result), ``stalled``, ``dead``, ``timeout``, ``split``,
    #: ``transport`` (a staging or copy-back transfer failed), or
    #: ``evicted`` (the host was quarantined under a healthy shard --
    #: requeued without burning a failed attempt).
    attempt_outcomes: list[str] = field(default_factory=list)
    #: Host each attempt ran on (parallel to ``attempt_outcomes``).
    attempt_hosts: list[str] = field(default_factory=list)
    #: Failed transfers (staging, result/checkpoint/heartbeat pulls)
    #: observed while this shard held a slot.
    transport_failures: int = 0
    #: Attempts that *failed* -- evictions and splits are excluded, so a
    #: shard never exhausts ``max_attempts`` through no fault of its own.
    failed_attempts: int = 0
    #: Backoff delays inserted before relaunches of this shard.
    backoff_s: list[float] = field(default_factory=list)
    #: Best partial to resume from when this record was born by a split
    #: (the parent file its chain-progress census was read from).
    resume_hint: Path | None = None


@dataclass
class DispatchReport:
    """Outcome of one dispatched campaign."""

    #: The auto-merged union of every shard, canonical cell order.
    result: CampaignResult
    shards: list[ShardRecord]
    workers: int
    wall_time_s: float
    #: Shards completed per worker slot -- the work-stealing evidence
    #: (a slot that drew heavy shards completes fewer of them).
    shards_per_slot: dict[int, int] = field(default_factory=dict)
    #: Per-host health summary (completed/failures/quarantines/...).
    hosts: dict[str, dict] = field(default_factory=dict)
    #: Transport accounting (``Transport.stats()``).
    transport: dict = field(default_factory=dict)

    @property
    def relaunches(self) -> int:
        return sum(max(0, s.attempts - 1) for s in self.shards)

    @property
    def splits(self) -> int:
        """Elastic sub-shards created by straggler splitting."""
        return sum(1 for s in self.shards if s.parent is not None)

    @property
    def quarantines(self) -> int:
        """Host quarantine events (including probation deaths)."""
        return sum(h.get("quarantines", 0) for h in self.hosts.values())

    @property
    def evictions(self) -> int:
        """Healthy shard attempts evicted by a host quarantine."""
        return sum(
            1
            for s in self.shards
            for outcome in s.attempt_outcomes
            if outcome == "evicted"
        )

    @property
    def transport_failures(self) -> int:
        return sum(s.transport_failures for s in self.shards)

    def format_summary(self) -> str:
        lines = [
            f"dispatched {len(self.shards)} shard(s) over {self.workers} "
            f"worker slot(s) in {self.wall_time_s:.2f}s "
            f"({self.relaunches} relaunch(es), {self.splits} split(s))",
        ]
        # Host annotations only matter (and only change the pinned
        # single-host summary strings) when the fleet has several hosts.
        multi_host = len(self.hosts) > 1
        for s in self.shards:
            if not s.attempt_outcomes:
                continue
            attempts = ", ".join(
                f"{outcome} {wall:.2f}s"
                + (
                    f" @{s.attempt_hosts[i]}"
                    if multi_host and i < len(s.attempt_hosts)
                    else ""
                )
                for i, (outcome, wall) in enumerate(
                    zip(s.attempt_outcomes, s.attempt_walls)
                )
            )
            line = f"  shard {s.shard}: {attempts}"
            if s.parent is not None:
                line += f" (split from shard {s.parent})"
            if s.backoff_s:
                line += f", backoff {sum(s.backoff_s):.2f}s"
            lines.append(line)
        for slot in sorted(self.shards_per_slot):
            lines.append(
                f"  slot {slot}: {self.shards_per_slot[slot]} shard(s)"
            )
        if multi_host or self.quarantines:
            for host in sorted(self.hosts):
                h = self.hosts[host]
                line = (
                    f"  host {host}: {h.get('completed', 0)} completed, "
                    f"{h.get('failures', 0)} failure(s)"
                )
                if h.get("quarantines"):
                    line += f", {h['quarantines']} quarantine(s)"
                if h.get("dead"):
                    line += " [dead]"
                lines.append(line)
        if self.transport.get("kind") == "copyback":
            t = self.transport
            lines.append(
                f"  transport: {t.get('pushes', 0)} push(es), "
                f"{t.get('pulls', 0)} pull(s), "
                f"{t.get('retries', 0)} retry(ies), "
                f"{t.get('failures', 0)} failure(s)"
            )
        return "\n".join(lines)


class LocalBackend:
    """Launch shard commands as subprocesses on this machine."""

    def host_of(self, slot: int) -> str:
        """Failure-domain label of a slot: all local slots share one."""
        del slot
        return "local"

    def launch(
        self,
        argv: Sequence[str],
        *,
        slot: int,
        log_path: Path,
        env: dict | None = None,
    ) -> subprocess.Popen:
        del slot  # local slots are interchangeable
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                list(argv), stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()  # the child holds its own descriptor


class SshBackend:
    """Launch shard commands through ``ssh <host> <command>``.

    A deliberately thin template: worker slot ``i`` is pinned to
    ``hosts[i % len(hosts)]`` and the shard argv is shell-quoted into one
    remote command.  It assumes either a shared filesystem for the work
    directory or a :class:`~repro.batch.transport.CopyBackTransport`
    whose per-host dirs are reachable from the dispatcher, and that
    ``python`` on the remote resolves the ``repro`` package -- standard
    cluster furniture.  The fault-plan variable (:data:`FAULT_ENV`) is
    forwarded into the remote command with an ``env`` prefix so
    dispatcher-injected worker faults survive the ssh hop; nothing else
    of the local environment crosses it.  ``ssh_command`` is injectable,
    which is also what makes the backend mockable:
    ``SshBackend(["h0"], ssh_command=("sh", "-c",))``-style substitutions
    exercise the template without a network.
    """

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        remote_python: Sequence[str] = ("python3",),
    ):
        if not hosts:
            raise ValueError("SshBackend needs at least one host")
        self.hosts = list(hosts)
        self.ssh_command = tuple(ssh_command)
        self.remote_python = tuple(remote_python)

    def host_of(self, slot: int) -> str:
        """The host worker slot *slot* is pinned to."""
        return self.hosts[slot % len(self.hosts)]

    def launch(
        self,
        argv: Sequence[str],
        *,
        slot: int,
        log_path: Path,
        env: dict | None = None,
    ) -> subprocess.Popen:
        host = self.host_of(slot)
        # The dispatcher builds argv around the *local* interpreter;
        # rewrite its head for the remote one.
        remote = list(self.remote_python) + list(argv[1:])
        # The remote shell owns its environment -- except the fault
        # plan, which must reach the worker for injection drills.
        if env and env.get(FAULT_ENV):
            remote = ["env", f"{FAULT_ENV}={env[FAULT_ENV]}"] + remote
        command = list(self.ssh_command) + [host, shlex.join(remote)]
        log = open(log_path, "ab")
        try:
            return subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT
            )
        finally:
            log.close()


@dataclass
class HostState:
    """Health bookkeeping for one failure domain (host)."""

    host: str
    #: Failures since the last success (resets on success/quarantine).
    consecutive_failures: int = 0
    failures: int = 0
    transport_failures: int = 0
    completed: int = 0
    quarantines: int = 0
    #: Monotonic time after which a quarantined host may be probed again
    #: (``None`` = not currently quarantined).
    quarantined_until: float | None = None
    #: Re-admitted after a cooldown; the next failure is terminal.
    probation: bool = False
    #: Permanently out for the rest of this dispatch.
    dead: bool = False
    readmissions: int = 0


class HostHealth:
    """Score hosts from shard outcomes; quarantine the ones that keep dying.

    The unit of suspicion is the *host*, not the shard: a machine whose
    shards die, stall, time out, or whose transfers fail is the likely
    culprit, and burning every shard's ``max_attempts`` against it one
    by one would take the whole campaign down with one bad box.  Past
    ``blacklist_after`` consecutive failures the host is quarantined for
    ``cooldown`` seconds (its in-flight shards are evicted and
    rescheduled by the dispatcher), then re-admitted *on probation*: one
    probe shard at a time, and a failure while on probation kills the
    host for the rest of the dispatch.  ``blacklist_after=None``
    (default) keeps the accounting but never quarantines -- single-host
    dispatches keep PR 7 behavior exactly.
    """

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        blacklist_after: int | None = None,
        cooldown: float = 60.0,
    ):
        if not hosts:
            raise ValueError("HostHealth needs at least one host")
        if blacklist_after is not None and blacklist_after < 1:
            raise ValueError("blacklist_after must be >= 1 (or None)")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.blacklist_after = blacklist_after
        self.cooldown = cooldown
        self._states = {h: HostState(h) for h in hosts}

    def hosts(self) -> list[str]:
        return list(self._states)

    def state(self, host: str) -> HostState:
        return self._states[host]

    def record_success(self, host: str) -> None:
        st = self._states[host]
        st.completed += 1
        st.consecutive_failures = 0
        st.probation = False

    def record_failure(self, host: str, kind: str, now: float) -> bool:
        """Score one failure; ``True`` when it newly quarantines *host*.

        ``kind`` is the attempt outcome (``dead``/``stalled``/
        ``timeout``) or ``"transport"`` for a failed transfer.  Plain
        worker failures (nonzero exit with a sane host) are *not* routed
        here -- they indict the shard, not the machine.
        """
        st = self._states[host]
        st.failures += 1
        if kind == "transport":
            st.transport_failures += 1
        st.consecutive_failures += 1
        if self.blacklist_after is None or st.dead:
            return False
        if st.quarantined_until is not None and now < st.quarantined_until:
            return False  # already serving a quarantine
        if st.probation:
            st.probation = False
            st.quarantined_until = None
            st.dead = True
            st.quarantines += 1
            return True
        if st.consecutive_failures >= self.blacklist_after:
            st.quarantined_until = now + self.cooldown
            st.consecutive_failures = 0
            st.quarantines += 1
            return True
        return False

    def usable(self, host: str, now: float) -> bool:
        """Whether *host* may take a launch right now."""
        st = self._states[host]
        if st.dead:
            return False
        return st.quarantined_until is None or now >= st.quarantined_until

    def probationary(self, host: str, now: float) -> bool:
        """Whether launches on *host* should be throttled to one probe."""
        st = self._states[host]
        return st.probation or (
            st.quarantined_until is not None and now >= st.quarantined_until
        )

    def on_launch(self, host: str, now: float) -> None:
        """Note a launch; completes an expired quarantine into probation."""
        st = self._states[host]
        if st.quarantined_until is not None and now >= st.quarantined_until:
            st.quarantined_until = None
            st.probation = True
            st.readmissions += 1

    def any_usable(self, now: float) -> bool:
        return any(self.usable(h, now) for h in self._states)

    def all_dead(self) -> bool:
        return all(st.dead for st in self._states.values())

    def next_readmission(self) -> float | None:
        """Earliest time a currently-quarantined host may be probed."""
        times = [
            st.quarantined_until
            for st in self._states.values()
            if not st.dead and st.quarantined_until is not None
        ]
        return min(times) if times else None

    def summary(self) -> dict[str, dict]:
        return {
            h: {
                "completed": st.completed,
                "failures": st.failures,
                "transport_failures": st.transport_failures,
                "quarantines": st.quarantines,
                "readmissions": st.readmissions,
                "dead": st.dead,
            }
            for h, st in self._states.items()
        }


@dataclass
class _Running:
    record: ShardRecord
    proc: subprocess.Popen
    slot: int
    started: float
    #: Wall-clock budget for this attempt (None = unlimited).
    budget: float | None = None
    #: Last heartbeat counter / sequence the dispatcher observed.
    hb_cells: int = -1
    hb_seq: int = -1
    #: Dispatcher-clock times of the last counter advance and the last
    #: beat of any kind (clock-skew-free: embedded child timestamps are
    #: never compared against the dispatcher's clock).
    advance_t: float = 0.0
    beat_t: float = 0.0


class CampaignDispatcher:
    """Drive every shard of a campaign to completion and merge the union.

    Parameters
    ----------
    spec:
        The campaign to run.
    shards:
        Shard count of the partition.  Over-partition (several shards per
        worker) so the queue can balance the tail; the default CLI choice
        is ``4 x workers``.
    workers:
        Concurrent shard subprocesses (worker slots).
    partition / cost_manifest:
        Passed through to :func:`repro.batch.campaign.partition_chains`;
        every shard subprocess receives the same manifest file so all
        hosts derive the identical disjoint partition.
    work_dir:
        Directory for the spec file, cost manifest, shard JSONs,
        checkpoints, heartbeats and per-shard logs.
    backend:
        :class:`LocalBackend` (default) or :class:`SshBackend`-shaped
        object with the same ``launch`` signature.
    max_attempts:
        Launch attempts per shard before :class:`DispatchError`.
    poll_interval:
        Minimum seconds between poll-loop iterations.  The loop adapts:
        every quiet iteration doubles the sleep up to ``poll_max``, any
        event (launch, completion, failure, split) snaps it back.
    poll_max:
        Upper bound of the adaptive poll sleep.  Defaults to the
        effective heartbeat interval, so liveness observations are never
        starved by a long sleep.
    checkpoint_every:
        Cells between the shard subprocesses' checkpoint writes.
    stall_after:
        Liveness window in seconds (``None`` disables liveness kills).
        A shard whose heartbeat *counter* has not advanced within the
        window is *stalled* if beats still arrive, *dead* if they do
        not; both are killed and relaunched from their checkpoint.
        Healthy shards beat through long solves, so slow is never
        conflated with wedged.
    heartbeat_interval:
        Seconds between child heartbeat writes.  When ``stall_after``
        is set the effective interval is capped at a quarter of the
        window so a healthy shard can never be starved into a false
        stall by its own beat cadence.
    shard_timeout:
        Flat wall-clock budget per shard attempt (seconds); exceeding
        it counts as a failed attempt (outcome ``timeout``).
    timeout_factor / timeout_floor:
        With a cost manifest, derive each shard's budget as
        ``timeout_factor x estimated_cost + timeout_floor`` instead of
        a flat value.  ``shard_timeout`` wins when both are set;
        ``timeout_factor=None`` (default) disables derived budgets.
    backoff_base / backoff_max:
        Exponential backoff between attempts of one shard:
        ``min(backoff_max, backoff_base * 2^(attempt-1) + jitter)``
        where the jitter is drawn from a generator seeded with
        ``(spec seed, shard, attempt)`` -- deterministic, so a drill
        replays the exact schedule.  ``backoff_base=0`` (default)
        relaunches immediately.
    split_after:
        Straggler threshold in seconds (``None`` disables splitting).
        When the queue is empty, at least one slot is idle and a shard
        with >= 2 unfinished chains has held its slot this long, the
        shard is killed and its chains re-partitioned by *remaining*
        cost into sub-shards resumed from its checkpoint -- the merged
        union stays bit-identical because the partition is
        chain-granular.
    inject_kills:
        Deterministic fault injection for tests and drills: shard index
        -> cell budget for its *first* attempt (the subprocess truncates
        there via ``--max-cells``, exactly like a kill after N cells, and
        the dispatcher must recover it through ``--resume``).
    faults:
        A :class:`repro.batch.faults.FaultPlan` delivered to matching
        shard attempts through the environment -- the richer
        fault-injection surface (kill/hang/heartbeat-drop/corrupt/exit
        at exact cell boundaries).
    shard_args:
        Extra argv appended to every shard command line.  Flags the
        dispatcher builds itself (``--spec``, ``--shard``, ``--json``,
        ``--checkpoint``, ...) and collection-disabling flags
        (``--no-collect`` / ``--collect none``, which conflict with the
        always-on checkpointing) are rejected up front with
        :class:`ValueError` -- passing them through would make every
        shard fail every attempt at launch time.
    store:
        Root directory of a content-addressed result store
        (:class:`repro.batch.store.ResultStore`) passed to every shard
        via ``--store``; shards then serve already-solved cells from it
        and write fresh solves back.  Must be shared storage when the
        backend spans hosts.
    transport:
        File movement between the dispatcher and its workers:
        :class:`~repro.batch.transport.SharedDirTransport` (default,
        zero-copy shared filesystem) or
        :class:`~repro.batch.transport.CopyBackTransport` (per-host work
        dirs; inputs staged out per launch, outputs pulled back per
        poll, every transfer timeout-bounded, retried, digest-verified,
        atomically landed).  A copy-back transport must know every host
        the backend pins slots to.
    host_blacklist_after:
        Consecutive failures (``dead``/``stalled``/``timeout`` attempts,
        transport failures) after which a host is quarantined and its
        shards rescheduled onto healthy hosts.  ``None`` (default)
        disables host-level failure domains.
    host_cooldown:
        Seconds a quarantined host sits out before being re-admitted on
        probation (one probe shard; a probation failure is terminal for
        the host).  Only meaningful with ``host_blacklist_after``.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        shards: int,
        workers: int,
        partition: str = "hash",
        cost_manifest: dict[int, float] | None = None,
        work_dir: str | Path,
        backend: LocalBackend | SshBackend | None = None,
        max_attempts: int = 3,
        poll_interval: float = 0.05,
        poll_max: float | None = None,
        checkpoint_every: int = 16,
        stall_after: float | None = None,
        heartbeat_interval: float = 1.0,
        shard_timeout: float | None = None,
        timeout_factor: float | None = None,
        timeout_floor: float = 30.0,
        backoff_base: float = 0.0,
        backoff_max: float = 60.0,
        split_after: float | None = None,
        shard_args: Sequence[str] = (),
        inject_kills: dict[int, int] | None = None,
        faults: FaultPlan | None = None,
        store: str | Path | None = None,
        transport: SharedDirTransport | CopyBackTransport | None = None,
        host_blacklist_after: int | None = None,
        host_cooldown: float = 60.0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if stall_after is not None and stall_after <= 0:
            raise ValueError("stall_after must be > 0 (or None)")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be > 0 (or None)")
        if timeout_factor is not None and timeout_factor <= 0:
            raise ValueError("timeout_factor must be > 0 (or None)")
        if timeout_floor < 0:
            raise ValueError("timeout_floor must be >= 0")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if backoff_max < 0:
            raise ValueError("backoff_max must be >= 0")
        if split_after is not None and split_after < 0:
            raise ValueError("split_after must be >= 0 (or None)")
        shard_args = list(shard_args)
        self._validate_shard_args(shard_args)
        Campaign(spec)  # validates generator/method names up front
        self.spec = spec
        self._spec_dict = spec.to_dict()
        self.shards = shards
        self.workers = workers
        self.partition = partition
        self.cost_manifest = cost_manifest
        self.work_dir = Path(work_dir)
        self.backend = backend if backend is not None else LocalBackend()
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.checkpoint_every = checkpoint_every
        self.stall_after = stall_after
        # A liveness window needs several beats inside it, or a healthy
        # shard's own cadence could read as silence.
        if stall_after is not None:
            self.heartbeat_interval = min(
                heartbeat_interval, max(stall_after / 4.0, 0.05)
            )
        else:
            self.heartbeat_interval = heartbeat_interval
        self.poll_max = (
            poll_max
            if poll_max is not None
            else max(poll_interval, self.heartbeat_interval)
        )
        self.shard_timeout = shard_timeout
        self.timeout_factor = timeout_factor
        self.timeout_floor = timeout_floor
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.split_after = split_after
        self.shard_args = shard_args
        self.inject_kills = dict(inject_kills or {})
        self.faults = faults
        self.store = Path(store) if store is not None else None
        self.transport = (
            transport
            if transport is not None
            else SharedDirTransport(self.work_dir)
        )
        #: Worker slot -> failure-domain label; backends without a
        #: ``host_of`` collapse into one ``"local"`` domain.
        host_of = getattr(self.backend, "host_of", None)
        self._slot_host = {
            s: (host_of(s) if callable(host_of) else "local")
            for s in range(workers)
        }
        hosts = list(dict.fromkeys(self._slot_host.values()))
        transport_hosts = getattr(self.transport, "host_dirs", None)
        if transport_hosts is not None:
            missing = [h for h in hosts if h not in transport_hosts]
            if missing:
                raise ValueError(
                    f"transport knows no work dir for host(s) "
                    f"{missing}; backend slots are pinned to {hosts}"
                )
        self.host_health = HostHealth(
            hosts,
            blacklist_after=host_blacklist_after,
            cooldown=host_cooldown,
        )
        if self.faults is not None:
            # Arming transport faults on a transport that performs no
            # transfers is a harness bug and fails loudly here.
            self.transport.arm(self.faults.for_transport())

    #: Flags every shard command line already carries (or that the
    #: dispatcher may append); a duplicate from ``shard_args`` would make
    #: the child's argument parsing fail on every attempt.
    _OWNED_FLAGS = frozenset({
        "--spec", "--shard", "--partition", "--workers", "--json",
        "--checkpoint", "--checkpoint-every", "--resume", "--max-cells",
        "--cost-manifest", "--store", "--heartbeat", "--heartbeat-interval",
        "--chains",
    })

    @classmethod
    def _validate_shard_args(cls, shard_args: list[str]) -> None:
        for i, arg in enumerate(shard_args):
            head, _, inline = arg.partition("=")
            owned = sorted(cls._OWNED_FLAGS & {head})
            if owned:
                raise ValueError(
                    f"shard_args may not set {owned[0]!r}: the dispatcher "
                    "builds that flag itself for every shard subprocess"
                )
            value = inline or (
                shard_args[i + 1] if i + 1 < len(shard_args) else ""
            )
            if head == "--no-collect" or (
                head == "--collect" and value == "none"
            ):
                raise ValueError(
                    "shard_args disable cell collection "
                    "(--no-collect / --collect none), but every dispatched "
                    "shard checkpoints its partial result, which requires "
                    "collected cells; drop the flag or run the campaign "
                    "undispatched"
                )

    # -- paths -------------------------------------------------------------

    def _spec_path(self) -> Path:
        return self.work_dir / "spec.json"

    def _manifest_path(self) -> Path:
        return self.work_dir / "cost_manifest.json"

    def _out_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.json"

    def _checkpoint_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.part.json"

    def _heartbeat_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.hb.json"

    def _log_path(self, shard: int) -> Path:
        return self.work_dir / f"shard{shard:04d}.log"

    # -- planning ----------------------------------------------------------

    def _cells_per_chain(self) -> int:
        return len(self.spec.sweep_values()) * len(self.spec.methods)

    def _plan(self) -> list[ShardRecord]:
        chains = self.spec.chains()
        n_cells = self._cells_per_chain()
        records = []
        for k in range(self.shards):
            assigned = partition_chains(
                self.spec, chains, (k, self.shards),
                partition=self.partition, cost_manifest=self.cost_manifest,
            )
            costs = chain_cost_estimates(
                self.spec, assigned, self.cost_manifest
            )
            records.append(
                ShardRecord(
                    shard=k,
                    chains=len(assigned),
                    expected_cells=len(assigned) * n_cells,
                    estimated_cost=sum(costs),
                    chain_indices=[c["index"] for c in assigned],
                )
            )
        return records

    def _command(
        self, record: ShardRecord, *, first: bool, host: str = "local"
    ) -> list[str]:
        # Worker-side paths are transport-addressed: on a shared-dir
        # transport they are the dispatcher's own paths, on a copy-back
        # transport they live in the host's work dir (inputs staged out
        # by ``launch``, outputs pulled back by the poll loop).
        def wp(local: Path) -> str:
            return str(self.transport.worker_path(host, local.name))

        argv = [
            sys.executable, "-m", "repro", "campaign",
            "--spec", wp(self._spec_path()),
        ]
        if record.parent is None:
            argv += [
                "--shard", f"{record.shard}/{self.shards}",
                "--partition", self.partition,
            ]
        else:
            # Elastic sub-shard: an explicit chain subset, not a k/n
            # partition (its result carries no shard designator).
            argv += [
                "--chains", ",".join(str(i) for i in record.chain_indices),
            ]
        argv += [
            "--workers", "1",
            "--json", wp(self._out_path(record.shard)),
            "--checkpoint", wp(self._checkpoint_path(record.shard)),
            "--checkpoint-every", str(self.checkpoint_every),
            "--heartbeat", wp(self._heartbeat_path(record.shard)),
            "--heartbeat-interval", f"{self.heartbeat_interval:g}",
        ]
        if self.cost_manifest:
            argv += ["--cost-manifest", wp(self._manifest_path())]
        if self.store is not None:
            argv += ["--store", str(self.store)]
        resume = self._resume_source(record)
        if resume is not None:
            argv += ["--resume", wp(resume)]
            record.resumed_attempts += 1
        if first and record.parent is None and record.shard in self.inject_kills:
            argv += ["--max-cells", str(self.inject_kills[record.shard])]
        return argv + self.shard_args

    # -- crash-consistent reads --------------------------------------------

    @staticmethod
    def _load_result(path: Path) -> CampaignResult | None:
        """Load a child-written result JSON; damage reads as absent."""
        if not path.exists():
            return None
        try:
            return CampaignResult.load_json(path)
        except (ValueError, KeyError, TypeError, OSError):
            return None

    def _read_heartbeat(self, shard: int) -> dict | None:
        """The shard's heartbeat, or ``None`` if absent/torn/corrupt."""
        try:
            data = json.loads(self._heartbeat_path(shard).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        try:
            return {"cells": int(data["cells"]), "seq": int(data["seq"])}
        except (KeyError, TypeError, ValueError):
            return None

    # -- ownership ---------------------------------------------------------

    def _is_ours(self, result: CampaignResult, shard: int) -> bool:
        """Whether a loaded partial/final result belongs to this dispatch.

        A reused work dir may hold shard JSONs and checkpoints left
        behind by a previous dispatch of a *different* spec (or shard
        count).  Feeding one of those to ``--resume`` wedges the shard:
        the child rejects the spec mismatch with exit 2 on every
        attempt, so the dispatcher would burn ``max_attempts`` relaunches
        on a file it should simply ignore.  Ours means: the exact spec
        dict of this dispatch, and either this shard's ``k/n``
        designator or no designator at all (an unsharded partial of the
        same spec is a valid ``--resume`` input -- chain-prefix resume
        matches cells by identity, not by shard).
        """
        return result.spec == self._spec_dict and (
            result.shard is None or result.shard == [shard, self.shards]
        )

    def _resume_source(self, record: ShardRecord | int) -> Path | None:
        """The best partial output a relaunch can resume from.

        Both the final output (a truncated run wrote one) and the
        periodic checkpoint are written atomically, so a loadable
        candidate is structurally valid -- but it must also be *ours*
        (see :meth:`_is_ours`): foreign/stale files from a previous
        dispatch into the same work dir are skipped, not resumed from.
        Of the accepted candidates the one holding *more cells* wins:
        after a truncated attempt 1 and a killed attempt 2, the
        attempt-2 checkpoint supersedes the stale attempt-1 output, so
        repeated kills never re-run recovered work.

        An elastic sub-shard additionally considers its parent's files
        (the straggler partial it was split from): chain-prefix resume
        reuses the parent's completed chains wholesale and re-runs the
        rest, which is what keeps a split bit-identical.
        """
        if isinstance(record, ShardRecord):
            sid, parent = record.shard, record.parent
            hint = record.resume_hint
        else:
            sid, parent, hint = record, None, None
        candidates = [self._out_path(sid), self._checkpoint_path(sid)]
        if parent is not None:
            candidates += [
                self._out_path(parent), self._checkpoint_path(parent),
            ]
        if hint is not None:
            candidates.append(hint)
        allowed = {None, (sid, self.shards)}
        if parent is not None:
            allowed.add((parent, self.shards))
        best: Path | None = None
        best_cells = -1
        seen: set[Path] = set()
        for path in candidates:
            if path in seen:
                continue
            seen.add(path)
            result = self._load_result(path)
            if result is None or result.spec != self._spec_dict:
                continue
            designator = (
                tuple(result.shard) if result.shard is not None else None
            )
            if designator not in allowed:
                continue
            if len(result.cells) > best_cells:
                best, best_cells = path, len(result.cells)
        return best

    def _shard_complete(self, record: ShardRecord) -> CampaignResult | None:
        """The shard's final result, or ``None`` when it must relaunch.

        A stale-but-complete output of a *foreign* spec (a reused work
        dir) must never be accepted as this run's result, so the same
        ownership check as :meth:`_resume_source` applies -- with the
        shard designator required exactly: planned shards run with
        ``--shard`` and must carry their ``k/n``, elastic sub-shards run
        with ``--chains`` and must carry none.
        """
        result = self._load_result(self._out_path(record.shard))
        if result is None:
            return None
        expected_designator = (
            None if record.parent is not None else [record.shard, self.shards]
        )
        if (
            result.spec != self._spec_dict
            or result.shard != expected_designator
        ):
            return None
        if result.truncated or len(result.cells) != record.expected_cells:
            return None
        return result

    def _log_excerpt(self, shard: int, lines: int = 10) -> str:
        """The last *lines* of a shard's log, formatted for an error."""
        try:
            text = self._log_path(shard).read_text(errors="replace")
        except OSError:
            return ""
        tail = text.strip().splitlines()[-lines:]
        if not tail:
            return ""
        return "\nlast log lines:\n" + "\n".join(
            f"  {line}" for line in tail
        )

    # -- liveness / recovery policy ----------------------------------------

    def _liveness(self, active: _Running, now: float) -> str:
        """Classify a live slot: ``progressing`` / ``stalled`` / ``dead``.

        The decision uses *dispatcher-observed* change times: the moment
        this loop saw the counter (or the beat sequence) change, never
        the child's embedded wall timestamp -- so clock skew between
        hosts cannot misclassify a healthy worker.
        """
        hb = self._read_heartbeat(active.record.shard)
        if hb is not None:
            if hb["cells"] > active.hb_cells:
                active.hb_cells = hb["cells"]
                active.hb_seq = hb["seq"]
                active.advance_t = now
                active.beat_t = now
            elif hb["seq"] != active.hb_seq:
                active.hb_seq = hb["seq"]
                active.beat_t = now
        if self.stall_after is None:
            return "progressing"
        if now - active.advance_t <= self.stall_after:
            return "progressing"
        if now - active.beat_t <= self.stall_after:
            return "stalled"
        return "dead"

    def _attempt_budget(self, record: ShardRecord) -> float | None:
        if self.shard_timeout is not None:
            return self.shard_timeout
        if self.timeout_factor is not None and self.cost_manifest:
            return (
                self.timeout_factor * record.estimated_cost
                + self.timeout_floor
            )
        return None

    def _backoff_delay(self, shard: int, attempt: int) -> float:
        """Deterministic exponential backoff before attempt ``attempt+1``."""
        if self.backoff_base <= 0:
            return 0.0
        rng = random.Random(f"{self.spec.seed}:{shard}:{attempt}")
        raw = self.backoff_base * (2.0 ** (attempt - 1))
        jitter = rng.random() * self.backoff_base
        return min(self.backoff_max, raw + jitter)

    def _chain_progress(
        self, result: CampaignResult | None, record: ShardRecord
    ) -> dict[int, int]:
        """Completed-cell count per chain index of *record* in *result*.

        Chains are identified by their (seed, replicate) pair -- every
        cell of a chain carries the chain's seed, and the plan spawns a
        distinct seed per (point, replicate).
        """
        if result is None:
            return {}
        wanted = set(record.chain_indices)
        by_key = {
            (c["seed"], c["replicate"]): c["index"]
            for c in self.spec.chains()
            if c["index"] in wanted
        }
        counts: dict[int, int] = {}
        for cell in result.cells:
            idx = by_key.get((cell.seed, cell.replicate))
            if idx is not None:
                counts[idx] = counts.get(idx, 0) + 1
        return counts

    def _designator(self, record: ShardRecord) -> str:
        if record.parent is None:
            return f"{record.shard}/{self.shards}"
        return f"{record.shard} (split from {record.parent})"

    # -- execution ---------------------------------------------------------

    def run(self) -> DispatchReport:
        t0 = time.perf_counter()
        self.work_dir.mkdir(parents=True, exist_ok=True)
        self._spec_path().write_text(
            json.dumps(self.spec.to_dict(), indent=2)
        )
        if self.cost_manifest:
            self._manifest_path().write_text(
                json.dumps(
                    {
                        "chain_costs": {
                            str(k): v for k, v in self.cost_manifest.items()
                        }
                    },
                    indent=2,
                )
            )

        records = self._plan()
        by_shard = {r.shard: r for r in records}
        chain_plan = {c["index"]: c for c in self.spec.chains()}
        n_cells = self._cells_per_chain()
        next_sub = self.shards
        # Heaviest shards first: launching the long poles early is the
        # other half of the makespan story (stealing only fixes tails the
        # queue has not yet committed).  Empty shards are born complete.
        pending: list[int] = sorted(
            (r.shard for r in records if r.chains > 0),
            key=lambda k: (-by_shard[k].estimated_cost, k),
        )
        #: Shard id -> monotonic time before which it may not relaunch.
        ready_at: dict[int, float] = {}
        env = self._child_env()
        running: dict[int, _Running] = {}
        # Shard results are folded into the merger the moment their shard
        # completes and dropped; only the accumulating union stays in
        # memory, never the full set of shard JSONs.
        merger = StreamingMerger(self._spec_dict)
        shards_per_slot: dict[int, int] = {}
        poll = self.poll_interval
        interrupted: BaseException | None = None

        def pop_ready(now: float) -> int | None:
            for i, sid in enumerate(pending):
                if ready_at.get(sid, 0.0) <= now:
                    return pending.pop(i)
            return None

        def finish_attempt(
            record: ShardRecord, outcome: str, wall: float
        ) -> None:
            record.wall_time_s += wall
            record.attempt_walls.append(wall)
            record.attempt_outcomes.append(outcome)

        def fail_attempt(record: ShardRecord, outcome: str, rc) -> None:
            record.failed_attempts += 1
            if record.failed_attempts >= self.max_attempts:
                raise DispatchError(
                    f"shard {self._designator(record)} failed "
                    f"{record.failed_attempts} attempt(s) (last outcome "
                    f"{outcome!r}, exit status {rc}); see "
                    f"{self._log_path(record.shard)}"
                    + self._log_excerpt(record.shard)
                )
            delay = self._backoff_delay(record.shard, record.attempts)
            if delay > 0.0:
                record.backoff_s.append(delay)
                ready_at[record.shard] = time.perf_counter() + delay
            # Relaunch at the front of the queue: a failed shard is the
            # current long pole by definition.
            pending.insert(0, record.shard)

        def evict_host(host: str, now: float) -> None:
            """Requeue every in-flight shard of a quarantined host.

            The shards are healthy -- the *host* is the casualty -- so
            the eviction neither burns a failed attempt nor inserts a
            backoff: they go straight to the front of the queue for the
            surviving hosts.
            """
            for slot2, act2 in list(running.items()):
                if self._slot_host[slot2] != host:
                    continue
                act2.proc.kill()
                act2.proc.wait()
                del running[slot2]
                finish_attempt(
                    act2.record, "evicted",
                    time.perf_counter() - act2.started,
                )
                pending.insert(0, act2.record.shard)

        def host_failure(host: str, kind: str, now: float) -> None:
            if self.host_health.record_failure(host, kind, now):
                evict_host(host, now)

        def host_ok(slot: int, now: float) -> bool:
            host = self._slot_host[slot]
            if not self.host_health.usable(host, now):
                return False
            if self.host_health.probationary(host, now) and any(
                self._slot_host[s2] == host for s2 in running
            ):
                return False  # one probe shard at a time on probation
            return True

        def launch(record: ShardRecord, slot: int) -> bool:
            host = self._slot_host[slot]
            started = time.perf_counter()
            self.host_health.on_launch(host, started)
            record.attempts += 1
            record.attempt_hosts.append(host)
            # Stage the inputs out first (no-op on a shared dir).  A
            # failed transfer is a failed attempt charged to the host,
            # not a worker launch doomed to a file-not-found.
            staged = self.transport.stage_out(host, self._spec_path().name)
            if staged and self.cost_manifest:
                staged = self.transport.stage_out(
                    host, self._manifest_path().name
                )
            if staged:
                resume = self._resume_source(record)
                if resume is not None:
                    staged = self.transport.stage_out(host, resume.name)
            if not staged:
                record.transport_failures += 1
                finish_attempt(
                    record, "transport", time.perf_counter() - started
                )
                host_failure(host, "transport", time.perf_counter())
                fail_attempt(record, "transport", "-")
                return False
            # A stale heartbeat from a previous attempt must not feed the
            # classifier: the fresh attempt starts with a clean grace
            # window measured from its own launch.
            self.transport.remove(host, self._heartbeat_path(record.shard).name)
            launch_env = env
            if self.faults is not None:
                payload = self.faults.for_worker(
                    record.shard, record.attempts
                )
                if payload is not None:
                    launch_env = dict(env)
                    launch_env[FAULT_ENV] = payload
            proc = self.backend.launch(
                self._command(
                    record, first=record.attempts == 1, host=host
                ),
                slot=slot,
                log_path=self._log_path(record.shard),
                env=launch_env,
            )
            now = time.perf_counter()
            running[slot] = _Running(
                record, proc, slot, now,
                budget=self._attempt_budget(record),
                advance_t=now, beat_t=now,
            )
            return True

        def try_split(now: float) -> bool:
            """Split the worst straggler's chains onto idle slots."""
            nonlocal next_sub
            if self.split_after is None or pending or not running:
                return False
            idle = self.workers - len(running)
            if idle < 1:
                return False
            candidates = [
                a for a in running.values()
                if now - a.started >= self.split_after
                and len(a.record.chain_indices) >= 2
            ]
            if not candidates:
                return False
            active = max(
                candidates,
                key=lambda a: (a.record.estimated_cost, -a.record.shard),
            )
            record = active.record
            # Census the straggler's progress *before* killing it; both
            # candidate files are atomic, so a live child cannot tear
            # them under the read.  On a copy-back transport the freshest
            # checkpoint lives on the straggler's host -- pull it home
            # first (a failed pull degrades the census to stale/absent,
            # which only costs re-run work, never correctness).
            split_host = self._slot_host[active.slot]
            for name in (
                self._out_path(record.shard).name,
                self._checkpoint_path(record.shard).name,
            ):
                if not self.transport.pull(split_host, name):
                    record.transport_failures += 1
            source = self._resume_source(record)
            partial = (
                self._load_result(source) if source is not None else None
            )
            done = self._chain_progress(partial, record)
            unfinished = [
                i for i in record.chain_indices
                if done.get(i, 0) < n_cells
            ]
            if len(unfinished) < 2:
                # One unfinished chain cannot be split further; leave the
                # shard running rather than pay a pointless relaunch.
                return False
            active.proc.kill()
            active.proc.wait()
            del running[active.slot]
            finish_attempt(active.record, "split", now - active.started)
            # Re-partition *all* assigned chains by remaining cost
            # (completed chains weigh ~0 and resume wholesale), LPT onto
            # the idle slots plus the one just freed.
            costs = chain_cost_estimates(
                self.spec,
                [chain_plan[i] for i in record.chain_indices],
                self.cost_manifest,
            )
            remaining = {
                i: cost * (1.0 - min(done.get(i, 0), n_cells) / n_cells)
                for i, cost in zip(record.chain_indices, costs)
            }
            groups = min(idle + 1, len(unfinished))
            heap = [(0.0, g) for g in range(groups)]
            assign: list[list[int]] = [[] for _ in range(groups)]
            for i in sorted(
                record.chain_indices, key=lambda i: (-remaining[i], i)
            ):
                load, g = heapq.heappop(heap)
                assign[g].append(i)
                heapq.heappush(heap, (load + remaining[i], g))
            for sub in assign:
                if not sub:
                    continue
                sub_record = ShardRecord(
                    shard=next_sub,
                    chains=len(sub),
                    expected_cells=len(sub) * n_cells,
                    estimated_cost=sum(remaining[i] for i in sub),
                    chain_indices=sorted(sub),
                    parent=record.shard,
                    resume_hint=source,
                )
                next_sub += 1
                records.append(sub_record)
                by_shard[sub_record.shard] = sub_record
                pending.insert(0, sub_record.shard)
            return True

        try:
            while pending or running:
                now = time.perf_counter()
                events = False
                free = [
                    s for s in range(self.workers) if s not in running
                ]
                for slot in free:
                    # Re-check per launch: an earlier launch this
                    # iteration may have taken a probation host's single
                    # probe, or a staging failure may have quarantined
                    # the host outright.
                    if not host_ok(slot, now):
                        continue
                    sid = pop_ready(now)
                    if sid is None:
                        break
                    launch(by_shard[sid], slot)
                    events = True
                if not running:
                    if pending and self.host_health.all_dead():
                        raise DispatchError(
                            "every host is quarantined ("
                            + ", ".join(sorted(self.host_health.hosts()))
                            + f"); {len(pending)} shard(s) cannot be "
                            "dispatched"
                        )
                    # Every pending shard is inside a backoff window (or
                    # every host inside a quarantine cooldown): sleep it
                    # out instead of busy-spinning.
                    next_ready = min(
                        (ready_at.get(s, 0.0) for s in pending),
                        default=now,
                    )
                    if pending and not self.host_health.any_usable(now):
                        readmit = self.host_health.next_readmission()
                        if readmit is not None:
                            next_ready = max(next_ready, readmit)
                    wait = max(0.0, next_ready - time.perf_counter())
                    time.sleep(
                        min(wait, 1.0) if wait > 0 else self.poll_interval
                    )
                    continue
                time.sleep(poll)
                now = time.perf_counter()
                for slot, active in list(running.items()):
                    if slot not in running:
                        continue  # evicted by a quarantine this sweep
                    host = self._slot_host[slot]
                    record = active.record
                    outcome: str | None = None
                    rc = active.proc.poll()
                    if rc is None:
                        # Liveness rides the transport too: bring the
                        # heartbeat home before classifying.
                        if not self.transport.pull(
                            host, self._heartbeat_path(record.shard).name
                        ):
                            record.transport_failures += 1
                            host_failure(host, "transport", now)
                            events = True
                            if slot not in running:
                                continue  # the pull's host was quarantined
                        if (
                            active.budget is not None
                            and now - active.started > active.budget
                        ):
                            outcome = "timeout"
                        else:
                            state = self._liveness(active, now)
                            if state in ("stalled", "dead"):
                                outcome = state
                        if outcome is None:
                            continue
                        # Wedged or over budget: the dispatcher shoots it
                        # and treats the attempt as failed.
                        active.proc.kill()
                        active.proc.wait()
                        rc = active.proc.returncode
                    del running[slot]
                    events = True
                    # Bring the worker's outputs home before judging the
                    # attempt (no-op on a shared dir).  A failed result
                    # pull turns an apparent success into a ``transport``
                    # attempt; a failed checkpoint pull only costs the
                    # relaunch a staler resume point.
                    if not self.transport.pull(
                        host, self._out_path(record.shard).name
                    ):
                        record.transport_failures += 1
                        if outcome is None:
                            outcome = "transport"
                    result = (
                        self._shard_complete(record)
                        if outcome is None
                        else None
                    )
                    if result is not None:
                        finish_attempt(
                            record, "completed", now - active.started
                        )
                        record.slot = slot
                        record.cells = len(result.cells)
                        merger.add(result)
                        shards_per_slot[slot] = (
                            shards_per_slot.get(slot, 0) + 1
                        )
                        self.host_health.record_success(host)
                        self.transport.remove(
                            host, self._checkpoint_path(record.shard).name
                        )
                        continue
                    if not self.transport.pull(
                        host, self._checkpoint_path(record.shard).name
                    ):
                        record.transport_failures += 1
                        if outcome is None:
                            outcome = "transport"
                    outcome = outcome or "failed"
                    finish_attempt(record, outcome, now - active.started)
                    if outcome in ("dead", "stalled", "timeout", "transport"):
                        host_failure(host, outcome, now)
                    fail_attempt(record, outcome, rc)
                if try_split(time.perf_counter()):
                    events = True
                # Adaptive poll: quiet iterations back off exponentially
                # (bounded so heartbeat observation is never starved),
                # any event snaps the cadence back to the floor.
                poll = (
                    self.poll_interval
                    if events
                    else min(poll * 2.0, self.poll_max)
                )
        except (KeyboardInterrupt, SystemExit) as exc:
            interrupted = exc
        finally:
            self._reap(running)

        if interrupted is not None:
            partial = merger.finish()
            partial_path: Path | None = self.work_dir / "partial.json"
            try:
                partial.save_json(partial_path)
            except OSError:
                partial_path = None
            raise DispatchInterrupted(
                f"dispatch interrupted; merged {len(partial.cells)} cell(s) "
                + (
                    f"into {partial_path}; "
                    if partial_path is not None
                    else ""
                )
                + f"work dir {self.work_dir} is resumable by re-dispatching "
                "the same spec into it"
            ) from interrupted

        # The merger was seeded with this dispatch's spec, so even a run
        # where every shard was empty (more shards than chains) finishes
        # into the spec's empty result.
        merged = merger.finish()
        expected = self.spec.n_analyses()
        if len(merged.cells) != expected:
            raise DispatchError(
                f"merged union holds {len(merged.cells)} of {expected} "
                "cells; a shard produced an incomplete result that "
                "slipped past the completeness check"
            )
        return DispatchReport(
            result=merged,
            shards=records,
            workers=self.workers,
            wall_time_s=time.perf_counter() - t0,
            shards_per_slot=shards_per_slot,
            hosts=self.host_health.summary(),
            transport=self.transport.stats(),
        )

    @staticmethod
    def _reap(running: dict[int, _Running]) -> None:
        """Terminate-then-kill every child; never leave an orphan behind.

        SIGTERM first so children die promptly but cleanly (they hold no
        state needing flushing -- checkpoints are atomic), escalating to
        SIGKILL for anything that lingers past a short grace period.
        """
        for active in running.values():
            if active.proc.poll() is None:
                active.proc.terminate()
        deadline = time.perf_counter() + 2.0
        for active in running.values():
            try:
                active.proc.wait(
                    timeout=max(0.0, deadline - time.perf_counter())
                )
            except subprocess.TimeoutExpired:
                active.proc.kill()
                active.proc.wait()
        running.clear()

    def _child_env(self) -> dict:
        """Child env that can import ``repro`` even without installation."""
        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if pkg_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                pkg_root + (os.pathsep + existing if existing else "")
            )
        return env
