"""File movement between the dispatcher and per-host worker work dirs.

PR 7's dispatcher assumed one shared filesystem: workers write shard
results, checkpoints, and heartbeats straight into the dispatcher's work
dir.  That holds for :class:`~repro.batch.dispatch.LocalBackend` and for
NFS-backed ssh fleets, but not for real multi-host deployments.  This
module is the seam:

* :class:`SharedDirTransport` keeps today's zero-copy behavior -- worker
  paths *are* dispatcher paths, staging and pulling are no-ops.
* :class:`CopyBackTransport` gives every host its own work dir.  The
  dispatcher stages inputs (spec, cost manifest, resume sources) out
  before each launch and pulls outputs (shard JSONs, checkpoints,
  heartbeat files) back on each poll.

Every ``CopyBackTransport`` transfer carries the full PR 7
crash-consistency contract:

* **per-file timeout** -- a transfer that exceeds ``timeout`` seconds is
  abandoned before landing;
* **bounded retry with seeded backoff** -- the same deterministic
  ``random.Random(f"{seed}:...")`` jitter the dispatcher uses for shard
  relaunches;
* **digest verification** -- the landed bytes are read back and compared
  (SHA-256) against the source before publication, so a truncated or
  bit-flipped copy never lands;
* **atomic tmp+rename landing** -- a torn or interrupted copy reads as
  *absent*, never as garbage, exactly like the dispatcher's local reads.

Transport faults (:class:`repro.batch.faults.TransportFault`) are armed
directly on the transport and consulted on every transfer attempt, so
tests can deterministically drop, delay, truncate, or corrupt one
copy-back -- or blackhole a host -- and watch the dispatcher's
host-level failure domains react.

The byte movement itself is plain local-filesystem I/O against the
per-host directories, which covers tests (mock host dirs), sshfs/NFS
mounts, and any layout where each host's work dir is reachable as a
path.  A deployment that truly needs scp/rsync subclasses
:class:`CopyBackTransport` and overrides :meth:`_read_remote` /
:meth:`_write_remote`; everything above the byte layer (timeouts,
retries, digests, atomicity, fault hooks, accounting) is inherited.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from pathlib import Path

from .faults import TransportFault

__all__ = [
    "CopyBackTransport",
    "SharedDirTransport",
    "TransportError",
]

#: Events kept on a transport before older ones are discarded.
_EVENT_CAP = 256


class TransportError(RuntimeError):
    """A transfer failed after exhausting its retries."""


class SharedDirTransport:
    """Zero-copy transport for a shared filesystem (PR 7 behavior).

    Worker paths are dispatcher paths; ``stage_out`` and ``pull`` are
    no-ops that always succeed.  Arming transport faults on it is a
    harness bug -- there are no transfers for them to hit -- and fails
    loudly rather than silently never firing.
    """

    kind = "shared"

    def __init__(self, work_dir: str | Path):
        self.work_dir = Path(work_dir)

    def worker_path(self, host: str, name: str) -> Path:
        """Where *host*'s worker reads/writes *name* (the local path)."""
        return self.work_dir / name

    def stage_out(self, host: str, name: str) -> bool:
        return True

    def pull(self, host: str, name: str) -> bool:
        return True

    def remove(self, host: str, name: str) -> None:
        try:
            (self.work_dir / name).unlink()
        except OSError:
            pass

    def arm(self, faults: list[TransportFault]) -> None:
        if faults:
            raise ValueError(
                "transport faults need a CopyBackTransport; "
                "SharedDirTransport performs no transfers for them to hit"
            )

    def stats(self) -> dict:
        return {"kind": self.kind}


class CopyBackTransport:
    """Copy files between the dispatcher work dir and per-host work dirs.

    ``host_dirs`` maps host name -> that host's work dir (created on
    demand).  ``stage_out`` copies ``work_dir/name`` out to the host;
    ``pull`` copies ``host_dir/name`` back.  A missing *source* file is
    benign (``pull`` of a heartbeat the worker has not written yet
    returns ``True`` without touching the local copy); only a transfer
    that *fails* -- timeout, digest mismatch, injected fault, blackholed
    host -- after exhausting its retries returns ``False``.
    """

    kind = "copyback"

    def __init__(
        self,
        work_dir: str | Path,
        host_dirs: dict[str, str | Path],
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        seed: int = 0,
    ):
        if not host_dirs:
            raise ValueError("CopyBackTransport needs at least one host dir")
        if timeout <= 0:
            raise ValueError("transport timeout must be > 0")
        if retries < 0:
            raise ValueError("transport retries must be >= 0")
        self.work_dir = Path(work_dir)
        self.host_dirs = {h: Path(d) for h, d in host_dirs.items()}
        resolved_local = self.work_dir.resolve()
        for host, d in self.host_dirs.items():
            if d.resolve() == resolved_local:
                raise ValueError(
                    f"host {host!r} work dir collides with the dispatcher "
                    f"work dir {self.work_dir}; copy-back needs them distinct"
                )
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.seed = seed
        self.pushes = 0
        self.pulls = 0
        self.skipped_pushes = 0
        self.retry_count = 0
        self.failures = 0
        self.blackholed: set[str] = set()
        self.events: list[str] = []
        self._dropped_events = 0
        #: (host, name) -> digest of the bytes last successfully staged,
        #: so an unchanged spec is pushed once per host, not per attempt.
        self._staged: dict[tuple[str, str], str] = {}
        self._armed: list[dict] = []

    # -- fault hooks ----------------------------------------------------

    def arm(self, faults: list[TransportFault]) -> None:
        """Install transport faults; each keeps its own match counter."""
        for f in faults:
            if f.host is not None and f.host not in self.host_dirs:
                raise ValueError(
                    f"transport fault targets unknown host {f.host!r}; "
                    f"hosts are {sorted(self.host_dirs)}"
                )
            self._armed.append({"fault": f, "seen": 0})

    def _next_fault(self, host: str, op: str, name: str):
        """Advance match counters; return the fault firing now, if any."""
        fired = None
        for slot in self._armed:
            fault: TransportFault = slot["fault"]
            if not fault.matches(host, op, name):
                continue
            slot["seen"] += 1
            live = fault.first <= slot["seen"] and (
                fault.count is None
                or slot["seen"] < fault.first + fault.count
            )
            if live and fired is None:
                fired = fault
        return fired

    # -- byte movement (override point for scp/rsync subclasses) -------

    def _read_remote(self, host: str, path: Path) -> bytes:
        return path.read_bytes()

    def _write_remote(self, host: str, path: Path, data: bytes) -> None:
        path.write_bytes(data)

    # -- accounting -----------------------------------------------------

    def _event(self, message: str) -> None:
        if len(self.events) >= _EVENT_CAP:
            del self.events[0]
            self._dropped_events += 1
        self.events.append(message)

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "pushes": self.pushes,
            "pulls": self.pulls,
            "skipped_pushes": self.skipped_pushes,
            "retries": self.retry_count,
            "failures": self.failures,
            "blackholed": sorted(self.blackholed),
        }

    # -- transfer core --------------------------------------------------

    def _backoff(self, host: str, name: str, attempt: int) -> float:
        if self.backoff_base <= 0:
            return 0.0
        rng = random.Random(f"{self.seed}:{host}:{name}:{attempt}")
        raw = self.backoff_base * (2 ** (attempt - 1))
        return min(self.backoff_max, raw + rng.uniform(0, self.backoff_base))

    def _transfer_once(
        self, host: str, op: str, name: str, src: Path, dst: Path
    ) -> str:
        """One transfer attempt: ``"ok"``/``"absent"``, or raise."""
        if host in self.blackholed:
            raise TransportError(f"host {host!r} is blackholed")
        fault = self._next_fault(host, op, name)
        if fault is not None:
            if fault.kind == "blackhole":
                self.blackholed.add(host)
                raise TransportError(
                    f"host {host!r} blackholed (injected)"
                )
            if fault.kind == "drop":
                raise TransportError(
                    f"{op} of {name!r} to/from {host!r} dropped (injected)"
                )
        started = time.monotonic()
        if fault is not None and fault.kind == "delay":
            # Cap the injected stall just past the deadline: the point is
            # to trip the timeout check, not to wedge the test suite.
            time.sleep(min(fault.delay_s, self.timeout + 0.05))
        try:
            if op == "pull":
                data = self._read_remote(host, src)
            else:
                data = src.read_bytes()
        except FileNotFoundError:
            return "absent"
        digest = hashlib.sha256(data).hexdigest()
        payload = data
        if fault is not None:
            if fault.kind == "truncate":
                payload = data[: len(data) // 2]
            elif fault.kind == "corrupt":
                payload = bytes(b ^ 0xFF for b in data[:64]) + data[64:]
        dst.parent.mkdir(parents=True, exist_ok=True)
        tmp = dst.with_name(f"{dst.name}.tmp.{os.getpid()}")
        try:
            if op == "pull":
                tmp.write_bytes(payload)
                landed = tmp.read_bytes()
            else:
                self._write_remote(host, tmp, payload)
                landed = self._read_remote(host, tmp)
            if hashlib.sha256(landed).hexdigest() != digest:
                raise TransportError(
                    f"{op} of {name!r} ({host!r}): digest mismatch on "
                    f"landed bytes"
                )
            if time.monotonic() - started > self.timeout:
                raise TransportError(
                    f"{op} of {name!r} ({host!r}) exceeded the "
                    f"{self.timeout:.1f}s transfer timeout"
                )
            os.replace(tmp, dst)
        except TransportError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise TransportError(
                f"{op} of {name!r} ({host!r}) failed: {exc}"
            ) from exc
        if op == "pull":
            self.pulls += 1
        else:
            self.pushes += 1
            self._staged[(host, name)] = digest
        return "ok"

    def _transfer(
        self, host: str, op: str, name: str, src: Path, dst: Path
    ) -> bool:
        """Run one transfer with retries; ``False`` only on real failure."""
        last: TransportError | None = None
        for attempt in range(1, self.retries + 2):
            if attempt > 1:
                self.retry_count += 1
                delay = self._backoff(host, name, attempt)
                if delay > 0:
                    time.sleep(delay)
            try:
                self._transfer_once(host, op, name, src, dst)
                return True
            except TransportError as exc:
                last = exc
                if host in self.blackholed:
                    break  # retrying a blackholed host is pointless
        self.failures += 1
        self._event(str(last))
        return False

    # -- public API -----------------------------------------------------

    def worker_path(self, host: str, name: str) -> Path:
        """Where *host*'s worker reads/writes *name* (its own work dir)."""
        try:
            return self.host_dirs[host] / name
        except KeyError:
            raise KeyError(
                f"unknown host {host!r}; transport hosts are "
                f"{sorted(self.host_dirs)}"
            ) from None

    def stage_out(self, host: str, name: str) -> bool:
        """Copy ``work_dir/name`` out to *host*; ``False`` on failure.

        A repeat push of unchanged bytes is skipped (the spec is staged
        once per host, not once per shard attempt); a changed source --
        a fresher resume checkpoint -- is re-pushed.
        """
        src = self.work_dir / name
        dst = self.worker_path(host, name)
        try:
            digest = hashlib.sha256(src.read_bytes()).hexdigest()
        except OSError:
            digest = None
        if digest is not None and self._staged.get((host, name)) == digest:
            self.skipped_pushes += 1
            return True
        return self._transfer(host, "push", name, src, dst)

    def pull(self, host: str, name: str) -> bool:
        """Copy ``name`` back from *host*; ``False`` on failure.

        A file the worker has not written (yet) is not a failure: the
        local copy is left untouched and the dispatcher's usual
        absent-file handling applies.
        """
        src = self.worker_path(host, name)
        dst = self.work_dir / name
        return self._transfer(host, "pull", name, src, dst)

    def remove(self, host: str, name: str) -> None:
        """Best-effort removal of *name* locally and on *host*."""
        for path in (self.work_dir / name, self.worker_path(host, name)):
            try:
                path.unlink()
            except OSError:
                pass
        self._staged.pop((host, name), None)
