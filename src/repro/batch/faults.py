"""Deterministic fault injection for dispatched campaign workers.

The dispatcher's recovery paths (relaunch-from-checkpoint, heartbeat
liveness kills, straggler splitting) are only trustworthy if every one of
them is driven by a *deterministic* test rather than hope.  This module
is that harness:

* :class:`FaultPlan` is a declarative list of :class:`Fault` entries --
  "kill shard 2 after 5 cells on attempt 1", "hang shard 0 forever",
  "drop heartbeats", "corrupt the output JSON", "exit nonzero" -- built
  by a test and handed to :class:`repro.batch.dispatch.CampaignDispatcher`.
* The dispatcher serialises the entries that apply to one (shard,
  attempt) into the :data:`FAULT_ENV` environment variable of that shard
  subprocess.
* Inside the worker, :class:`WorkerFaults` (armed by
  :meth:`WorkerFaults.from_env` at the top of ``Campaign.run``) clips
  consume batches so faults land exactly on cell boundaries and then
  fires them: ``SIGKILL`` itself, hang forever (heartbeats keep
  beating, so the dispatcher must classify *stalled*), stop heartbeats
  and hang (the dispatcher must classify *dead*), or ``os._exit``.
  ``corrupt_output`` is consulted by the CLI at final-save time and
  replaces the result JSON with a truncated payload, exercising the
  crash-consistent read paths.

Faults only ever exist where a test put them: no plan in the
environment means every hook is a no-op.

:class:`TransportFault` entries extend the same plan to the *transfer*
layer: drop, delay, truncate, or corrupt one copy-back, or blackhole a
host outright.  They never travel through the environment -- the
dispatcher arms them directly on its
:class:`repro.batch.transport.CopyBackTransport`, which consults them on
every transfer attempt.
"""

from __future__ import annotations

import fnmatch
import json
import os
import signal
import time
from dataclasses import dataclass

__all__ = [
    "FAULT_ENV",
    "Fault",
    "FaultPlan",
    "TransportFault",
    "TRANSPORT_KINDS",
    "WorkerFaults",
]

#: Environment variable carrying the JSON-encoded fault list for one
#: worker attempt.
FAULT_ENV = "REPRO_FAULT_PLAN"

#: Fault kinds that trigger at a cell boundary inside ``consume``.
_CELL_KINDS = frozenset({"kill", "hang", "drop_heartbeats", "exit"})
#: All valid fault kinds.
KINDS = _CELL_KINDS | {"corrupt_output"}

#: Payload written in place of the result JSON by ``corrupt_output`` --
#: deliberately truncated mid-object so every loader sees damage.
CORRUPT_PAYLOAD = '{"spec": {"grid": {"utilization": [0.1, '

#: Fault kinds applied to individual copy-back transfers (or, for
#: ``blackhole``, to every later transfer touching one host).
TRANSPORT_KINDS = frozenset(
    {"drop", "delay", "truncate", "corrupt", "blackhole"}
)
#: Transfer directions a transport fault can be scoped to.
TRANSPORT_OPS = frozenset({"push", "pull", "any"})


@dataclass(frozen=True)
class Fault:
    """One injected failure: *kind* fires on *shard* at cell *at_cell*.

    ``attempt`` scopes the fault to one launch attempt (1-based);
    ``None`` fires on every attempt, which is how a test makes a shard
    permanently sick and drives the dispatcher to ``max_attempts``.
    """

    shard: int
    kind: str
    at_cell: int = 0
    attempt: int | None = 1
    exit_code: int = 3

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(KINDS)}"
            )
        if self.shard < 0:
            raise ValueError("fault shard must be >= 0")
        if self.at_cell < 0:
            raise ValueError("fault at_cell must be >= 0")
        if self.attempt is not None and self.attempt < 1:
            raise ValueError("fault attempt is 1-based (or None for all)")


@dataclass(frozen=True)
class TransportFault:
    """One injected transfer failure on the copy-back transport.

    ``host``/``op``/``name`` select which transfers the fault watches
    (``None`` host means any host; ``name`` is an ``fnmatch`` glob on the
    transferred file name).  Among the matching transfer *attempts* --
    retries count -- the fault fires on the ``first``-th (1-based) and on
    the following ``count - 1``; ``count=None`` fires forever once
    reached.  ``blackhole`` additionally poisons the host: every later
    transfer touching it fails fast until the end of the dispatch, which
    is how a test makes a whole machine drop off the network mid-run.
    """

    kind: str
    host: str | None = None
    op: str = "any"
    name: str = "*"
    first: int = 1
    count: int | None = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport fault kind {self.kind!r}; expected "
                f"one of {sorted(TRANSPORT_KINDS)}"
            )
        if self.op not in TRANSPORT_OPS:
            raise ValueError(
                f"transport fault op must be one of "
                f"{sorted(TRANSPORT_OPS)}, got {self.op!r}"
            )
        if self.first < 1:
            raise ValueError("transport fault first is 1-based")
        if self.count is not None and self.count < 1:
            raise ValueError(
                "transport fault count must be >= 1 (or None for forever)"
            )
        if self.delay_s < 0:
            raise ValueError("transport fault delay_s must be >= 0")

    def matches(self, host: str, op: str, name: str) -> bool:
        """Whether this fault watches the given transfer."""
        if self.host is not None and self.host != host:
            return False
        if self.op != "any" and self.op != op:
            return False
        return fnmatch.fnmatch(name, self.name)


class FaultPlan:
    """A declarative set of faults a dispatcher delivers to its workers.

    Accepts a mixed list of :class:`Fault` (worker-side) and
    :class:`TransportFault` (transfer-side) entries; dicts are coerced by
    their ``kind``.
    """

    def __init__(
        self,
        faults: list[Fault | TransportFault] | tuple = (),
    ):
        self.faults: list[Fault] = []
        self.transport_faults: list[TransportFault] = []
        for f in faults:
            if isinstance(f, dict):
                f = (
                    TransportFault(**f)
                    if f.get("kind") in TRANSPORT_KINDS
                    else Fault(**f)
                )
            if isinstance(f, TransportFault):
                self.transport_faults.append(f)
            elif isinstance(f, Fault):
                self.faults.append(f)
            else:
                raise TypeError(
                    f"FaultPlan entries must be Fault, TransportFault, or "
                    f"dict, got {type(f).__name__}"
                )

    def for_transport(self) -> list[TransportFault]:
        """The transfer-side entries, for ``Transport.arm``."""
        return list(self.transport_faults)

    def for_worker(self, shard: int, attempt: int) -> str | None:
        """JSON for ``FAULT_ENV``, or ``None`` when no fault applies."""
        hits = [
            {
                "kind": f.kind,
                "at_cell": f.at_cell,
                "exit_code": f.exit_code,
            }
            for f in self.faults
            if f.shard == shard
            and (f.attempt is None or f.attempt == attempt)
        ]
        if not hits:
            return None
        return json.dumps(hits)


class WorkerFaults:
    """Worker-side arming of the faults delivered through the env."""

    def __init__(self, entries: list[dict]):
        self._cell_faults = sorted(
            (e for e in entries if e["kind"] in _CELL_KINDS),
            key=lambda e: e["at_cell"],
        )
        self._corrupt = any(
            e["kind"] == "corrupt_output" for e in entries
        )

    @classmethod
    def from_env(cls) -> WorkerFaults | None:
        """Parse :data:`FAULT_ENV`; a harness bug should fail loudly."""
        raw = os.environ.get(FAULT_ENV)
        if not raw:
            return None
        entries = json.loads(raw)
        if not isinstance(entries, list):
            raise ValueError(f"{FAULT_ENV} must hold a JSON list")
        for entry in entries:
            if entry.get("kind") not in KINDS:
                raise ValueError(
                    f"{FAULT_ENV} holds an unknown fault kind: {entry!r}"
                )
        return cls(entries)

    def next_trigger(self) -> int | None:
        """Cell count at which the earliest unfired cell fault lands."""
        if not self._cell_faults:
            return None
        return self._cell_faults[0]["at_cell"]

    def clip(self, part: list, consumed: int) -> list:
        """Truncate a consume batch so the fault hits its exact boundary.

        ``consume`` accounts whole chains (or chunks) at a time; without
        clipping, "kill at cell 5" would land wherever the batch edge
        happens to fall.  The dropped tail is irrelevant -- the process
        dies or hangs at the boundary anyway.
        """
        trigger = self.next_trigger()
        if trigger is None or consumed + len(part) <= trigger:
            return part
        return part[: max(0, trigger - consumed)]

    def fire(self, consumed: int, heartbeat=None) -> None:
        """Fire every armed cell fault whose boundary has been reached."""
        while self._cell_faults and consumed >= self._cell_faults[0]["at_cell"]:
            fault = self._cell_faults.pop(0)
            kind = fault["kind"]
            if kind == "kill":
                os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))
            elif kind == "exit":
                os._exit(int(fault["exit_code"]))
            elif kind == "drop_heartbeats":
                if heartbeat is not None:
                    heartbeat.drop()
                self._hang()
            elif kind == "hang":
                # The heartbeat thread keeps beating with a frozen cell
                # counter: the dispatcher must see *stalled*, not *dead*.
                self._hang()

    @staticmethod
    def _hang() -> None:
        while True:  # pragma: no cover - only ever killed externally
            time.sleep(3600)

    def corrupts_output(self) -> bool:
        """Whether the final result JSON should be replaced with garbage."""
        return self._corrupt
