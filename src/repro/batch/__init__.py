"""Parallel campaign engine for large-scale schedulability experiments.

The paper's evaluation is a set of *campaigns*: generate many random
transaction systems, analyze each with several methods (exact, reduced,
holistic variants, classical special cases) and aggregate acceptance
ratios and iteration counts.  This sub-package turns the per-benchmark
ad-hoc loops into one engine:

* :mod:`repro.batch.methods` -- a registry of named analysis methods
  mapping a :class:`~repro.model.system.TransactionSystem` to a
  structured :class:`~repro.batch.methods.MethodOutcome`;
* :mod:`repro.batch.campaign` -- the :class:`~repro.batch.campaign.Campaign`
  driver: a system generator, a parameter grid and a method list are
  expanded into a cross-product of *cells*, executed serially or on a
  :class:`concurrent.futures.ProcessPoolExecutor` with deterministic
  per-cell seeds, chunked dispatch and warm-start chaining along the
  sweep axis.  Results come back as ``CellResult``/``CampaignResult``
  dataclasses with JSON/CSV export.

Campaigns scale past one machine by sharding at chain granularity
(``run(shard=(k, n))`` / ``--shard k/n``; union is bit-identical to the
single run), merge back with :func:`merge_campaign_results`
(``python -m repro campaign-merge``), resume partially completed chains
from their longest finished sweep prefix, and optionally collect worker
results through a ``multiprocessing.shared_memory`` ring
(``collect="shm"``).  :mod:`repro.batch.dispatch` drives a whole sharded
deployment unattended: over-partitioned shards on a work-stealing queue
of subprocess slots, cost-aware ``lpt`` partitions fed by the
``chain_costs`` every result records, fault-tolerant relaunch-with-resume
and streaming auto-merge (``python -m repro campaign-dispatch``) --
hardened by heartbeat liveness (progressing/stalled/dead), deterministic
retry backoff, wall-clock budgets, elastic straggler splitting, and the
:mod:`repro.batch.faults` injection harness that drills every one of
those recovery paths in tests.  :mod:`repro.batch.transport` moves shard
artifacts between the dispatcher and per-host work directories
(:class:`~repro.batch.transport.SharedDirTransport` for a shared
filesystem, :class:`~repro.batch.transport.CopyBackTransport` for
copy-in/copy-back with digest verification), and host-level failure
domains quarantine machines whose shards keep dying so their work is
rescheduled instead of retried into a black hole.

Cross-run reuse comes from the content-addressed result store:
:mod:`repro.batch.canonical` hashes analysis inputs (system content,
campaign execution context, analysis config) into stable identities, and
:mod:`repro.batch.store` persists solved cells under those identities, so
``Campaign.run(store=...)`` / ``--store DIR`` serves already-solved cells
from disk -- bit-identically to solving them -- and only pays for what no
previous run covered.

The CLI front end is ``python -m repro campaign``.
"""

from repro.batch.methods import (
    MethodInfo,
    MethodOutcome,
    available_methods,
    holistic_method,
    register_method,
    reseed_jitters,
    resolve_method,
)
from repro.batch.canonical import (
    analysis_config_hash,
    campaign_config_hash,
    canonical_json,
    content_hash,
    spec_hash,
    system_hash,
)
from repro.batch.store import ResultStore, StoreGcStats, StoreKey, StoreStats
from repro.batch.faults import Fault, FaultPlan, TransportFault
from repro.batch.transport import (
    CopyBackTransport,
    SharedDirTransport,
    TransportError,
)
from repro.batch.campaign import (
    Campaign,
    CampaignResult,
    CampaignSpec,
    CellResult,
    StreamingMerger,
    available_generators,
    chain_cost_estimates,
    linspace_levels,
    load_cost_manifest,
    lpt_shard_chains,
    merge_campaign_results,
    parse_shard,
    partition_chains,
    register_generator,
    run_campaign,
    shard_chains,
    store_reachable_digests,
)
from repro.batch.dispatch import (
    CampaignDispatcher,
    DispatchError,
    DispatchInterrupted,
    DispatchReport,
    HostHealth,
    HostState,
    LocalBackend,
    SshBackend,
)

__all__ = [
    "Campaign",
    "CampaignDispatcher",
    "CampaignResult",
    "CampaignSpec",
    "CellResult",
    "CopyBackTransport",
    "DispatchError",
    "DispatchInterrupted",
    "DispatchReport",
    "Fault",
    "FaultPlan",
    "HostHealth",
    "HostState",
    "LocalBackend",
    "MethodInfo",
    "MethodOutcome",
    "ResultStore",
    "SharedDirTransport",
    "SshBackend",
    "StoreGcStats",
    "StoreKey",
    "StoreStats",
    "StreamingMerger",
    "TransportError",
    "TransportFault",
    "analysis_config_hash",
    "available_generators",
    "available_methods",
    "campaign_config_hash",
    "canonical_json",
    "chain_cost_estimates",
    "content_hash",
    "holistic_method",
    "linspace_levels",
    "load_cost_manifest",
    "lpt_shard_chains",
    "merge_campaign_results",
    "parse_shard",
    "partition_chains",
    "register_generator",
    "register_method",
    "reseed_jitters",
    "resolve_method",
    "run_campaign",
    "shard_chains",
    "spec_hash",
    "store_reachable_digests",
    "system_hash",
]
