"""Canonical JSON and content hashes for systems, specs and configs.

The content-addressed result store (:mod:`repro.batch.store`) and the
planned analysis service both need one answer to "is this the same
analysis input?" that survives process boundaries, JSON round trips and
dict insertion order.  This module provides it:

* :func:`canonical_json` -- a deterministic JSON encoding: object keys
  sorted, no whitespace, floats via their shortest round-trip ``repr``
  (so ``0.3`` never re-encodes as ``0.30000000000000004``), NaN/infinity
  rejected (they have no interoperable JSON form and would silently
  break key equality);
* :func:`content_hash` -- SHA-256 of the canonical encoding;
* :func:`system_hash` -- the hash of a
  :class:`~repro.model.system.TransactionSystem`'s *analysis-relevant*
  content.  Cosmetic fields (names, ``meta``) are excluded, and so are
  the derived offset/jitter fields of non-first tasks: the holistic
  analysis manages those in place (they equal best-case response times
  of predecessors and are recomputed from scratch every run), so two
  systems that differ only in derived state are the same analysis input
  -- which is exactly what makes the hash stable across "generated
  fresh" vs "already analyzed" vs "scaled from an analyzed base";
* :func:`spec_hash` / :func:`campaign_config_hash` /
  :func:`analysis_config_hash` -- hashes of campaign and analysis
  configuration.  The campaign cell config deliberately folds in the
  full ordered method tuple and the sweep ladder: per-cell accounting
  (warm-start usage, phase-cache hits, bisection provenance) depends on
  both, so only cells produced under the identical execution context
  may be served interchangeably.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

from repro.io.spec import _platform_to_dict
from repro.model.system import TransactionSystem

__all__ = [
    "analysis_config_hash",
    "campaign_config_hash",
    "canonical_json",
    "content_hash",
    "spec_hash",
    "system_hash",
]

#: Bump when the canonical encodings below change shape; stored entries
#: keyed under an older version then simply stop matching (a cache miss,
#: never a wrong hit).
CANONICAL_VERSION = 1


def _write_canonical(obj: Any, out: list[str]) -> None:
    if obj is None:
        out.append("null")
    elif obj is True:
        out.append("true")
    elif obj is False:
        out.append("false")
    elif isinstance(obj, int):
        out.append(str(obj))
    elif isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(
                f"canonical JSON cannot encode non-finite float {obj!r}"
            )
        # Demote subclasses: NumPy's float64 *is* a float but reprs as
        # "np.float64(...)"; the value is bit-identical either way.
        obj = float(obj)
        if obj == 0.0:
            obj = 0.0  # collapse -0.0 (== 0.0, but repr differs)
        out.append(repr(obj))
    elif isinstance(obj, str):
        out.append(json.dumps(obj, ensure_ascii=True))
    elif isinstance(obj, (list, tuple)):
        out.append("[")
        for i, v in enumerate(obj):
            if i:
                out.append(",")
            _write_canonical(v, out)
        out.append("]")
    elif isinstance(obj, dict):
        out.append("{")
        for i, k in enumerate(sorted(obj)):
            if not isinstance(k, str):
                raise TypeError(
                    f"canonical JSON requires string keys, got {k!r}"
                )
            if i:
                out.append(",")
            out.append(json.dumps(k, ensure_ascii=True))
            out.append(":")
            _write_canonical(obj[k], out)
        out.append("}")
    else:
        item = getattr(obj, "item", None)
        if callable(item):  # NumPy scalars, without importing NumPy
            _write_canonical(item(), out)
        else:
            raise TypeError(
                f"canonical JSON cannot encode {type(obj).__name__}: {obj!r}"
            )


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact, round-trip float reprs.

    Raises :class:`ValueError` on NaN/infinity and :class:`TypeError` on
    non-JSON types or non-string dict keys -- ambiguity is a bug here,
    not something to paper over.
    """
    out: list[str] = []
    _write_canonical(obj, out)
    return "".join(out)


def content_hash(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` of *obj*."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def system_content(system: TransactionSystem) -> dict:
    """The analysis-relevant content of *system*, canonically shaped.

    Excluded on purpose: every ``name``/``meta`` field (cosmetic), and
    the offset/jitter of non-first tasks -- those are *derived* state the
    dynamic-offset analysis overwrites (offset = predecessor best-case
    response, jitter from Eq. 18) before using them, so they carry no
    information about the analysis input.  The first task's offset and
    jitter are genuine inputs and stay in.
    """
    platforms = []
    for p in system.platforms:
        entry = _platform_to_dict(p)
        entry.pop("name", None)
        platforms.append(entry)
    transactions = []
    for tr in system.transactions:
        tasks = []
        for j, t in enumerate(tr.tasks):
            task_entry: dict[str, Any] = {
                "wcet": t.wcet,
                "bcet": t.bcet,
                "platform": t.platform,
                "priority": t.priority,
                "blocking": t.blocking,
            }
            if j == 0:
                task_entry["offset"] = t.offset
                task_entry["jitter"] = t.jitter
            tasks.append(task_entry)
        transactions.append(
            {"period": tr.period, "deadline": tr.deadline, "tasks": tasks}
        )
    return {
        "kind": "system",
        "version": CANONICAL_VERSION,
        "platforms": platforms,
        "transactions": transactions,
    }


def system_hash(system: TransactionSystem) -> str:
    """Content hash of a transaction system (see :func:`system_content`)."""
    return content_hash(system_content(system))


def spec_hash(spec: Any) -> str:
    """Content hash of a :class:`~repro.batch.campaign.CampaignSpec`.

    Accepts the spec object or its ``to_dict()`` form; both hash
    identically (``to_dict`` is the canonical shape).
    """
    data = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
    return content_hash(
        {"kind": "campaign-spec", "version": CANONICAL_VERSION, "spec": data}
    )


def campaign_config_hash(spec: Any) -> str:
    """Execution-context hash of one campaign cell.

    Everything that shapes a cell's *accounting* beyond the generated
    system itself: the full ordered method tuple (methods of one sweep
    step share a phase cache, so a cell's hit/miss counts depend on its
    neighbors), warm-start chaining, and the sweep ladder (a warm-started
    cell's iteration counts depend on the levels below it; a pruned
    chain's inferred provenance depends on the whole ladder).  Cells may
    only be served across runs whose context hashes match -- the
    precondition for the store's bit-identical-rerun guarantee.
    """
    levels = [
        v.item() if callable(getattr(v, "item", None)) else v
        for v in spec.sweep_values()
    ]
    return content_hash(
        {
            "kind": "campaign-cell",
            "version": CANONICAL_VERSION,
            "methods": list(spec.methods),
            "warm_start": bool(spec.warm_start),
            "sweep_axis": spec.sweep_axis,
            "levels": levels,
        }
    )


def analysis_config_hash(config: Any) -> str:
    """Content hash of an :class:`~repro.analysis.AnalysisConfig`."""
    from dataclasses import asdict

    return content_hash(
        {
            "kind": "analysis-config",
            "version": CANONICAL_VERSION,
            "config": asdict(config),
        }
    )
