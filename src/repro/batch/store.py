"""Persistent content-addressed result store for analysis outcomes.

A :class:`ResultStore` memoizes solved analysis cells across processes
and runs: entries are keyed by :class:`StoreKey` -- the content hashes
of the analyzed system and of the execution context
(:func:`~repro.batch.canonical.campaign_config_hash` for campaign
cells, :func:`~repro.batch.canonical.analysis_config_hash` for one-shot
``analyze`` calls), plus the sweep level and method name.  Identical
inputs under an identical context hash to the same key, so a second
campaign over overlapping cells -- a rerun, a replicate extension, a
re-dispatch -- serves those cells from disk instead of solving them.

The backend is a directory of JSON files, chosen over sqlite on
purpose: dispatch shards are independent processes (possibly on
independent hosts sharing a network filesystem), and a
file-per-entry layout needs no cross-process locking -- writes are
atomic ``os.replace`` renames of fsynced temp files, concurrent writers
of the same key converge on identical content, and a reader never
observes a torn entry.  Layout::

    root/<digest[:2]>/<digest>.json

where ``digest`` is the SHA-256 of the key's canonical JSON identity
(two-level fan-out keeps directories small at millions of entries).
Each file stores the key identity alongside the value; ``get`` verifies
the echoed identity so a hash collision or a file corrupted into valid
JSON reads as a miss, never as a wrong hit.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.batch.canonical import canonical_json

__all__ = ["ResultStore", "StoreGcStats", "StoreKey", "StoreStats"]


@dataclass(frozen=True)
class StoreKey:
    """Identity of one stored analysis outcome.

    ``level`` is the sweep value the cell was solved at (``None`` for
    unswept contexts such as one-shot ``analyze`` calls); ``method`` the
    registry name of the analysis method.
    """

    system_hash: str
    config_hash: str
    level: float | int | None
    method: str

    def identity(self) -> str:
        """Canonical JSON identity (the collision-checked stored form)."""
        return canonical_json(
            {
                "system": self.system_hash,
                "config": self.config_hash,
                "level": self.level,
                "method": self.method,
            }
        )

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`identity` (the file name)."""
        return hashlib.sha256(self.identity().encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Entry count and total payload bytes of a store directory."""

    entries: int
    bytes: int


@dataclass(frozen=True)
class StoreGcStats:
    """Outcome of one :meth:`ResultStore.gc` sweep."""

    removed: int
    kept: int
    bytes_freed: int
    #: Orphaned ``*.tmp.*`` files swept (crashed writers' leftovers).
    tmp_removed: int = 0


#: Age-histogram bucket upper bounds in seconds (the last is open).
_AGE_BUCKETS: tuple[tuple[str, float], ...] = (
    ("<=1h", 3600.0),
    ("<=1d", 86400.0),
    ("<=7d", 604800.0),
    (">7d", float("inf")),
)

#: Orphaned temp files older than this are swept by ``gc`` regardless of
#: the pruning criteria: a live writer renames its temp within seconds,
#: so a day-old one can only be a crashed writer's leftover.
_TMP_ORPHAN_AGE_S = 86400.0


class ResultStore:
    """Directory-of-JSON content-addressed store (see module docstring).

    ``get`` is defensive: unreadable, unparsable or identity-mismatched
    files read as misses (the cell is then simply re-solved).  ``put``
    is put-if-absent -- entries are immutable once written, matching the
    content-addressed contract -- and raises :class:`OSError` if the
    store root is not writable, because silently running uncached would
    hide a misconfiguration.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, key: StoreKey) -> Path:
        digest = key.digest()
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, key: StoreKey) -> dict[str, Any] | None:
        """The stored value for *key*, or ``None`` on any kind of miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("identity") != key.identity():
            return None
        value = payload.get("value")
        return value if isinstance(value, dict) else None

    def put(self, key: StoreKey, value: dict[str, Any]) -> bool:
        """Store *value* under *key* unless present; ``True`` if written.

        The write is kill-safe: the payload is fsynced to a
        pid-suffixed temp file, then renamed into place, so a crash
        leaves either the complete entry or nothing -- never a torn
        file a later ``get`` could misread.
        """
        path = self._path(key)
        if path.exists():
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        # Non-strict dumps on purpose: cell metrics may hold NaN (e.g. a
        # diverged max_wcrt_ratio), which round-trips through Python's
        # JSON just like it does in the campaign result files.
        encoded = json.dumps({"identity": key.identity(), "value": value})
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return True

    def stats(self) -> StoreStats:
        """Walk the store and count entries and payload bytes."""
        entries = 0
        size = 0
        for _path, stat in self.iter_entries():
            size += stat.st_size
            entries += 1
        return StoreStats(entries=entries, bytes=size)

    def iter_entries(self):
        """Yield ``(path, stat_result)`` for every readable entry file."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("??/*.json")):
            try:
                yield path, path.stat()
            except OSError:
                continue

    def age_histogram(self, now: float | None = None) -> list[tuple[str, int]]:
        """Entry counts per age bucket (mtime-based, oldest bucket last)."""
        import time as _time

        if now is None:
            now = _time.time()
        counts = [0] * len(_AGE_BUCKETS)
        for _path, stat in self.iter_entries():
            age = max(0.0, now - stat.st_mtime)
            for i, (_label, bound) in enumerate(_AGE_BUCKETS):
                if age <= bound:
                    counts[i] += 1
                    break
        return [
            (label, counts[i])
            for i, (label, _bound) in enumerate(_AGE_BUCKETS)
        ]

    def gc(
        self,
        *,
        older_than_s: float | None = None,
        keep_digests: set[str] | None = None,
        dry_run: bool = False,
        now: float | None = None,
    ) -> StoreGcStats:
        """Prune entries by age and/or reachability.

        An entry is removed only when *every* given criterion condemns
        it: older than ``older_than_s`` seconds (mtime), and/or its
        digest absent from ``keep_digests`` (the reachable set of a
        spec) -- intersection, so combining criteria is always the more
        conservative sweep.  With neither criterion the sweep removes
        nothing (refusing to interpret "no criteria" as "everything").
        Orphaned ``*.tmp.*`` files from crashed writers are swept once
        they are a day old, independent of the criteria.  ``dry_run``
        counts without deleting.
        """
        import time as _time

        if now is None:
            now = _time.time()
        removed = kept = freed = tmp_removed = 0
        for path, stat in self.iter_entries():
            condemned = older_than_s is not None or keep_digests is not None
            if older_than_s is not None and now - stat.st_mtime <= older_than_s:
                condemned = False
            if keep_digests is not None and path.stem in keep_digests:
                condemned = False
            if not condemned:
                kept += 1
                continue
            removed += 1
            freed += stat.st_size
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    removed -= 1
                    freed -= stat.st_size
                    kept += 1
        if self.root.is_dir():
            for tmp in self.root.glob("??/*.json.tmp.*"):
                try:
                    if now - tmp.stat().st_mtime <= _TMP_ORPHAN_AGE_S:
                        continue
                    if not dry_run:
                        tmp.unlink()
                    tmp_removed += 1
                except OSError:
                    continue
            if not dry_run:
                # Fan-out dirs emptied by the sweep are noise; drop them.
                for fan in self.root.glob("??"):
                    try:
                        fan.rmdir()
                    except OSError:
                        pass
        return StoreGcStats(
            removed=removed,
            kept=kept,
            bytes_freed=freed,
            tmp_removed=tmp_removed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r})"
