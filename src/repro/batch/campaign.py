"""The campaign driver: grids, chunked parallel dispatch, structured results.

A campaign is the cross-product of

* a *generator* (named in :data:`GENERATORS`) drawing one transaction
  system from ``(params, seed)``,
* a parameter *grid* (axis name -> value list) over the generator params,
* a list of *methods* (named in :mod:`repro.batch.methods`), and
* ``systems_per_cell`` replicates with deterministic per-cell seeds.

Execution model
---------------
Cells are grouped into *chains*: one chain holds all values of the sweep
axis for a fixed (grid point, replicate).  The chain is the unit of
sequential execution because consecutive sweep cells share their random
seed -- the generators scale monotonically along the sweep (UUniFast draws
are scale-invariant in the total utilization), so the converged jitter
vector of cell *k* is a valid warm start for cell *k+1* (it lies below the
new least fixed point, hence the outer iteration converges to the same
fixed point in fewer rounds).  Chains are chunked and dispatched to a
``ProcessPoolExecutor``; per-cell seeds derive from
``numpy.random.SeedSequence`` so results are identical for any worker
count, and cells are re-sorted into canonical order on collection.

Chains of *verdict-monotone* methods (``verdict`` -- see
:mod:`repro.batch.methods`) exploit the same scaling monotonicity the
warm starts rest on: a level that misses its deadline implies every
higher level does too, so the chain bisects the sweep for the threshold
level and emits the remaining cells with *inferred* verdicts
(``verdict_inferred``/``from_level`` provenance extras) instead of
solving them -- see :func:`_run_chain_pruned`.

Distributed execution
---------------------
The chain is also the unit of *distributed* work.  ``run(shard=(k, n))``
executes only the chains a deterministic cell-seed-hash partition assigns
to shard ``k`` of ``n`` (see :func:`shard_chains`): shard assignments
depend only on the spec, every chain lands in exactly one shard, and the
union of all shard results is bit-identical to the unsharded run.
:func:`merge_campaign_results` (CLI ``python -m repro campaign-merge``)
reassembles shard JSONs into one canonical-order result, rejecting
incompatible specs and overlapping cells.  ``resume_from`` reuses the
longest fully-completed sweep *prefix* of each partial chain, re-seeding
the warm-start jitters by re-solving only the last completed level (the
converged jitter vector is the least fixed point -- start-independent --
so the resumed suffix is bit-identical to a from-scratch run for
ascending-walk chains; pruned verdict chains bisect a different level
subset on resume, so there only the *verdicts* are guaranteed
identical).  With
``collect="shm"`` pool workers write fixed-width result records into a
preallocated ``multiprocessing.shared_memory`` ring instead of
round-tripping pickled chunk lists; records that do not fit (oversized
extras, or a ring capped by ``shm_bytes``) fall back to the pickle path
cell by cell, so the collected result is identical either way.
"""

from __future__ import annotations

import csv
import heapq
import json
import math
import os
import struct
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.analysis.busy import clear_phase_cache, phase_cache_stats
from repro.batch.canonical import campaign_config_hash, system_hash
from repro.batch.faults import WorkerFaults
from repro.batch.methods import reseed_jitters, resolve_method
from repro.batch.store import ResultStore, StoreKey
from repro.gen import RandomSystemSpec, random_system
from repro.model.system import TransactionSystem
from repro.util.fixedpoint import fixed_point_stats
from repro.viz.csvout import write_csv
from repro.viz.tables import format_table

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignSpec",
    "CellResult",
    "StreamingMerger",
    "available_generators",
    "chain_cost_estimates",
    "linspace_levels",
    "load_cost_manifest",
    "lpt_shard_chains",
    "merge_campaign_results",
    "parse_shard",
    "partition_chains",
    "register_generator",
    "run_campaign",
    "shard_chains",
    "store_reachable_digests",
]

#: Decimal places of the stable grid sweep levels are rounded to.  Floats
#: like ``0.30000000000000004`` (binary accumulation noise from naive
#: ``start + k * step`` generation) collapse onto their intended decimal
#: value, so grid keys, JSON exports and CSV columns stay clean, and cells
#: from different runs of the same spec compare equal.
LEVEL_DECIMALS = 10


def linspace_levels(
    start: float, stop: float, count: int, *, decimals: int = LEVEL_DECIMALS
) -> tuple[float, ...]:
    """``count`` evenly spaced sweep levels on a stable decimal grid.

    Levels are generated from integer steps and rounded to ``decimals``
    places -- the float-drift-free way to build a sweep axis.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    if count == 1:
        return (round(float(start), decimals),)
    step = (float(stop) - float(start)) / (count - 1)
    return tuple(
        round(float(start) + k * step, decimals) for k in range(count)
    )


# --------------------------------------------------------------------------
# Generator registry
# --------------------------------------------------------------------------

GeneratorFn = Callable[[dict, int], TransactionSystem]


def _gen_random_system(params: dict, seed: int) -> TransactionSystem:
    kwargs = dict(params)
    tpt = kwargs.get("tasks_per_transaction")
    if isinstance(tpt, list):  # JSON round trips tuples as lists
        kwargs["tasks_per_transaction"] = tuple(tpt)
    return random_system(RandomSystemSpec(**kwargs), seed=seed)


def _gen_paper(params: dict, seed: int) -> TransactionSystem:
    del params, seed  # the example is fixed; grid axes select methods only
    from repro.paper import sensor_fusion_system

    return sensor_fusion_system()


GENERATORS: dict[str, GeneratorFn] = {
    "random_system": _gen_random_system,
    "paper": _gen_paper,
}

#: Optional per-generator sweep scalers:
#: ``fn(base_system, axis, base_value, new_value) -> TransactionSystem | None``.
#: When the only parameter differing along a chain is the sweep axis, the
#: chain generates its system once at the first level and derives the other
#: levels through the scaler instead of re-drawing -- ``None`` falls back to
#: full generation.  ``random_system`` scales exactly (UUniFast is linear in
#: the total utilization).
SweepScalerFn = Callable[[TransactionSystem, str, Any, Any], "TransactionSystem | None"]


def _scale_random_system(
    base: TransactionSystem, axis: str, base_value: Any, new_value: Any
) -> TransactionSystem | None:
    if axis != "utilization":
        return None
    try:
        factor = float(new_value) / float(base_value)
    except (TypeError, ZeroDivisionError):
        return None
    if factor <= 0:
        # Non-positive target utilization: fall through to the generator,
        # which reports the invalid parameter with its own message.
        return None
    from repro.gen.random_transactions import scale_system_utilization

    return scale_system_utilization(base, factor)


GENERATOR_SWEEP_SCALERS: dict[str, SweepScalerFn] = {
    "random_system": _scale_random_system,
}


def register_generator(
    name: str, fn: GeneratorFn, *, sweep_scaler: SweepScalerFn | None = None
) -> None:
    """Register (or replace) a system generator under *name*.

    With the default ``fork`` start method, generators registered before
    ``Campaign.run`` are inherited by the pool workers.  ``sweep_scaler``
    optionally derives the system at a new sweep level from the chain's
    base system (see :data:`GENERATOR_SWEEP_SCALERS`).
    """
    GENERATORS[name] = fn
    if sweep_scaler is not None:
        GENERATOR_SWEEP_SCALERS[name] = sweep_scaler
    else:
        GENERATOR_SWEEP_SCALERS.pop(name, None)


def available_generators() -> list[str]:
    """Sorted names of every registered generator."""
    return sorted(GENERATORS)


# --------------------------------------------------------------------------
# Specification and result types
# --------------------------------------------------------------------------


def _jsonify(value: Any) -> Any:
    """Tuples -> lists, recursively, so params survive a JSON round trip."""
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if isinstance(value, list):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one campaign.

    Parameters
    ----------
    grid:
        Axis name -> list of values, cross-multiplied over the generator
        params.  The sweep axis (see *sweep_axis*) is sorted ascending.
    base:
        Fixed generator params merged under every grid point.
    methods:
        Names from :mod:`repro.batch.methods`.
    systems_per_cell:
        Replicates per grid cell; each replicate has its own seed.
    seed:
        Campaign master seed.  Per-cell seeds derive deterministically from
        ``(seed, grid point index, replicate)`` -- the sweep axis is
        excluded on purpose, so every sweep level sees the *same* systems
        (paired samples, and the precondition for warm-start chaining).
    generator:
        Name from :func:`available_generators`.
    sweep_axis:
        The grid axis that forms warm-start chains; defaults to
        ``"utilization"`` when that axis is present, else no chaining.
    warm_start:
        Chain the converged jitter vector along the sweep axis into the
        next cell's analysis (methods that support it only).
    """

    grid: dict[str, tuple] = field(default_factory=dict)
    base: dict[str, Any] = field(default_factory=dict)
    methods: tuple[str, ...] = ("reduced",)
    systems_per_cell: int = 1
    seed: int = 0
    generator: str = "random_system"
    sweep_axis: str | None = None
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.systems_per_cell < 1:
            raise ValueError("systems_per_cell must be >= 1")
        if not self.methods:
            raise ValueError("at least one method is required")
        # Snap float grid values onto the stable decimal grid (see
        # LEVEL_DECIMALS) so equivalent sweeps produce identical cell keys.
        def stable(v: Any) -> Any:
            return round(v, LEVEL_DECIMALS) if isinstance(v, float) else v

        object.__setattr__(
            self,
            "grid",
            {k: tuple(stable(v) for v in vs) for k, vs in self.grid.items()},
        )
        object.__setattr__(self, "methods", tuple(self.methods))
        for axis, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {axis!r} has no values")
        sweep = self.sweep_axis
        if sweep is None and "utilization" in self.grid:
            sweep = "utilization"
        if sweep is not None and sweep not in self.grid:
            raise ValueError(f"sweep_axis {sweep!r} is not a grid axis")
        object.__setattr__(self, "sweep_axis", sweep)
        if sweep is not None:
            object.__setattr__(
                self,
                "grid",
                {
                    k: tuple(sorted(v)) if k == sweep else tuple(v)
                    for k, v in self.grid.items()
                },
            )

    # -- planning ---------------------------------------------------------

    def points(self) -> list[dict[str, Any]]:
        """Cross product of the non-sweep axes, in grid insertion order."""
        axes = [a for a in self.grid if a != self.sweep_axis]
        points: list[dict[str, Any]] = [{}]
        for axis in axes:
            points = [
                {**p, axis: v} for p in points for v in self.grid[axis]
            ]
        return points

    def sweep_values(self) -> tuple:
        return self.grid[self.sweep_axis] if self.sweep_axis else (None,)

    def n_cells(self) -> int:
        return len(self.points()) * len(self.sweep_values()) * self.systems_per_cell

    def n_analyses(self) -> int:
        return self.n_cells() * len(self.methods)

    def cell_seed(self, point_index: int, replicate: int) -> int:
        """Deterministic seed shared by every sweep level of a chain."""
        ss = np.random.SeedSequence((self.seed, point_index, replicate))
        return int(ss.generate_state(1)[0])

    def chains(self) -> list[dict]:
        """The planned chains (sequential units of execution and sharding).

        Pure spec-level planning -- requires no generator/method registry,
        so result mergers can reconstruct the canonical cell order from a
        deserialized spec alone.
        """
        chains: list[dict] = []
        for p_idx, point in enumerate(self.points()):
            for rep in range(self.systems_per_cell):
                chains.append(
                    {
                        "index": len(chains),
                        "point": point,
                        "replicate": rep,
                        "seed": self.cell_seed(p_idx, rep),
                    }
                )
        return chains

    def to_dict(self) -> dict:
        return {
            "grid": {k: _jsonify(list(v)) for k, v in self.grid.items()},
            "base": _jsonify(self.base),
            "methods": list(self.methods),
            "systems_per_cell": self.systems_per_cell,
            "seed": self.seed,
            "generator": self.generator,
            "sweep_axis": self.sweep_axis,
            "warm_start": self.warm_start,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        return cls(
            grid={k: tuple(v) for k, v in data.get("grid", {}).items()},
            base=dict(data.get("base", {})),
            methods=tuple(data.get("methods", ("reduced",))),
            systems_per_cell=int(data.get("systems_per_cell", 1)),
            seed=int(data.get("seed", 0)),
            generator=data.get("generator", "random_system"),
            sweep_axis=data.get("sweep_axis"),
            warm_start=bool(data.get("warm_start", True)),
        )


# --------------------------------------------------------------------------
# Sharding
# --------------------------------------------------------------------------

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _shard_key(seed: int) -> int:
    """SplitMix64 finalizer of a chain's cell seed.

    Decorrelates the shard partition from the raw ``SeedSequence`` output:
    chains are ranked by this key, so the partition is a property of the
    spec's seeds alone -- independent of grid insertion order, of which
    host computes it, and of how many other shards exist.
    """
    z = (seed + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``k/n`` shard designator (0-based: ``0/2``, ``1/2``)."""
    k_text, sep, n_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise ValueError(
            f"shard must look like K/N (e.g. 0/2), got {text!r}"
        ) from None
    if n < 1 or not 0 <= k < n:
        raise ValueError(
            f"shard index must satisfy 0 <= K < N, got {text!r}"
        )
    return k, n


def shard_chains(chains: Sequence[dict], shard: tuple[int, int]) -> list[dict]:
    """The chains the deterministic seed-hash partition assigns to *shard*.

    Chains are ranked by :func:`_shard_key` of their cell seed (ties broken
    by the chain index, itself a pure function of the spec) and shard ``k``
    of ``n`` takes every ``n``-th rank.  Consequences:

    * every chain belongs to exactly one shard, so concatenating all shard
      results reproduces the unsharded campaign bit for bit;
    * shard sizes are balanced within one chain of each other regardless of
      how adversarial the seed values are;
    * the assignment is computable on any host from the spec alone.

    Chains are returned in their original (canonical) execution order.
    """
    k, n = shard
    if n < 1 or not 0 <= k < n:
        raise ValueError(f"shard index must satisfy 0 <= k < n, got {k}/{n}")
    ranked = sorted(
        range(len(chains)),
        key=lambda i: (_shard_key(chains[i]["seed"]), chains[i]["index"]),
    )
    mine = set(ranked[k::n])
    return [c for i, c in enumerate(chains) if i in mine]


def chain_cost_estimates(
    spec: CampaignSpec,
    chains: Sequence[dict],
    manifest: dict[int, float] | None = None,
) -> list[float]:
    """Per-chain cost estimates driving the ``lpt`` partition.

    With a *manifest* (chain index -> recorded wall seconds, as every
    campaign result now stores under ``chain_costs``), the recorded wall
    is the cost; chains absent from the manifest (a grid/replicate
    extension) get the mean recorded cost, the neutral guess.  Without a
    manifest the estimate falls back to the size proxy ``sweep levels x
    expected tasks per system``: analysis cost grows with both, and for a
    homogeneous grid the proxy degrades LPT into plain count balancing --
    never worse than the hash partition's contract.
    """
    if manifest:
        fallback = sum(manifest.values()) / len(manifest)
        return [
            float(manifest.get(chain["index"], fallback)) for chain in chains
        ]
    levels = len(spec.sweep_values())
    out = []
    for chain in chains:
        params = {**spec.base, **chain["point"]}
        n_transactions = params.get("n_transactions", 1)
        tpt = params.get("tasks_per_transaction", 1)
        if isinstance(tpt, (list, tuple)) and tpt:
            tasks = sum(float(v) for v in tpt) / len(tpt)
        else:
            try:
                tasks = float(tpt)
            except (TypeError, ValueError):
                tasks = 1.0
        try:
            n_tasks = float(n_transactions) * tasks
        except (TypeError, ValueError):
            n_tasks = 1.0
        out.append(levels * max(n_tasks, 1.0))
    return out


def lpt_shard_chains(
    chains: Sequence[dict],
    shard: tuple[int, int],
    costs: Sequence[float],
) -> list[dict]:
    """Cost-aware longest-processing-time partition of the chains.

    Chains are taken in descending cost order (ties broken by chain
    index) and greedily assigned to the least-loaded shard (ties broken
    by shard index) -- the classic LPT makespan heuristic.  Like
    :func:`shard_chains` the assignment is a pure function of its inputs:
    every shard computing it from the same spec and cost table derives
    the same disjoint partition, so the union stays bit-identical to the
    unsharded run.  Chains are returned in canonical execution order.
    """
    k, n = shard
    if n < 1 or not 0 <= k < n:
        raise ValueError(f"shard index must satisfy 0 <= k < n, got {k}/{n}")
    if len(costs) != len(chains):
        raise ValueError(
            f"got {len(costs)} costs for {len(chains)} chains"
        )
    ranked = sorted(
        range(len(chains)), key=lambda i: (-float(costs[i]), chains[i]["index"])
    )
    heap = [(0.0, s) for s in range(n)]  # already heap-ordered
    mine: set[int] = set()
    for i in ranked:
        load, s = heapq.heappop(heap)
        if s == k:
            mine.add(i)
        heapq.heappush(heap, (load + float(costs[i]), s))
    return [c for i, c in enumerate(chains) if i in mine]


def partition_chains(
    spec: CampaignSpec,
    chains: Sequence[dict],
    shard: tuple[int, int],
    *,
    partition: str = "hash",
    cost_manifest: dict[int, float] | None = None,
) -> list[dict]:
    """The chains *shard* owns under the chosen partition strategy.

    ``"hash"`` is the seed-hash interleave of :func:`shard_chains`
    (balances chain counts); ``"lpt"`` balances estimated chain *costs*
    (:func:`chain_cost_estimates` + :func:`lpt_shard_chains`).  Both are
    deterministic functions of ``(spec, shard, cost_manifest)``, so every
    host computes the same disjoint partition.
    """
    if partition == "hash":
        return shard_chains(chains, shard)
    if partition == "lpt":
        costs = chain_cost_estimates(spec, chains, cost_manifest)
        return lpt_shard_chains(chains, shard, costs)
    raise ValueError(
        f"partition must be 'hash' or 'lpt', got {partition!r}"
    )


def load_cost_manifest(path: str | Path) -> dict[int, float]:
    """Read a chain-cost manifest for ``partition="lpt"``.

    Accepts either a campaign result JSON (its ``chain_costs`` block --
    the natural workflow: point ``--cost-manifest`` at a previous run of
    the same spec) or a bare ``{chain index: cost}`` mapping.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"cost manifest {path} is not a JSON object")
    table = data.get("chain_costs", data)
    if not isinstance(table, dict):
        raise ValueError(f"cost manifest {path} has no usable chain_costs")
    try:
        return {int(k): float(v) for k, v in table.items()}
    except (TypeError, ValueError):
        raise ValueError(
            f"cost manifest {path} must map chain indices to seconds"
        ) from None


def _chain_point_params(
    spec: CampaignSpec, point: dict[str, Any], step: int
) -> dict[str, Any]:
    """Raw generator params of one chain cell (base + point + sweep value).

    The single construction point for cell params: the chain runner, the
    resume index, and the shared-memory record decoder all derive params
    through this helper, which is what makes their cells bit-identical.
    """
    params = dict(spec.base)
    params.update(point)
    if spec.sweep_axis is not None:
        params[spec.sweep_axis] = spec.sweep_values()[step]
    return params


@dataclass
class CellResult:
    """One (generated system, method) outcome."""

    #: Full generator params of the cell (base + grid point + sweep value).
    params: dict[str, Any]
    seed: int
    replicate: int
    method: str
    schedulable: bool
    converged: bool
    outer_iterations: int
    evaluations: int
    warm_started: bool
    max_wcrt_ratio: float
    time_s: float
    phase_cache_hits: int
    phase_cache_misses: int
    extras: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(**data)


#: CellResult fields compared by the determinism tests and the CSV export;
#: wall-clock timing is intentionally excluded.
CELL_METRIC_FIELDS = (
    "schedulable",
    "converged",
    "outer_iterations",
    "evaluations",
    "warm_started",
    "max_wcrt_ratio",
    "phase_cache_hits",
    "phase_cache_misses",
)


def _cell_identity(params: dict, seed: int, method: str) -> tuple:
    """Hashable identity of one cell: frozen params + seed + method.

    This is the key ``--resume`` matches completed cells by (the cell seed
    plus the full parameter point, including the sweep value).
    """
    return (
        tuple(sorted((k, _freeze(v)) for k, v in params.items())),
        seed,
        method,
    )


@dataclass
class CampaignResult:
    """Everything a campaign produced, with aggregation and export."""

    spec: dict
    cells: list[CellResult]
    workers: int
    wall_time_s: float
    #: Cells appended to a streaming CSV while the campaign ran.
    streamed_cells: int = 0
    #: Cells recovered from a ``resume_from`` result instead of re-running.
    reused_cells: int = 0
    #: ``[k, n]`` when this result holds shard ``k`` of an ``n``-way
    #: partition (see :func:`shard_chains`); ``None`` for a full run or a
    #: merged union.
    shard: list[int] | None = None
    #: Fixed-point solves/evaluations spent re-seeding warm-start jitters
    #: for chain-prefix resume (work that produced no reported cell).
    reseed_solves: int = 0
    reseed_evaluations: int = 0
    #: Cells collected through the shared-memory ring vs cells that fell
    #: back to the pickle path while ``collect="shm"`` was active.
    shm_records: int = 0
    shm_overflow: int = 0
    #: Cells served from / solved past the content-addressed result store
    #: (:mod:`repro.batch.store`).  Both stay 0 when no store was passed;
    #: with a store, ``store_hits + store_misses`` covers every
    #: non-``reused`` cell of the run.
    store_hits: int = 0
    store_misses: int = 0
    #: True when ``max_cells`` cut the run short (simulated kill).
    truncated: bool = False
    #: Recorded wall seconds per chain index (sum of cell ``time_s`` over
    #: the chain's collected cells) -- the cost manifest a later
    #: ``partition="lpt"`` run (or the dispatcher) feeds back into
    #: :func:`chain_cost_estimates`.  Empty under ``collect="none"``.
    chain_costs: dict[int, float] = field(default_factory=dict)

    # -- aggregate views --------------------------------------------------

    @property
    def n_analyses(self) -> int:
        return len(self.cells)

    @property
    def n_systems(self) -> int:
        """Distinct generated systems (cells / methods)."""
        methods = len(self.spec.get("methods", [])) or 1
        return len(self.cells) // methods

    @property
    def systems_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return float("inf")
        return self.n_systems / self.wall_time_s

    @property
    def analyses_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return float("inf")
        return self.n_analyses / self.wall_time_s

    def _cell_point_key(self, cell: CellResult) -> tuple:
        axes = list(self.spec.get("grid", {}))
        return tuple((a, _freeze(cell.params.get(a))) for a in axes)

    def acceptance(self) -> list[dict[str, Any]]:
        """Acceptance ratio and mean accounting per (grid cell, method).

        Rows are ordered by grid point then method, ready for tabulation or
        :func:`repro.viz.csvout.write_csv`.
        """
        groups: dict[tuple, list[CellResult]] = {}
        order: list[tuple] = []
        for cell in self.cells:
            key = (self._cell_point_key(cell), cell.method)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(cell)
        rows = []
        for point, method in order:
            cells = groups[(point, method)]
            n = len(cells)
            accepted = sum(c.schedulable for c in cells)
            rows.append(
                {
                    **{axis: value for axis, value in point},
                    "method": method,
                    "n": n,
                    "accepted": accepted,
                    "ratio": accepted / n,
                    "mean_outer_iterations": sum(
                        c.outer_iterations for c in cells
                    ) / n,
                    "mean_evaluations": sum(c.evaluations for c in cells) / n,
                    "mean_time_s": sum(c.time_s for c in cells) / n,
                }
            )
        return rows

    def accounting(self) -> dict[str, Any]:
        """Iteration/evaluation accounting, split warm vs cold.

        The warm/cold split is the campaign's own speedup report: warm
        cells resumed the outer fixed point from the previous sweep level's
        jitters, cold cells started from ``J = 0``.
        """
        warm = [c for c in self.cells if c.warm_started]
        cold = [c for c in self.cells if not c.warm_started]

        def bucket(cells: list[CellResult]) -> dict[str, float]:
            n = len(cells)
            if n == 0:
                return {
                    "cells": 0,
                    "evaluations": 0,
                    "outer_iterations": 0,
                    "mean_evaluations": 0.0,
                    "mean_outer_iterations": 0.0,
                    "time_s": 0.0,
                }
            return {
                "cells": n,
                "evaluations": sum(c.evaluations for c in cells),
                "outer_iterations": sum(c.outer_iterations for c in cells),
                "mean_evaluations": sum(c.evaluations for c in cells) / n,
                "mean_outer_iterations": sum(
                    c.outer_iterations for c in cells
                ) / n,
                "time_s": sum(c.time_s for c in cells),
            }

        hits = sum(c.phase_cache_hits for c in self.cells)
        misses = sum(c.phase_cache_misses for c in self.cells)
        return {
            "analyses": self.n_analyses,
            "systems": self.n_systems,
            "wall_time_s": self.wall_time_s,
            "systems_per_second": self.systems_per_second,
            "analyses_per_second": self.analyses_per_second,
            "evaluations_total": sum(c.evaluations for c in self.cells),
            "outer_iterations_total": sum(
                c.outer_iterations for c in self.cells
            ),
            "warm": bucket(warm),
            "cold": bucket(cold),
            "reseed": {
                "solves": self.reseed_solves,
                "evaluations": self.reseed_evaluations,
            },
            "store": {
                "hits": self.store_hits,
                "misses": self.store_misses,
            },
            "phase_cache": {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
            },
        }

    def metrics(self) -> list[tuple]:
        """Canonical tuple view of every cell, without wall-clock timing --
        what determinism comparisons should use.  NaN metric values are
        mapped to ``None`` so that equal runs compare equal."""
        def norm(v: Any) -> Any:
            if isinstance(v, float) and math.isnan(v):
                return None
            return v

        return [
            (
                tuple(sorted((k, _freeze(v)) for k, v in c.params.items())),
                c.seed,
                c.replicate,
                c.method,
            )
            + tuple(norm(getattr(c, f)) for f in CELL_METRIC_FIELDS)
            for c in self.cells
        ]

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "streamed_cells": self.streamed_cells,
            "reused_cells": self.reused_cells,
            "shard": self.shard,
            "reseed_solves": self.reseed_solves,
            "reseed_evaluations": self.reseed_evaluations,
            "shm_records": self.shm_records,
            "shm_overflow": self.shm_overflow,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "truncated": self.truncated,
            "chain_costs": {str(k): v for k, v in self.chain_costs.items()},
            "cells": [c.to_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        shard = data.get("shard")
        return cls(
            spec=data["spec"],
            cells=[CellResult.from_dict(c) for c in data["cells"]],
            workers=int(data.get("workers", 1)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            streamed_cells=int(data.get("streamed_cells", 0)),
            reused_cells=int(data.get("reused_cells", 0)),
            shard=[int(shard[0]), int(shard[1])] if shard else None,
            reseed_solves=int(data.get("reseed_solves", 0)),
            reseed_evaluations=int(data.get("reseed_evaluations", 0)),
            shm_records=int(data.get("shm_records", 0)),
            shm_overflow=int(data.get("shm_overflow", 0)),
            store_hits=int(data.get("store_hits", 0)),
            store_misses=int(data.get("store_misses", 0)),
            truncated=bool(data.get("truncated", False)),
            chain_costs={
                int(k): float(v)
                for k, v in data.get("chain_costs", {}).items()
            },
        )

    def save_json(self, path: str | Path) -> Path:
        """Write the result atomically (write-then-rename).

        A kill between open and close must never leave a half-written
        JSON at *path*: the dispatcher (and any ``--resume`` consumer)
        treats whatever sits there as a valid partial result.  The temp
        file is flushed and fsynced *before* the rename -- without that,
        a crash after ``os.replace`` but before the data hits disk could
        leave an empty-but-renamed file at *path* that a resume (or the
        result store) would trust.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.to_dict(), indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "CampaignResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def write_cells_csv(self, path: str | Path) -> Path:
        """Flat per-cell CSV: one row per (system, method) analysis."""
        param_keys = sorted({k for c in self.cells for k in c.params})
        header = (
            param_keys
            + ["seed", "replicate", "method"]
            + list(CELL_METRIC_FIELDS)
            + ["time_s"]
        )
        rows = [
            [_csv_value(c.params.get(k)) for k in param_keys]
            + [c.seed, c.replicate, c.method]
            + [_csv_value(getattr(c, f)) for f in CELL_METRIC_FIELDS]
            + [c.time_s]
            for c in self.cells
        ]
        return write_csv(path, header, rows)

    def write_acceptance_csv(self, path: str | Path) -> Path:
        rows = self.acceptance()
        if not rows:
            return write_csv(path, [], [])
        header = list(rows[0].keys())
        return write_csv(
            path, header, [[_csv_value(r[h]) for h in header] for r in rows]
        )

    def format_summary(self) -> str:
        """Human-readable acceptance table plus the accounting footer."""
        rows = self.acceptance()
        if not rows:
            return "(empty campaign)"
        axes = [k for k in rows[0] if k not in (
            "method", "n", "accepted", "ratio",
            "mean_outer_iterations", "mean_evaluations", "mean_time_s",
        )]
        header = axes + ["method", "n", "ratio", "outer", "evals", "ms"]
        body = [
            [f"{r[a]:g}" if isinstance(r[a], float) else str(r[a]) for a in axes]
            + [
                r["method"],
                str(r["n"]),
                f"{r['ratio']:.2f}",
                f"{r['mean_outer_iterations']:.1f}",
                f"{r['mean_evaluations']:.0f}",
                f"{r['mean_time_s'] * 1e3:.2f}",
            ]
            for r in rows
        ]
        acc = self.accounting()
        footer = (
            f"\n{acc['systems']} systems x {len(self.spec.get('methods', []))} "
            f"method(s) = {acc['analyses']} analyses in "
            f"{acc['wall_time_s']:.2f}s "
            f"({acc['systems_per_second']:.1f} systems/s, "
            f"workers={self.workers})\n"
            f"evaluations: {acc['evaluations_total']} total; warm cells "
            f"{acc['warm']['cells']} @ {acc['warm']['mean_evaluations']:.0f} "
            f"evals/cell vs cold {acc['cold']['cells']} @ "
            f"{acc['cold']['mean_evaluations']:.0f}\n"
            f"phase cache: {acc['phase_cache']['hits']} hits / "
            f"{acc['phase_cache']['misses']} misses "
            f"(hit ratio {acc['phase_cache']['hit_ratio']:.2f})"
        )
        if self.reseed_solves:
            footer += (
                f"\nprefix resume: {self.reseed_solves} re-seed solves "
                f"({self.reseed_evaluations} evaluations, unreported)"
            )
        if self.shm_records or self.shm_overflow:
            footer += (
                f"\nshm collection: {self.shm_records} records, "
                f"{self.shm_overflow} pickle fallbacks"
            )
        if self.store_hits or self.store_misses:
            footer += (
                f"\nresult store: {self.store_hits} cells served, "
                f"{self.store_misses} solved and stored"
            )
        title = (
            f"campaign: generator={self.spec.get('generator')} "
            f"seed={self.spec.get('seed')}"
        )
        if self.shard:
            title += f" shard={self.shard[0]}/{self.shard[1]}"
        return format_table(header, body, title=title) + footer


def _freeze(value: Any) -> Any:
    """Hashable view of a params value (lists -> tuples)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _tagged_chain_costs(tagged: Sequence[dict]) -> dict[int, float]:
    """Recorded wall seconds per chain index over a batch of tagged cells."""
    costs: dict[int, float] = {}
    for item in tagged:
        idx = item["order"][0]
        costs[idx] = costs.get(idx, 0.0) + float(item["cell"]["time_s"])
    return dict(sorted(costs.items()))


def _csv_value(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (list, tuple)):
        return "x".join(str(v) for v in value)
    if value is None:
        return ""
    return value


class StreamingMerger:
    """Incremental union of shard (or partial) results of one spec.

    The dispatcher folds each shard result in as the shard completes and
    drops the shard object immediately, so dispatched peak memory is the
    accumulated cell index plus *one* shard JSON -- not every shard JSON
    at once.  :func:`merge_campaign_results` is the convenience wrapper
    folding a ready-made sequence through the same machinery.

    Validation semantics match the historical batch merge: every added
    result must carry the identical spec dict (any difference raises
    :class:`ValueError`), sharded inputs must agree on the shard count
    and not repeat an index, and no cell identity may appear twice.
    :meth:`finish` reorders the union into the canonical chain-plan
    order and rejects leftovers that belong to no cell of the spec.
    The fold is order-insensitive: ``wall_time_s``/``workers`` are
    running maxima (the concurrent-hosts reading: shards run side by
    side, the union is ready when the slowest shard is), counters are
    running sums, and the canonical order is recomputed at the end --
    so shards may arrive in any completion order.
    """

    def __init__(self, spec: dict | None = None):
        #: Locked on construction or by the first :meth:`add`.
        self._spec: dict | None = dict(spec) if spec is not None else None
        self._index: dict[tuple, CellResult] = {}
        self._shards: list[tuple[int, int]] = []
        self._added = 0
        self._workers = 0
        self._wall = 0.0
        self._streamed = 0
        self._reused = 0
        self._reseed_solves = 0
        self._reseed_evaluations = 0
        self._shm_records = 0
        self._shm_overflow = 0
        self._store_hits = 0
        self._store_misses = 0
        self._truncated = False
        self._chain_costs: dict[int, float] = {}

    def add(self, result: CampaignResult) -> None:
        """Fold one result into the union (validating spec and overlap)."""
        if self._spec is None:
            self._spec = result.spec
        elif result.spec != self._spec:
            differing = sorted(
                k
                for k in set(self._spec) | set(result.spec)
                if self._spec.get(k) != result.spec.get(k)
            )
            raise ValueError(
                f"result {self._added} has an incompatible spec: "
                f"{', '.join(differing)} differ"
            )
        if result.shard:
            k, n = int(result.shard[0]), int(result.shard[1])
            counts = {n0 for _, n0 in self._shards} | {n}
            if len(counts) > 1:
                raise ValueError(f"shard counts differ: {sorted(counts)}")
            if any(k0 == k for k0, _ in self._shards):
                raise ValueError(
                    f"duplicate shard index {k} among the inputs"
                )
            self._shards.append((k, n))
        for c in result.cells:
            key = _cell_identity(c.params, c.seed, c.method)
            if key in self._index:
                raise ValueError(
                    f"overlapping cell in merge: seed={c.seed} "
                    f"method={c.method!r} params={c.params!r}"
                )
            self._index[key] = c
        self._added += 1
        self._workers = max(self._workers, result.workers)
        self._wall = max(self._wall, result.wall_time_s)
        self._streamed += result.streamed_cells
        self._reused += result.reused_cells
        self._reseed_solves += result.reseed_solves
        self._reseed_evaluations += result.reseed_evaluations
        self._shm_records += result.shm_records
        self._shm_overflow += result.shm_overflow
        self._store_hits += result.store_hits
        self._store_misses += result.store_misses
        self._truncated = self._truncated or result.truncated
        for idx, cost in result.chain_costs.items():
            self._chain_costs[idx] = self._chain_costs.get(idx, 0.0) + cost

    def finish(self) -> CampaignResult:
        """The merged result, cells in canonical chain-plan order."""
        if self._spec is None:
            raise ValueError("need at least one result to merge")
        # Canonical order comes from the spec's chain plan alone (no
        # registry lookups, so results of custom generators merge in any
        # process).  Missing cells are allowed: a merge of an incomplete
        # shard set is itself a valid ``resume_from`` input.
        merged_spec = CampaignSpec.from_dict(self._spec)
        index = self._index
        ordered: list[CellResult] = []
        for chain in merged_spec.chains():
            for step in range(len(merged_spec.sweep_values())):
                params = _jsonify(
                    _chain_point_params(merged_spec, chain["point"], step)
                )
                for name in merged_spec.methods:
                    cell = index.pop(
                        _cell_identity(params, chain["seed"], name), None
                    )
                    if cell is not None:
                        ordered.append(cell)
        if index:
            raise ValueError(
                f"{len(index)} cells do not belong to the merged spec "
                "(stale grid values or a foreign result file?)"
            )
        return CampaignResult(
            spec=self._spec,
            cells=ordered,
            workers=self._workers,
            wall_time_s=self._wall,
            streamed_cells=self._streamed,
            reused_cells=self._reused,
            shard=None,
            reseed_solves=self._reseed_solves,
            reseed_evaluations=self._reseed_evaluations,
            shm_records=self._shm_records,
            shm_overflow=self._shm_overflow,
            store_hits=self._store_hits,
            store_misses=self._store_misses,
            truncated=self._truncated
            and len(ordered) < merged_spec.n_analyses(),
            chain_costs=dict(sorted(self._chain_costs.items())),
        )


def merge_campaign_results(
    results: Sequence[CampaignResult],
) -> CampaignResult:
    """Union shard (or partial) results of one spec into a single result.

    All inputs must carry the *identical* spec dict -- merging results from
    different generators, seeds, grids or method lists would silently mix
    incomparable cells, so any difference raises :class:`ValueError`, as
    does a duplicated shard index or any overlapping cell (the same
    ``(params, seed, method)`` identity appearing in two inputs).  Cells
    are returned in the canonical order of the spec's chain plan; missing
    cells are allowed (a merge of an incomplete shard set is itself a valid
    ``resume_from`` input).

    ``wall_time_s``/``workers`` are the maxima over the inputs (the
    concurrent-hosts reading: shards run side by side, the union is ready
    when the slowest shard is); the counter fields are summed.  This is
    the batch wrapper over :class:`StreamingMerger`, which the dispatcher
    uses directly to fold shard results one at a time.
    """
    if not results:
        raise ValueError("need at least one result to merge")
    merger = StreamingMerger()
    for result in results:
        merger.add(result)
    return merger.finish()


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------


def _analyze_cell(
    spec: CampaignSpec,
    chain: dict,
    step: int,
    m_idx: int,
    name: str,
    fn,
    system: TransactionSystem,
    warm_vector: dict | None,
) -> tuple[Any, dict]:
    """Run one (system, method) analysis and tag the resulting cell dict."""
    hits0, misses0 = phase_cache_stats()
    t0 = time.perf_counter()
    outcome = fn(system, warm_vector)
    dt = time.perf_counter() - t0
    hits1, misses1 = phase_cache_stats()
    return outcome, {
        "order": (chain["index"], step, m_idx),
        "cell": {
            "params": _jsonify(_chain_point_params(spec, chain["point"], step)),
            "seed": chain["seed"],
            "replicate": chain["replicate"],
            "method": name,
            "schedulable": bool(outcome.schedulable),
            "converged": bool(outcome.converged),
            "outer_iterations": int(outcome.outer_iterations),
            "evaluations": int(outcome.evaluations),
            "warm_started": bool(outcome.warm_started),
            "max_wcrt_ratio": float(outcome.max_wcrt_ratio),
            "time_s": dt,
            "phase_cache_hits": hits1 - hits0,
            "phase_cache_misses": misses1 - misses0,
            "extras": _jsonify(outcome.extras),
        },
    }


def _inferred_cell(
    spec: CampaignSpec,
    chain: dict,
    step: int,
    m_idx: int,
    name: str,
    schedulable: bool,
    witness_level: Any,
) -> dict:
    """Tagged cell whose verdict is *inferred* from monotone level pruning.

    ``witness_level`` is the sweep value of the solved level whose verdict
    implies this one (a schedulable level above, or an unschedulable level
    below) -- the provenance trail of the inference.
    """
    return {
        "order": (chain["index"], step, m_idx),
        "cell": {
            "params": _jsonify(_chain_point_params(spec, chain["point"], step)),
            "seed": chain["seed"],
            "replicate": chain["replicate"],
            "method": name,
            "schedulable": schedulable,
            "converged": True,
            "outer_iterations": 0,
            "evaluations": 0,
            "warm_started": False,
            "max_wcrt_ratio": float("nan"),
            "time_s": 0.0,
            "phase_cache_hits": 0,
            "phase_cache_misses": 0,
            "extras": {
                "verdict_inferred": True,
                "inference": "monotone_utilization",
                "from_level": witness_level,
            },
        },
    }


#: Warm-start placeholder for a method whose previous cell was *served*
#: from the result store: the converged jitter vector exists (the stored
#: ``warm`` flag says the original solve produced one) but was never
#: serialized.  The next actual solve lazily recovers it with
#: :func:`~repro.batch.methods.reseed_jitters` against the level it was
#: converged at -- the converged vector is the least fixed point, so the
#: recovery reproduces it exactly (the same argument chain-prefix resume
#: rests on) and the downstream cells stay bit-identical.
_STALE_WARM: Any = object()

#: Cell fields a store entry must carry to be servable (everything of a
#: tagged cell except the identity fields the key already determines).
_STORED_CELL_FIELDS = (
    "schedulable",
    "converged",
    "outer_iterations",
    "evaluations",
    "warm_started",
    "max_wcrt_ratio",
    "time_s",
    "phase_cache_hits",
    "phase_cache_misses",
    "extras",
)


def _store_payload(cell: dict, warm_available: bool) -> dict:
    """The store value for one tagged cell's ``cell`` dict.

    ``warm`` records whether the solve produced a converged jitter
    vector (a warm start for the next level); it is stored explicitly
    because the vector itself is never serialized and no stored field
    implies its existence.
    """
    return {
        "cell": {k: cell[k] for k in _STORED_CELL_FIELDS},
        "warm": bool(warm_available),
    }


def _store_entry(store: ResultStore, key: StoreKey) -> dict | None:
    """A validated store entry, or ``None`` (missing or malformed)."""
    payload = store.get(key)
    if payload is None:
        return None
    cell = payload.get("cell")
    if not isinstance(cell, dict) or any(
        f not in cell for f in _STORED_CELL_FIELDS
    ):
        return None
    return {"cell": cell, "warm": bool(payload.get("warm"))}


def _served_cell(
    spec: CampaignSpec,
    chain: dict,
    step: int,
    m_idx: int,
    name: str,
    entry: dict,
) -> dict:
    """Tagged cell rebuilt from a store entry plus its chain context.

    Identity fields (params/seed/replicate/method) come from the chain
    plan, not the entry -- the store key only guarantees *content*
    identity, and the canonical identity must match this spec's cells
    bit for bit.
    """
    cell = {
        "params": _jsonify(_chain_point_params(spec, chain["point"], step)),
        "seed": chain["seed"],
        "replicate": chain["replicate"],
        "method": name,
    }
    cell.update(entry["cell"])
    return {"order": (chain["index"], step, m_idx), "cell": cell}


def store_reachable_digests(spec: CampaignSpec) -> set[str]:
    """Digests of every store entry a run of *spec* would consult.

    Replays the generation walk of :func:`_run_chain_sweep` -- scaler
    when the generator has one, fresh generation otherwise -- for every
    chain and sweep step, and collects the :meth:`StoreKey.digest` of
    each (system, config, level, method) cell.  This is the reachability
    set ``store-gc --spec`` keeps: pruning everything else leaves the
    store exactly warm for that spec.  Generation is cheap relative to
    analysis (O(tasks) per cell, no fixed points), but the walk still
    touches every chain, so expect seconds, not milliseconds, on big
    grids.
    """
    cfg_hash = campaign_config_hash(spec)
    digests: set[str] = set()
    scaler = (
        GENERATOR_SWEEP_SCALERS.get(spec.generator)
        if spec.sweep_axis is not None
        else None
    )
    for chain in spec.chains():
        point, seed = chain["point"], chain["seed"]
        base_system: TransactionSystem | None = None
        base_value: Any = None
        for step, sweep_value in enumerate(spec.sweep_values()):
            params = _chain_point_params(spec, point, step)
            system = None
            if scaler is not None and base_system is not None:
                system = scaler(
                    base_system, spec.sweep_axis, base_value, sweep_value
                )
            if system is None:
                system = GENERATORS[spec.generator](params, seed)
                base_system, base_value = system, sweep_value
            sys_hash = system_hash(system)
            level = _jsonify(sweep_value)
            for name in spec.methods:
                digests.add(
                    StoreKey(sys_hash, cfg_hash, level, name).digest()
                )
    return digests


def _run_chain_sweep(
    spec: CampaignSpec, chain: dict, store: ResultStore | None = None
) -> tuple[list[dict], int]:
    """The ascending warm-start walk over one chain's sweep levels.

    When ``chain["resume_step"]`` is set (chain-prefix resume), sweep
    steps before it are already recorded: their analyses are skipped, but
    generation/scaling is replayed so the chain's scaling base evolves
    exactly as in a from-scratch run -- a custom sweep scaler may
    *decline* (return ``None``) at any level, which regenerates and
    re-bases the chain there, so the skipped levels' scaler calls cannot
    be elided in general (for the built-in linear scaler the base never
    moves and the replay is redundant-but-cheap, O(tasks) per skipped
    level).  The last completed step is then re-solved (cold, unreported)
    purely to recover the warm-start jitter vector the remaining steps
    chain from -- the converged jitters are the least fixed point, so the
    re-solve hands the suffix exactly the vector the original run would
    have.

    With a *store*, each sweep step first consults the content-addressed
    result store.  Serving is all-or-nothing per step: the methods of
    one step share a phase cache (cleared once per step), so a later
    method's hit/miss accounting depends on the earlier methods having
    actually run -- serving a step partially would change the solved
    cells' accounting and break the bit-identical-rerun guarantee.  A
    fully-stored step is emitted verbatim; a warm-start vector consumed
    by a later solved step is recovered lazily via :data:`_STALE_WARM`.
    Returns ``(tagged cells, store hits)``.
    """
    point: dict[str, Any] = chain["point"]
    seed: int = chain["seed"]
    resume_step: int = int(chain.get("resume_step", 0))

    warm: dict[str, Any] = {m: None for m in spec.methods}
    out: list[dict] = []
    hits = 0
    cfg_hash = campaign_config_hash(spec) if store is not None else ""
    prev_system: TransactionSystem | None = None
    scaler = (
        GENERATOR_SWEEP_SCALERS.get(spec.generator)
        if spec.sweep_axis is not None
        else None
    )
    base_system: TransactionSystem | None = None
    base_value: Any = None
    for step, sweep_value in enumerate(spec.sweep_values()):
        skip = step < resume_step - 1
        reseed = resume_step > 0 and step == resume_step - 1
        if skip and scaler is None:
            # Without a sweep scaler every level is generated independently
            # from (params, seed); skipped levels need no replay at all.
            continue
        params = _chain_point_params(spec, point, step)
        system = None
        if scaler is not None and base_system is not None:
            system = scaler(
                base_system, spec.sweep_axis, base_value, sweep_value
            )
        if system is None:
            system = GENERATORS[spec.generator](params, seed)
            base_system, base_value = system, sweep_value
        if skip:
            continue
        # A fresh cache per sweep step keeps per-cell hit/miss accounting
        # independent of which worker ran the previous chain.
        clear_phase_cache()
        if reseed:
            if spec.warm_start:
                for name in spec.methods:
                    warm[name] = reseed_jitters(name, system)
            prev_system = system
            continue
        keys: dict[str, StoreKey] | None = None
        entries: list[dict] | None = None
        if store is not None:
            sys_hash = system_hash(system)
            level = _jsonify(sweep_value)
            keys = {
                name: StoreKey(sys_hash, cfg_hash, level, name)
                for name in spec.methods
            }
            found = [_store_entry(store, keys[name]) for name in spec.methods]
            if all(e is not None for e in found):
                entries = found
        if entries is not None:
            for m_idx, name in enumerate(spec.methods):
                out.append(
                    _served_cell(spec, chain, step, m_idx, name,
                                 entries[m_idx])
                )
                warm[name] = _STALE_WARM if entries[m_idx]["warm"] else None
            hits += len(spec.methods)
            prev_system = system
            continue
        for m_idx, name in enumerate(spec.methods):
            info = resolve_method(name)
            warm_vector = None
            if spec.warm_start and info.supports_warm_start:
                if warm[name] is _STALE_WARM:
                    # The previous step was served, so the vector its solve
                    # would have produced was never materialized; recover
                    # it from that step's system (prev_system).
                    warm[name] = reseed_jitters(name, prev_system)
                warm_vector = warm[name]
            outcome, tagged = _analyze_cell(
                spec, chain, step, m_idx, name, info.fn, system, warm_vector
            )
            warm[name] = outcome.jitters
            out.append(tagged)
            if store is not None and keys is not None:
                store.put(
                    keys[name],
                    _store_payload(tagged["cell"],
                                   outcome.jitters is not None),
                )
        prev_system = system
    return out, hits


def _run_chain_pruned(
    spec: CampaignSpec, chain: dict, store: ResultStore | None = None
) -> tuple[list[dict], int] | None:
    """Monotone-level-pruned execution of one chain (verdict methods).

    Along a warm-start chain every sweep level is the *same* drawn system
    with all execution times scaled by the utilization ratio, and response
    times are monotone in the execution times -- so once a level is
    unschedulable, every higher level is too, and once a level is
    schedulable, every lower level is too.  Methods flagged
    ``verdict_monotone`` therefore *bisect* the sweep for the lowest
    unschedulable level (~log2 solves) and emit the remaining cells with
    inferred verdicts carrying provenance extras (``verdict_inferred``,
    ``from_level``); other methods in the same spec run the plain
    ascending walk.  Returns ``None`` when the chain's levels cannot all
    be derived from one base system through the registered sweep scaler
    (no scaler, or it declined some level) -- the monotonicity premise is
    then unavailable and the caller falls back to the ascending walk.

    Only the ``"utilization"`` sweep axis qualifies: the inference needs
    ascending levels to scale *demand up* (higher level => responses can
    only grow).  A custom scaler on some other axis -- say a deadline
    factor, where larger values make systems easier -- would invert the
    direction and the bisection invariant with it, so any other axis
    falls back to the ascending walk too.

    With a *store*, serving is per cell (every pruned-path solve clears
    the phase cache itself, so cells are accounting-independent), but
    only for *from-scratch* chains: a resumed bisection covers a
    resume-dependent level subset with resume-dependent inference
    witnesses, so its cells are not scratch-canonical and must neither
    serve from nor seed the store.  Each monotone method first checks
    whether the *whole* chain is stored (the fully-warm fast path -- it
    serves solved and inferred cells alike, which is what makes a warm
    rerun count ``store_hits == n_analyses``); otherwise bisection
    probes serve individually and solved probes (plus the final inferred
    cells) are written back.  Returns ``(tagged cells, store hits)`` or
    ``None`` for the fallback.
    """
    scaler = GENERATOR_SWEEP_SCALERS.get(spec.generator)
    if scaler is None or spec.sweep_axis != "utilization":
        return None
    point: dict[str, Any] = chain["point"]
    seed: int = chain["seed"]
    resume_step: int = int(chain.get("resume_step", 0))
    resume_unsched: dict = chain.get("resume_unsched") or {}
    sweep_values = spec.sweep_values()
    n_steps = len(sweep_values)

    base_system = GENERATORS[spec.generator](
        _chain_point_params(spec, point, 0), seed
    )
    systems: list[TransactionSystem] = [base_system]
    for step in range(1, n_steps):
        scaled = scaler(
            base_system, spec.sweep_axis, sweep_values[0], sweep_values[step]
        )
        if scaled is None:
            return None
        systems.append(scaled)

    use_store = store is not None and resume_step == 0
    cfg_hash = campaign_config_hash(spec) if use_store else ""
    sys_hashes: list[str | None] = [None] * n_steps

    def key_for(step: int, name: str) -> StoreKey:
        if sys_hashes[step] is None:
            sys_hashes[step] = system_hash(systems[step])
        return StoreKey(
            sys_hashes[step], cfg_hash, _jsonify(sweep_values[step]), name
        )

    out: list[dict] = []
    hits = 0
    for m_idx, name in enumerate(spec.methods):
        info = resolve_method(name)
        looked: dict[int, dict | None] = {}

        def lookup(step: int) -> dict | None:
            if not use_store:
                return None
            if step not in looked:
                looked[step] = _store_entry(store, key_for(step, name))
            return looked[step]

        warm: Any = None
        #: Level whose served cell made ``warm`` stale (see _STALE_WARM).
        stale_step: int | None = None
        if (
            resume_step > 0
            and spec.warm_start
            and not resume_unsched.get(name)
        ):
            warm = reseed_jitters(name, systems[resume_step - 1])

        def solve(step: int, warm_vector: dict | None) -> tuple[Any, dict]:
            clear_phase_cache()
            return _analyze_cell(
                spec, chain, step, m_idx, name, info.fn, systems[step],
                warm_vector,
            )

        use_warm = spec.warm_start and info.supports_warm_start

        if use_store:
            entries = [lookup(step) for step in range(n_steps)]
            if all(e is not None for e in entries):
                for step, entry in enumerate(entries):
                    out.append(
                        _served_cell(spec, chain, step, m_idx, name, entry)
                    )
                hits += n_steps
                continue

        if not info.verdict_monotone:
            for step in range(resume_step, n_steps):
                entry = lookup(step)
                if entry is not None:
                    out.append(
                        _served_cell(spec, chain, step, m_idx, name, entry)
                    )
                    hits += 1
                    warm = _STALE_WARM if entry["warm"] else None
                    stale_step = step
                    continue
                if use_warm and warm is _STALE_WARM:
                    warm = reseed_jitters(name, systems[stale_step])
                outcome, tagged = solve(step, warm if use_warm else None)
                warm = outcome.jitters
                out.append(tagged)
                if use_store:
                    store.put(
                        key_for(step, name),
                        _store_payload(tagged["cell"],
                                       outcome.jitters is not None),
                    )
            continue

        # Bisect [resume_step, n_steps) for the lowest unschedulable
        # level.  Warm starts flow only upward: a schedulable probe's
        # converged jitters seed higher probes (they lie below the higher
        # level's fixed point); unschedulable probes never seed anything
        # (all later probes are below them).
        solved: dict[int, dict] = {}
        lo, hi = resume_step, n_steps
        if resume_unsched.get(name):
            hi = lo  # the reused prefix already contains a miss
        while lo < hi:
            mid = (lo + hi) // 2
            entry = lookup(mid)
            if entry is not None:
                tagged = _served_cell(spec, chain, mid, m_idx, name, entry)
                hits += 1
                solved[mid] = tagged
                if tagged["cell"]["schedulable"]:
                    if entry["warm"]:
                        # The vector this probe's solve would have handed
                        # upward exists but was never serialized; recover
                        # it lazily before the next actual solve.
                        warm = _STALE_WARM
                        stale_step = mid
                    lo = mid + 1
                else:
                    hi = mid
                continue
            if use_warm and warm is _STALE_WARM:
                warm = reseed_jitters(name, systems[stale_step])
            outcome, tagged = solve(mid, warm if use_warm else None)
            solved[mid] = tagged
            if use_store:
                store.put(
                    key_for(mid, name),
                    _store_payload(tagged["cell"],
                                   outcome.jitters is not None),
                )
            if tagged["cell"]["schedulable"]:
                if outcome.jitters is not None:
                    warm = outcome.jitters
                lo = mid + 1
            else:
                hi = mid
        threshold = lo
        for step in range(resume_step, n_steps):
            if step in solved:
                out.append(solved[step])
                continue
            if step < threshold:
                tagged = _inferred_cell(
                    spec, chain, step, m_idx, name, True,
                    sweep_values[threshold - 1],
                )
            else:
                witness = (
                    sweep_values[threshold]
                    if threshold in solved
                    else sweep_values[resume_step - 1]
                )
                tagged = _inferred_cell(
                    spec, chain, step, m_idx, name, False, witness
                )
            # Inferred cells are stored too: the fully-warm fast path
            # above can then serve the complete chain without a single
            # probe (they carry no warm vector, hence "warm": False).
            if use_store:
                store.put(
                    key_for(step, name),
                    _store_payload(tagged["cell"], False),
                )
            out.append(tagged)
    # Canonical (step, method) order: truncation (--max-cells) and the
    # streaming CSV then see whole levels complete in sweep order, exactly
    # like the ascending walk -- the invariant chain-prefix resume needs.
    out.sort(key=lambda item: item["order"])
    return out, hits


def _run_chain(
    spec: CampaignSpec, chain: dict, store: ResultStore | None = None
) -> dict:
    """Execute one warm-start chain.

    Returns ``{"cells": [tagged cell dicts], "reseed_solves": int,
    "reseed_evaluations": int, "store_hits": int, "store_misses": int}``.
    Chains whose spec includes a verdict-monotone method take the pruned
    path (:func:`_run_chain_pruned`) when the sweep levels are derivable
    from one base system; everything else runs the ascending walk
    (:func:`_run_chain_sweep`).  With a *store*, emitted cells split into
    served (``store_hits``) and solved-then-stored (``store_misses``);
    without one both stay 0.
    """
    stats0 = fixed_point_stats()
    cells: list[dict] | None = None
    hits = 0
    if spec.sweep_axis is not None and any(
        resolve_method(name).verdict_monotone for name in spec.methods
    ):
        pruned = _run_chain_pruned(spec, chain, store)
        if pruned is not None:
            cells, hits = pruned
    if cells is None:
        cells, hits = _run_chain_sweep(spec, chain, store)
    reseed_delta = fixed_point_stats().delta(stats0)
    return {
        "cells": cells,
        "reseed_solves": reseed_delta.reseed_solves,
        "reseed_evaluations": reseed_delta.reseed_evaluations,
        "store_hits": hits,
        "store_misses": len(cells) - hits if store is not None else 0,
    }


# --------------------------------------------------------------------------
# Shared-memory result collection
# --------------------------------------------------------------------------

#: Fixed-width record header: chain index, sweep step, method index,
#: schedulable/converged/warm_started flags, outer iterations,
#: evaluations, max_wcrt_ratio, time_s, phase-cache hits/misses, and the
#: byte length of the JSON-encoded extras tail.
_REC_HEADER = struct.Struct("<IIIBBBxqqddqqI")

#: Fixed record width: the header plus up to ``SHM_RECORD_SIZE - header``
#: bytes of JSON extras.  Records whose extras do not fit overflow to the
#: pickle path (the built-in holistic extras need ~90 bytes).
SHM_RECORD_SIZE = 256

#: Default shared-memory ring capacity (64 MiB ~ 256k cells).
DEFAULT_SHM_BYTES = 64 * 1024 * 1024


def _encode_record(buf, offset: int, order: tuple, cell: dict) -> bool:
    """Pack one tagged cell at *offset*; False when it does not fit.

    False also covers extras that would not survive the JSON round trip
    *unchanged* (non-string dict keys stringify, NaN breaks equality):
    those cells fall back to the pickle path so ``collect="shm"`` stays
    bit-identical to ``collect="pickle"`` for arbitrary custom methods.
    """
    extras_obj = cell["extras"]
    try:
        payload = json.dumps(extras_obj, separators=(",", ":"))
        if json.loads(payload) != extras_obj:
            return False
        extras = payload.encode("utf-8")
    except (TypeError, ValueError):
        return False
    if _REC_HEADER.size + len(extras) > SHM_RECORD_SIZE:
        return False
    _REC_HEADER.pack_into(
        buf,
        offset,
        order[0],
        order[1],
        order[2],
        int(cell["schedulable"]),
        int(cell["converged"]),
        int(cell["warm_started"]),
        int(cell["outer_iterations"]),
        int(cell["evaluations"]),
        float(cell["max_wcrt_ratio"]),
        float(cell["time_s"]),
        int(cell["phase_cache_hits"]),
        int(cell["phase_cache_misses"]),
        len(extras),
    )
    start = offset + _REC_HEADER.size
    buf[start:start + len(extras)] = extras
    return True


def _attach_shm(name: str):
    """Attach a pool worker to the parent's segment.

    Under the default ``fork`` start method the workers share the parent's
    resource-tracker process, so the attach's re-registration is an
    idempotent set-add there and the parent's ``unlink`` remains the one
    cleanup point -- the worker must only ``close()`` its mapping.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


class _ShmArena:
    """Preallocated shared-memory ring for cell records.

    Each pool chunk owns a contiguous region sized for its cell count
    (single-writer per region, so no cross-process locking), assigned
    ring-style until ``shm_bytes`` is exhausted; chunks past the cap, and
    individual records that do not fit their region or their fixed width,
    fall back to the executor's pickle path -- the merged result is
    identical, only the transport differs.
    """

    def __init__(self, seg, regions: list[tuple[int, int] | None]):
        self.seg = seg
        self.regions = regions

    @classmethod
    def create(
        cls, chunks: list[list[dict]], spec: CampaignSpec, shm_bytes: int
    ) -> "_ShmArena":
        n_cells_per_step = len(spec.methods)
        n_steps = len(spec.sweep_values())
        regions: list[tuple[int, int] | None] = []
        offset = 0
        for chunk in chunks:
            cells = sum(
                (n_steps - int(c.get("resume_step", 0))) * n_cells_per_step
                for c in chunk
            )
            want = cells * SHM_RECORD_SIZE
            capacity = min(want, max(0, shm_bytes - offset))
            capacity -= capacity % SHM_RECORD_SIZE
            if capacity <= 0:
                regions.append(None)
            else:
                regions.append((offset, capacity))
                offset += capacity
        if offset == 0:
            return cls(None, regions)
        try:
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(create=True, size=offset)
        except (ImportError, OSError):
            # No usable shared memory on this platform/runner: degrade to
            # the pickle path wholesale (results are identical).
            return cls(None, [None] * len(regions))
        return cls(seg, regions)

    def region_info(self, i: int) -> dict | None:
        if self.seg is None or self.regions[i] is None:
            return None
        offset, capacity = self.regions[i]
        return {
            "name": self.seg.name,
            "offset": offset,
            "capacity": capacity,
        }

    def decode(
        self,
        i: int,
        count: int,
        spec: CampaignSpec,
        chain_by_index: dict[int, dict],
    ) -> list[dict]:
        """Tagged cell dicts of the first *count* records of region *i*."""
        if count == 0 or self.seg is None or self.regions[i] is None:
            return []
        offset, _capacity = self.regions[i]
        buf = self.seg.buf
        out: list[dict] = []
        for r in range(count):
            o = offset + r * SHM_RECORD_SIZE
            (
                chain_index, step, m_idx,
                schedulable, converged, warm_started,
                outer_iterations, evaluations,
                max_wcrt_ratio, time_s,
                cache_hits, cache_misses,
                extras_len,
            ) = _REC_HEADER.unpack_from(buf, o)
            start = o + _REC_HEADER.size
            extras = (
                json.loads(bytes(buf[start:start + extras_len]))
                if extras_len
                else {}
            )
            chain = chain_by_index[chain_index]
            params = _jsonify(
                _chain_point_params(spec, chain["point"], step)
            )
            out.append(
                {
                    "order": (chain_index, step, m_idx),
                    "cell": {
                        "params": params,
                        "seed": chain["seed"],
                        "replicate": chain["replicate"],
                        "method": spec.methods[m_idx],
                        "schedulable": bool(schedulable),
                        "converged": bool(converged),
                        "outer_iterations": outer_iterations,
                        "evaluations": evaluations,
                        "warm_started": bool(warm_started),
                        "max_wcrt_ratio": max_wcrt_ratio,
                        "time_s": time_s,
                        "phase_cache_hits": cache_hits,
                        "phase_cache_misses": cache_misses,
                        "extras": extras,
                    },
                }
            )
        return out

    def destroy(self) -> None:
        if self.seg is not None:
            self.seg.close()
            self.seg.unlink()
            self.seg = None


def _run_chunk(
    payload: tuple[dict, list[dict], dict | None, str | None]
) -> dict:
    """Worker entry point: a chunk is a list of chains.

    With a shared-memory region, finished cells are packed into it and
    only the overflow (plus the reseed accounting) returns through the
    executor's pickle channel.  ``store_root`` (a path, not a live
    object -- each worker opens its own handle) enables the
    content-addressed result store for the chunk's chains.
    """
    spec_dict, chains, shm_region, store_root = payload
    spec = CampaignSpec.from_dict(spec_dict)
    store = ResultStore(store_root) if store_root else None
    cells: list[dict] = []
    reseed_solves = 0
    reseed_evaluations = 0
    store_hits = 0
    store_misses = 0
    for chain in chains:
        chain_out = _run_chain(spec, chain, store)
        cells.extend(chain_out["cells"])
        reseed_solves += chain_out["reseed_solves"]
        reseed_evaluations += chain_out["reseed_evaluations"]
        store_hits += chain_out["store_hits"]
        store_misses += chain_out["store_misses"]
    written = 0
    if shm_region is not None and cells:
        seg = None
        try:
            seg = _attach_shm(shm_region["name"])
            buf = seg.buf
            offset = shm_region["offset"]
            capacity = shm_region["capacity"]
            kept: list[dict] = []
            for item in cells:
                fits = (written + 1) * SHM_RECORD_SIZE <= capacity
                if fits and _encode_record(
                    buf,
                    offset + written * SHM_RECORD_SIZE,
                    item["order"],
                    item["cell"],
                ):
                    written += 1
                else:
                    kept.append(item)
            cells = kept
        except Exception:
            written = 0  # attach/pack failed: ship everything via pickle
        finally:
            if seg is not None:
                seg.close()
    return {
        "cells": cells,
        "shm_written": written,
        "reseed_solves": reseed_solves,
        "reseed_evaluations": reseed_evaluations,
        "store_hits": store_hits,
        "store_misses": store_misses,
    }


class _CellCsvStream:
    """Appends finished cells to a CSV as their chains complete.

    The column set is fixed upfront (``base`` keys plus grid axes) so rows
    can be written without buffering the campaign; rows appear in chunk
    completion order, which is the canonical cell order for a single
    worker and chunk order under a pool (``Executor.map`` preserves it).
    """

    def __init__(self, path: str | Path, spec: CampaignSpec):
        self.param_keys = sorted(set(spec.base) | set(spec.grid))
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", newline="")
        self._writer = csv.writer(self._fh)
        self._writer.writerow(
            self.param_keys
            + ["seed", "replicate", "method"]
            + list(CELL_METRIC_FIELDS)
            + ["time_s"]
        )

    def write(self, part: list[dict]) -> None:
        for item in part:
            c = item["cell"]
            params = c["params"]
            self._writer.writerow(
                [_csv_value(params.get(k)) for k in self.param_keys]
                + [c["seed"], c["replicate"], c["method"]]
                + [_csv_value(c[f]) for f in CELL_METRIC_FIELDS]
                + [c["time_s"]]
            )
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


class _HeartbeatWriter:
    """Atomically publish a liveness file from a daemon thread.

    The file is a single JSON object ``{"cells": N, "seq": K, "time": T,
    "pid": P}``: ``cells`` is the monotonic count of cells this run has
    consumed, ``seq`` bumps on *every* write.  The split lets a
    dispatcher distinguish *stalled* (seq advances, cells frozen -- the
    process is alive but wedged inside a solve) from *dead* (nothing
    advances -- killed, or silently hung with its threads).

    Writes are write-then-rename so a reader never sees a torn file, but
    deliberately *not* fsynced: a heartbeat is advisory, and losing the
    last beat on power failure costs one relaunch, not correctness.  Any
    error while beating -- ENOSPC, EACCES on the temp file, a vanished
    parent directory -- is swallowed for the same reason: the beat is
    skipped and retried at the next interval, and the daemon thread
    keeps running, because a worker must never *look* dead (or actually
    die) just because the disk hiccuped.  ``seq`` advances only when a
    beat actually lands, so a published sequence never skips numbers and
    a failed write is indistinguishable from no write, which is exactly
    what it is to the reader.  ``failed_beats`` counts the skips for
    observability.

    The periodic beat runs on a daemon thread, so it keeps beating while
    the main thread is stuck inside a long solve (a *healthy* slow cell
    looks stalled-but-alive, which is exactly the signal the dispatcher
    needs to not shoot it -- and a SIGKILL or interpreter wedge stops the
    thread too, which is what makes silence mean *dead*).
    """

    def __init__(self, path: str | Path, interval: float):
        self.path = Path(path)
        self.interval = float(interval)
        self._cells = 0
        self._seq = 0
        self._dropped = False
        self.failed_beats = 0
        self._stop = threading.Event()
        self._kick = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            # An unwritable parent fails every beat too -- each one is
            # skipped and retried; the campaign itself must keep running.
            self.failed_beats += 1
        self._write()
        self._thread = threading.Thread(
            target=self._loop, name="heartbeat", daemon=True
        )
        self._thread.start()

    def bump(self, cells: int) -> None:
        """Record progress and request an immediate beat."""
        self._cells = int(cells)
        self._kick.set()

    def drop(self) -> None:
        """Stop publishing (fault injection: simulate a silent wedge)."""
        self._dropped = True

    def stop(self) -> None:
        self._stop.set()
        self._kick.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._write()  # flush the final count

    def _loop(self) -> None:
        while True:
            self._kick.wait(self.interval)
            if self._stop.is_set():
                return
            self._kick.clear()
            try:
                self._write()
            except Exception:
                # _write already absorbs OSError; this is the belt to
                # that suspender -- nothing may kill the beat thread.
                self.failed_beats += 1

    def _write(self) -> None:
        if self._dropped:
            return
        payload = json.dumps(
            {
                "cells": self._cells,
                "seq": self._seq + 1,
                "time": time.time(),
                "pid": os.getpid(),
            }
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(payload)
            os.replace(tmp, self.path)
        except FileNotFoundError:
            # The parent vanished (remount, aggressive cleanup): try to
            # recreate it so a later beat can land, skip this one.
            self.failed_beats += 1
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
            except OSError:
                pass
        except OSError:
            self.failed_beats += 1
        else:
            # Published beats carry consecutive sequence numbers; a
            # failed write bumps nothing, exactly like no write at all.
            self._seq += 1


class Campaign:
    """A configured campaign, ready to run.

    >>> from repro.batch import Campaign, CampaignSpec
    >>> spec = CampaignSpec(
    ...     grid={"utilization": (0.3, 0.6)},
    ...     base={"n_platforms": 2, "n_transactions": 2,
    ...           "tasks_per_transaction": (1, 2)},
    ...     methods=("reduced",),
    ...     systems_per_cell=2,
    ... )
    >>> result = Campaign(spec).run(workers=1)
    >>> result.n_systems
    4
    """

    def __init__(self, spec: CampaignSpec):
        if spec.generator not in GENERATORS:
            raise KeyError(
                f"unknown generator {spec.generator!r}; "
                f"known: {', '.join(available_generators())}"
            )
        for name in spec.methods:
            resolve_method(name)  # raises on unknown names
        self.spec = spec

    def chains(self) -> list[dict]:
        """The planned chains (sequential units of execution)."""
        return self.spec.chains()

    def _chain_prefix_from(
        self, chain: dict, index: dict
    ) -> tuple[list[dict], int]:
        """Longest fully-completed sweep prefix of *chain* in a resume index.

        Returns ``(tagged cells of the prefix, completed sweep steps)``.  A
        step counts as completed only when *every* method's cell for it is
        present (a mid-level kill re-runs that level whole); the remaining
        steps re-run with the warm-start state re-seeded from the last
        completed level (see :func:`_run_chain`).
        """
        out: list[dict] = []
        steps = 0
        for step in range(len(self.spec.sweep_values())):
            params = _jsonify(
                _chain_point_params(self.spec, chain["point"], step)
            )
            level: list[dict] = []
            for m_idx, name in enumerate(self.spec.methods):
                cell = index.get(_cell_identity(params, chain["seed"], name))
                if cell is None:
                    return out, steps
                level.append(
                    {
                        "order": (chain["index"], step, m_idx),
                        "cell": cell.to_dict(),
                    }
                )
            out.extend(level)
            steps += 1
        return out, steps

    def run(
        self,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
        resume_from: CampaignResult | None = None,
        stream_csv: str | Path | None = None,
        collect: bool | str = True,
        shard: tuple[int, int] | None = None,
        partition: str = "hash",
        cost_manifest: dict[int, float] | None = None,
        max_cells: int | None = None,
        shm_bytes: int = DEFAULT_SHM_BYTES,
        checkpoint: str | Path | None = None,
        checkpoint_every: int = 0,
        store: ResultStore | str | Path | None = None,
        chain_indices: Sequence[int] | None = None,
        heartbeat: str | Path | None = None,
        heartbeat_interval: float = 1.0,
        executor: ProcessPoolExecutor | None = None,
    ) -> CampaignResult:
        """Execute the campaign and return a :class:`CampaignResult`.

        ``workers == 1`` runs inline (same code path as the pool workers);
        any worker count produces identical metrics for the same spec.

        Parameters
        ----------
        resume_from:
            A previous (possibly partial) result for the same spec: chains
            whose cells are all present there (matched by cell seed + full
            parameter point + method) are reused instead of re-run, and a
            partially completed chain reuses its longest fully-completed
            sweep *prefix* -- the warm-start state is re-seeded by
            re-solving the last completed level, so the re-run suffix is
            bit-identical to a from-scratch execution for ascending-walk
            chains.  Pruned verdict chains bisect the remaining levels,
            which generally solves a different subset than a from-scratch
            run would: verdicts are identical, the solved-vs-inferred
            split (and with it per-cell accounting) is not.
        stream_csv:
            Append each finished cell to this CSV as its chain completes,
            instead of waiting for the whole campaign.
        collect:
            ``"pickle"`` (or ``True``, the default) collects cells through
            the executor's pickled return values; ``"shm"`` has pool
            workers pack fixed-width records into a shared-memory ring
            (see :class:`_ShmArena`) with per-record pickle fallback;
            ``"none"`` (or ``False``, requires *stream_csv*) keeps no
            cells in memory, for arbitrarily large streamed sweeps --
            streamed rows then also travel through the shared-memory ring
            (same pickle fallback), not the executor's pickle channel.
        shard:
            ``(k, n)`` runs only the chains of shard ``k`` of a
            deterministic ``n``-way partition (see :func:`shard_chains`);
            the union of all shards equals the unsharded run bit for bit,
            and :func:`merge_campaign_results` reassembles the pieces.
        partition:
            Shard partition strategy: ``"hash"`` (seed-hash interleave,
            balances chain counts) or ``"lpt"`` (longest processing time
            over per-chain cost estimates, balances recorded/estimated
            cost -- see :func:`partition_chains`).  Every shard of one
            deployment must use the same strategy and cost manifest.
        cost_manifest:
            Chain index -> recorded wall seconds (the ``chain_costs``
            block of a previous result, see :func:`load_cost_manifest`)
            driving the ``"lpt"`` partition; ``None`` falls back to the
            ``levels x n_tasks`` size proxy.
        max_cells:
            Stop collecting after this many cells and return the partial
            (``truncated=True``) result -- a deterministic simulation of a
            mid-campaign kill, for resume testing and budgeted runs.
        shm_bytes:
            Ring capacity for ``collect="shm"``; chunks beyond it fall
            back to the pickle path.
        checkpoint:
            Atomically rewrite a partial result JSON here as the run
            progresses, so a killed process leaves a valid ``--resume``
            input behind (the dispatcher's fault-tolerance substrate).
        checkpoint_every:
            Cells between checkpoint writes (required > 0 when
            *checkpoint* is set; checkpointing needs ``collect`` != none).
        store:
            A :class:`~repro.batch.store.ResultStore` (or its root
            directory) memoizing solved cells *across* runs by content
            hash: cells whose (system, execution context, level, method)
            was solved before -- by this run, an earlier run, or another
            shard sharing the store -- are served from disk, and freshly
            solved cells are written back.  A store-warmed rerun is
            bit-identical to a cold run (same cells, same canonical
            order); only ``store_hits``/``store_misses`` differ.
        chain_indices:
            Run only the chains with these plan indices (see
            :meth:`chains`), in canonical plan order.  This is the
            dispatcher's elastic-split primitive: any disjoint cover of
            the chain indices unions bit-identically to the full run,
            exactly like ``shard`` -- but the subset is explicit instead
            of derived from a ``k/n`` partition.  Mutually exclusive
            with ``shard``.
        heartbeat:
            Atomically rewrite a small liveness JSON here (monotonic
            cells-consumed counter + beat sequence + wall timestamp) on
            every progress event and at least every *heartbeat_interval*
            seconds, from a daemon thread (see :class:`_HeartbeatWriter`).
            A dispatcher polls it to tell *progressing* from *stalled*
            from *dead* without trusting the child's exit status.
        heartbeat_interval:
            Maximum seconds between heartbeat writes (must be > 0).
        executor:
            An externally owned :class:`~concurrent.futures.\
ProcessPoolExecutor` to run chain chunks on instead of creating (and
            shutting down) a private pool.  The executor *outlives* the
            call -- this is the analysis service's persistent-pool seam:
            worker processes keep their driver caches (compiled-W
            closures, phase memos) warm across campaigns.  ``workers``
            then only shapes chunking and should match the executor's
            worker count; results are identical either way.  Ignored on
            the inline path (``workers == 1`` or a single chain).
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        collect_mode = {True: "pickle", False: "none"}.get(collect, collect)
        if collect_mode not in ("pickle", "shm", "none"):
            raise ValueError(
                "collect must be 'pickle', 'shm', 'none' or a bool, "
                f"got {collect!r}"
            )
        if collect_mode == "none" and stream_csv is None:
            raise ValueError("collect='none' requires stream_csv")
        if max_cells is not None and max_cells < 0:
            raise ValueError("max_cells must be >= 0")
        if partition not in ("hash", "lpt"):
            raise ValueError(
                f"partition must be 'hash' or 'lpt', got {partition!r}"
            )
        if checkpoint is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint requires checkpoint_every >= 1")
            if collect_mode == "none":
                raise ValueError("checkpoint requires collect != 'none'")
        if isinstance(store, ResultStore):
            store_obj: ResultStore | None = store
        elif store is not None:
            store_obj = ResultStore(store)
        else:
            store_obj = None
        store_root = str(store_obj.root) if store_obj is not None else None
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        chains = self.chains()
        if chain_indices is not None:
            if shard is not None:
                raise ValueError(
                    "chain_indices and shard are mutually exclusive: a "
                    "chain subset is already an explicit partition"
                )
            wanted = {int(i) for i in chain_indices}
            unknown = wanted - {c["index"] for c in chains}
            if unknown:
                raise ValueError(
                    f"unknown chain indices {sorted(unknown)}; the plan "
                    f"has {len(chains)} chain(s)"
                )
            chains = [c for c in chains if c["index"] in wanted]
        elif shard is not None:
            chains = partition_chains(
                self.spec, chains, shard,
                partition=partition, cost_manifest=cost_manifest,
            )
        spec_dict = self.spec.to_dict()
        n_steps = len(self.spec.sweep_values())
        t0 = time.perf_counter()

        reused: list[dict] = []
        if resume_from is not None:
            # Cell identities are (params, seed, method) -- meaningful only
            # when the results came from the same generator and campaign
            # seed; grid/replicate extensions are fine (extra chains just
            # find no match), but a different generator or master seed
            # would silently reuse wrong systems.
            for field_name in ("generator", "seed", "base", "warm_start"):
                ours = spec_dict.get(field_name)
                theirs = resume_from.spec.get(field_name)
                if theirs != ours:
                    raise ValueError(
                        f"resume_from was produced with {field_name}="
                        f"{theirs!r}, campaign uses {ours!r}"
                    )
            index = {
                _cell_identity(c.params, c.seed, c.method): c
                for c in resume_from.cells
            }
            monotone = {
                name: resolve_method(name).verdict_monotone
                for name in self.spec.methods
            }
            pending: list[dict] = []
            for chain in chains:
                cells, steps = self._chain_prefix_from(chain, index)
                if steps == n_steps:
                    reused.extend(cells)
                    continue
                if steps:
                    reused.extend(cells)
                    resumed = {**chain, "resume_step": steps}
                    # A miss already recorded for a verdict-monotone method
                    # decides every remaining level of its chain: the
                    # runner then infers the suffix instead of probing it.
                    flags = {
                        self.spec.methods[item["order"][2]]: True
                        for item in cells
                        if monotone[self.spec.methods[item["order"][2]]]
                        and not item["cell"]["schedulable"]
                    }
                    if flags:
                        resumed["resume_unsched"] = flags
                    pending.append(resumed)
                else:
                    pending.append(chain)
            chains = pending

        stream = (
            _CellCsvStream(stream_csv, self.spec)
            if stream_csv is not None
            else None
        )
        worker_faults = WorkerFaults.from_env()
        beat = (
            _HeartbeatWriter(heartbeat, heartbeat_interval)
            if heartbeat is not None
            else None
        )
        tagged: list[dict] = []
        streamed = 0
        consumed = 0
        truncated = False
        reseed_solves = 0
        reseed_evaluations = 0
        shm_records = 0
        shm_overflow = 0
        store_hits = 0
        store_misses = 0

        def snapshot_result(*, final: bool) -> CampaignResult:
            """The result as of now; checkpoints are truncated views."""
            items = sorted(tagged, key=lambda item: item["order"])
            return CampaignResult(
                spec=spec_dict,
                cells=[CellResult.from_dict(item["cell"]) for item in items],
                workers=workers,
                wall_time_s=time.perf_counter() - t0,
                streamed_cells=streamed,
                reused_cells=kept_reused,
                shard=list(shard) if shard is not None else None,
                reseed_solves=reseed_solves,
                reseed_evaluations=reseed_evaluations,
                shm_records=shm_records,
                shm_overflow=shm_overflow,
                store_hits=store_hits,
                store_misses=store_misses,
                truncated=truncated if final else True,
                chain_costs=_tagged_chain_costs(items),
            )

        last_checkpoint = 0
        kept_reused = 0

        def consume(part: list[dict], *, reused_batch: bool = False) -> bool:
            """Account a batch of finished cells; False once the budget
            set by ``max_cells`` is exhausted."""
            nonlocal streamed, consumed, truncated, last_checkpoint
            nonlocal kept_reused
            if worker_faults is not None:
                # Injected cell faults land on exact cell boundaries, not
                # wherever a chain/chunk batch edge happens to fall.
                part = worker_faults.clip(part, consumed)
            if max_cells is not None and consumed + len(part) > max_cells:
                part = part[: max(0, max_cells - consumed)]
                truncated = True
            consumed += len(part)
            if reused_batch:
                # Recorded before any checkpoint write below, so a
                # checkpointed partial reports its reused cells too.
                kept_reused = consumed
            if stream is not None:
                stream.write(part)
                streamed += len(part)
            if collect_mode != "none":
                tagged.extend(part)
            if (
                checkpoint is not None
                and consumed - last_checkpoint >= checkpoint_every
            ):
                snapshot_result(final=False).save_json(checkpoint)
                last_checkpoint = consumed
            if beat is not None:
                beat.bump(consumed)
            if worker_faults is not None:
                # After the checkpoint/heartbeat so the injected crash
                # leaves exactly the on-disk state a real one would.
                worker_faults.fire(consumed, beat)
            return not truncated

        arena: _ShmArena | None = None
        try:
            if beat is not None:
                beat.start()
            budget_ok = True
            if reused:
                # consume() records kept_reused (max_cells may cut the batch).
                budget_ok = consume(reused, reused_batch=True)
            if not chains or not budget_ok:
                pass
            elif workers == 1 or len(chains) <= 1:
                for chain in chains:
                    chain_out = _run_chain(self.spec, chain, store_obj)
                    reseed_solves += chain_out["reseed_solves"]
                    reseed_evaluations += chain_out["reseed_evaluations"]
                    store_hits += chain_out["store_hits"]
                    store_misses += chain_out["store_misses"]
                    if not consume(chain_out["cells"]):
                        break
            else:
                if chunk_size is None:
                    chunk_size = max(1, math.ceil(len(chains) / (workers * 4)))
                chunks = [
                    chains[i:i + chunk_size]
                    for i in range(0, len(chains), chunk_size)
                ]
                # The ring also carries stream-only runs (collect="none"
                # with a CSV stream): rows are decoded straight from shared
                # memory and appended, dropping the pickle round-trip from
                # bounded-memory streaming sweeps.
                if collect_mode == "shm" or (
                    collect_mode == "none" and stream is not None
                ):
                    arena = _ShmArena.create(chunks, self.spec, shm_bytes)
                chain_by_index = {c["index"]: c for c in chains}
                payloads = [
                    (
                        spec_dict,
                        chunk,
                        arena.region_info(i) if arena is not None else None,
                        store_root,
                    )
                    for i, chunk in enumerate(chunks)
                ]
                pool = (
                    executor
                    if executor is not None
                    else ProcessPoolExecutor(max_workers=workers)
                )
                futures: list = []
                try:
                    # Explicit submit/result (in submission order, same as
                    # pool.map) so an exhausted max_cells budget can cancel
                    # the chunks that have not started instead of silently
                    # running the rest of the campaign to discard it.
                    futures = [
                        pool.submit(_run_chunk, payload)
                        for payload in payloads
                    ]
                    for i, future in enumerate(futures):
                        part = future.result()
                        cells = part["cells"]
                        reseed_solves += part["reseed_solves"]
                        reseed_evaluations += part["reseed_evaluations"]
                        store_hits += part["store_hits"]
                        store_misses += part["store_misses"]
                        if arena is not None:
                            decoded = arena.decode(
                                i, part["shm_written"], self.spec,
                                chain_by_index,
                            )
                            shm_records += len(decoded)
                            shm_overflow += len(cells)
                            if decoded:
                                cells = sorted(
                                    decoded + cells,
                                    key=lambda item: item["order"],
                                )
                        if not consume(cells):
                            break
                finally:
                    if executor is None:
                        pool.shutdown(wait=True, cancel_futures=True)
                    else:
                        # A borrowed executor must survive the call;
                        # cancel what never started so an early exit
                        # (max_cells) does not leave queued chunks
                        # burning pool slots behind our back.
                        for future in futures:
                            future.cancel()
        finally:
            if arena is not None:
                arena.destroy()
            if stream is not None:
                stream.close()
            if beat is not None:
                beat.stop()

        return snapshot_result(final=True)


def run_campaign(
    spec: CampaignSpec, *, workers: int = 1, chunk_size: int | None = None
) -> CampaignResult:
    """Convenience one-call front end to :class:`Campaign`."""
    return Campaign(spec).run(workers=workers, chunk_size=chunk_size)
