"""The campaign driver: grids, chunked parallel dispatch, structured results.

A campaign is the cross-product of

* a *generator* (named in :data:`GENERATORS`) drawing one transaction
  system from ``(params, seed)``,
* a parameter *grid* (axis name -> value list) over the generator params,
* a list of *methods* (named in :mod:`repro.batch.methods`), and
* ``systems_per_cell`` replicates with deterministic per-cell seeds.

Execution model
---------------
Cells are grouped into *chains*: one chain holds all values of the sweep
axis for a fixed (grid point, replicate).  The chain is the unit of
sequential execution because consecutive sweep cells share their random
seed -- the generators scale monotonically along the sweep (UUniFast draws
are scale-invariant in the total utilization), so the converged jitter
vector of cell *k* is a valid warm start for cell *k+1* (it lies below the
new least fixed point, hence the outer iteration converges to the same
fixed point in fewer rounds).  Chains are chunked and dispatched to a
``ProcessPoolExecutor``; per-cell seeds derive from
``numpy.random.SeedSequence`` so results are identical for any worker
count, and cells are re-sorted into canonical order on collection.
"""

from __future__ import annotations

import csv
import json
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.analysis.busy import clear_phase_cache, phase_cache_stats
from repro.batch.methods import resolve_method
from repro.gen import RandomSystemSpec, random_system
from repro.model.system import TransactionSystem
from repro.viz.csvout import write_csv
from repro.viz.tables import format_table

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignSpec",
    "CellResult",
    "available_generators",
    "linspace_levels",
    "register_generator",
    "run_campaign",
]

#: Decimal places of the stable grid sweep levels are rounded to.  Floats
#: like ``0.30000000000000004`` (binary accumulation noise from naive
#: ``start + k * step`` generation) collapse onto their intended decimal
#: value, so grid keys, JSON exports and CSV columns stay clean, and cells
#: from different runs of the same spec compare equal.
LEVEL_DECIMALS = 10


def linspace_levels(
    start: float, stop: float, count: int, *, decimals: int = LEVEL_DECIMALS
) -> tuple[float, ...]:
    """``count`` evenly spaced sweep levels on a stable decimal grid.

    Levels are generated from integer steps and rounded to ``decimals``
    places -- the float-drift-free way to build a sweep axis.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count!r}")
    if count == 1:
        return (round(float(start), decimals),)
    step = (float(stop) - float(start)) / (count - 1)
    return tuple(
        round(float(start) + k * step, decimals) for k in range(count)
    )


# --------------------------------------------------------------------------
# Generator registry
# --------------------------------------------------------------------------

GeneratorFn = Callable[[dict, int], TransactionSystem]


def _gen_random_system(params: dict, seed: int) -> TransactionSystem:
    kwargs = dict(params)
    tpt = kwargs.get("tasks_per_transaction")
    if isinstance(tpt, list):  # JSON round trips tuples as lists
        kwargs["tasks_per_transaction"] = tuple(tpt)
    return random_system(RandomSystemSpec(**kwargs), seed=seed)


def _gen_paper(params: dict, seed: int) -> TransactionSystem:
    del params, seed  # the example is fixed; grid axes select methods only
    from repro.paper import sensor_fusion_system

    return sensor_fusion_system()


GENERATORS: dict[str, GeneratorFn] = {
    "random_system": _gen_random_system,
    "paper": _gen_paper,
}

#: Optional per-generator sweep scalers:
#: ``fn(base_system, axis, base_value, new_value) -> TransactionSystem | None``.
#: When the only parameter differing along a chain is the sweep axis, the
#: chain generates its system once at the first level and derives the other
#: levels through the scaler instead of re-drawing -- ``None`` falls back to
#: full generation.  ``random_system`` scales exactly (UUniFast is linear in
#: the total utilization).
SweepScalerFn = Callable[[TransactionSystem, str, Any, Any], "TransactionSystem | None"]


def _scale_random_system(
    base: TransactionSystem, axis: str, base_value: Any, new_value: Any
) -> TransactionSystem | None:
    if axis != "utilization":
        return None
    try:
        factor = float(new_value) / float(base_value)
    except (TypeError, ZeroDivisionError):
        return None
    if factor <= 0:
        # Non-positive target utilization: fall through to the generator,
        # which reports the invalid parameter with its own message.
        return None
    from repro.gen.random_transactions import scale_system_utilization

    return scale_system_utilization(base, factor)


GENERATOR_SWEEP_SCALERS: dict[str, SweepScalerFn] = {
    "random_system": _scale_random_system,
}


def register_generator(
    name: str, fn: GeneratorFn, *, sweep_scaler: SweepScalerFn | None = None
) -> None:
    """Register (or replace) a system generator under *name*.

    With the default ``fork`` start method, generators registered before
    ``Campaign.run`` are inherited by the pool workers.  ``sweep_scaler``
    optionally derives the system at a new sweep level from the chain's
    base system (see :data:`GENERATOR_SWEEP_SCALERS`).
    """
    GENERATORS[name] = fn
    if sweep_scaler is not None:
        GENERATOR_SWEEP_SCALERS[name] = sweep_scaler
    else:
        GENERATOR_SWEEP_SCALERS.pop(name, None)


def available_generators() -> list[str]:
    """Sorted names of every registered generator."""
    return sorted(GENERATORS)


# --------------------------------------------------------------------------
# Specification and result types
# --------------------------------------------------------------------------


def _jsonify(value: Any) -> Any:
    """Tuples -> lists, recursively, so params survive a JSON round trip."""
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if isinstance(value, list):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one campaign.

    Parameters
    ----------
    grid:
        Axis name -> list of values, cross-multiplied over the generator
        params.  The sweep axis (see *sweep_axis*) is sorted ascending.
    base:
        Fixed generator params merged under every grid point.
    methods:
        Names from :mod:`repro.batch.methods`.
    systems_per_cell:
        Replicates per grid cell; each replicate has its own seed.
    seed:
        Campaign master seed.  Per-cell seeds derive deterministically from
        ``(seed, grid point index, replicate)`` -- the sweep axis is
        excluded on purpose, so every sweep level sees the *same* systems
        (paired samples, and the precondition for warm-start chaining).
    generator:
        Name from :func:`available_generators`.
    sweep_axis:
        The grid axis that forms warm-start chains; defaults to
        ``"utilization"`` when that axis is present, else no chaining.
    warm_start:
        Chain the converged jitter vector along the sweep axis into the
        next cell's analysis (methods that support it only).
    """

    grid: dict[str, tuple] = field(default_factory=dict)
    base: dict[str, Any] = field(default_factory=dict)
    methods: tuple[str, ...] = ("reduced",)
    systems_per_cell: int = 1
    seed: int = 0
    generator: str = "random_system"
    sweep_axis: str | None = None
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.systems_per_cell < 1:
            raise ValueError("systems_per_cell must be >= 1")
        if not self.methods:
            raise ValueError("at least one method is required")
        # Snap float grid values onto the stable decimal grid (see
        # LEVEL_DECIMALS) so equivalent sweeps produce identical cell keys.
        def stable(v: Any) -> Any:
            return round(v, LEVEL_DECIMALS) if isinstance(v, float) else v

        object.__setattr__(
            self,
            "grid",
            {k: tuple(stable(v) for v in vs) for k, vs in self.grid.items()},
        )
        object.__setattr__(self, "methods", tuple(self.methods))
        for axis, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {axis!r} has no values")
        sweep = self.sweep_axis
        if sweep is None and "utilization" in self.grid:
            sweep = "utilization"
        if sweep is not None and sweep not in self.grid:
            raise ValueError(f"sweep_axis {sweep!r} is not a grid axis")
        object.__setattr__(self, "sweep_axis", sweep)
        if sweep is not None:
            object.__setattr__(
                self,
                "grid",
                {
                    k: tuple(sorted(v)) if k == sweep else tuple(v)
                    for k, v in self.grid.items()
                },
            )

    # -- planning ---------------------------------------------------------

    def points(self) -> list[dict[str, Any]]:
        """Cross product of the non-sweep axes, in grid insertion order."""
        axes = [a for a in self.grid if a != self.sweep_axis]
        points: list[dict[str, Any]] = [{}]
        for axis in axes:
            points = [
                {**p, axis: v} for p in points for v in self.grid[axis]
            ]
        return points

    def sweep_values(self) -> tuple:
        return self.grid[self.sweep_axis] if self.sweep_axis else (None,)

    def n_cells(self) -> int:
        return len(self.points()) * len(self.sweep_values()) * self.systems_per_cell

    def n_analyses(self) -> int:
        return self.n_cells() * len(self.methods)

    def cell_seed(self, point_index: int, replicate: int) -> int:
        """Deterministic seed shared by every sweep level of a chain."""
        ss = np.random.SeedSequence((self.seed, point_index, replicate))
        return int(ss.generate_state(1)[0])

    def to_dict(self) -> dict:
        return {
            "grid": {k: _jsonify(list(v)) for k, v in self.grid.items()},
            "base": _jsonify(self.base),
            "methods": list(self.methods),
            "systems_per_cell": self.systems_per_cell,
            "seed": self.seed,
            "generator": self.generator,
            "sweep_axis": self.sweep_axis,
            "warm_start": self.warm_start,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        return cls(
            grid={k: tuple(v) for k, v in data.get("grid", {}).items()},
            base=dict(data.get("base", {})),
            methods=tuple(data.get("methods", ("reduced",))),
            systems_per_cell=int(data.get("systems_per_cell", 1)),
            seed=int(data.get("seed", 0)),
            generator=data.get("generator", "random_system"),
            sweep_axis=data.get("sweep_axis"),
            warm_start=bool(data.get("warm_start", True)),
        )


@dataclass
class CellResult:
    """One (generated system, method) outcome."""

    #: Full generator params of the cell (base + grid point + sweep value).
    params: dict[str, Any]
    seed: int
    replicate: int
    method: str
    schedulable: bool
    converged: bool
    outer_iterations: int
    evaluations: int
    warm_started: bool
    max_wcrt_ratio: float
    time_s: float
    phase_cache_hits: int
    phase_cache_misses: int
    extras: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(**data)


#: CellResult fields compared by the determinism tests and the CSV export;
#: wall-clock timing is intentionally excluded.
CELL_METRIC_FIELDS = (
    "schedulable",
    "converged",
    "outer_iterations",
    "evaluations",
    "warm_started",
    "max_wcrt_ratio",
    "phase_cache_hits",
    "phase_cache_misses",
)


def _cell_identity(params: dict, seed: int, method: str) -> tuple:
    """Hashable identity of one cell: frozen params + seed + method.

    This is the key ``--resume`` matches completed cells by (the cell seed
    plus the full parameter point, including the sweep value).
    """
    return (
        tuple(sorted((k, _freeze(v)) for k, v in params.items())),
        seed,
        method,
    )


@dataclass
class CampaignResult:
    """Everything a campaign produced, with aggregation and export."""

    spec: dict
    cells: list[CellResult]
    workers: int
    wall_time_s: float
    #: Cells appended to a streaming CSV while the campaign ran.
    streamed_cells: int = 0
    #: Cells recovered from a ``resume_from`` result instead of re-running.
    reused_cells: int = 0

    # -- aggregate views --------------------------------------------------

    @property
    def n_analyses(self) -> int:
        return len(self.cells)

    @property
    def n_systems(self) -> int:
        """Distinct generated systems (cells / methods)."""
        methods = len(self.spec.get("methods", [])) or 1
        return len(self.cells) // methods

    @property
    def systems_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return float("inf")
        return self.n_systems / self.wall_time_s

    @property
    def analyses_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return float("inf")
        return self.n_analyses / self.wall_time_s

    def _cell_point_key(self, cell: CellResult) -> tuple:
        axes = list(self.spec.get("grid", {}))
        return tuple((a, _freeze(cell.params.get(a))) for a in axes)

    def acceptance(self) -> list[dict[str, Any]]:
        """Acceptance ratio and mean accounting per (grid cell, method).

        Rows are ordered by grid point then method, ready for tabulation or
        :func:`repro.viz.csvout.write_csv`.
        """
        groups: dict[tuple, list[CellResult]] = {}
        order: list[tuple] = []
        for cell in self.cells:
            key = (self._cell_point_key(cell), cell.method)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(cell)
        rows = []
        for point, method in order:
            cells = groups[(point, method)]
            n = len(cells)
            accepted = sum(c.schedulable for c in cells)
            rows.append(
                {
                    **{axis: value for axis, value in point},
                    "method": method,
                    "n": n,
                    "accepted": accepted,
                    "ratio": accepted / n,
                    "mean_outer_iterations": sum(
                        c.outer_iterations for c in cells
                    ) / n,
                    "mean_evaluations": sum(c.evaluations for c in cells) / n,
                    "mean_time_s": sum(c.time_s for c in cells) / n,
                }
            )
        return rows

    def accounting(self) -> dict[str, Any]:
        """Iteration/evaluation accounting, split warm vs cold.

        The warm/cold split is the campaign's own speedup report: warm
        cells resumed the outer fixed point from the previous sweep level's
        jitters, cold cells started from ``J = 0``.
        """
        warm = [c for c in self.cells if c.warm_started]
        cold = [c for c in self.cells if not c.warm_started]

        def bucket(cells: list[CellResult]) -> dict[str, float]:
            n = len(cells)
            if n == 0:
                return {
                    "cells": 0,
                    "evaluations": 0,
                    "outer_iterations": 0,
                    "mean_evaluations": 0.0,
                    "mean_outer_iterations": 0.0,
                    "time_s": 0.0,
                }
            return {
                "cells": n,
                "evaluations": sum(c.evaluations for c in cells),
                "outer_iterations": sum(c.outer_iterations for c in cells),
                "mean_evaluations": sum(c.evaluations for c in cells) / n,
                "mean_outer_iterations": sum(
                    c.outer_iterations for c in cells
                ) / n,
                "time_s": sum(c.time_s for c in cells),
            }

        hits = sum(c.phase_cache_hits for c in self.cells)
        misses = sum(c.phase_cache_misses for c in self.cells)
        return {
            "analyses": self.n_analyses,
            "systems": self.n_systems,
            "wall_time_s": self.wall_time_s,
            "systems_per_second": self.systems_per_second,
            "analyses_per_second": self.analyses_per_second,
            "evaluations_total": sum(c.evaluations for c in self.cells),
            "outer_iterations_total": sum(
                c.outer_iterations for c in self.cells
            ),
            "warm": bucket(warm),
            "cold": bucket(cold),
            "phase_cache": {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
            },
        }

    def metrics(self) -> list[tuple]:
        """Canonical tuple view of every cell, without wall-clock timing --
        what determinism comparisons should use.  NaN metric values are
        mapped to ``None`` so that equal runs compare equal."""
        def norm(v: Any) -> Any:
            if isinstance(v, float) and math.isnan(v):
                return None
            return v

        return [
            (
                tuple(sorted((k, _freeze(v)) for k, v in c.params.items())),
                c.seed,
                c.replicate,
                c.method,
            )
            + tuple(norm(getattr(c, f)) for f in CELL_METRIC_FIELDS)
            for c in self.cells
        ]

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "streamed_cells": self.streamed_cells,
            "reused_cells": self.reused_cells,
            "cells": [c.to_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(
            spec=data["spec"],
            cells=[CellResult.from_dict(c) for c in data["cells"]],
            workers=int(data.get("workers", 1)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            streamed_cells=int(data.get("streamed_cells", 0)),
            reused_cells=int(data.get("reused_cells", 0)),
        )

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "CampaignResult":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def write_cells_csv(self, path: str | Path) -> Path:
        """Flat per-cell CSV: one row per (system, method) analysis."""
        param_keys = sorted({k for c in self.cells for k in c.params})
        header = (
            param_keys
            + ["seed", "replicate", "method"]
            + list(CELL_METRIC_FIELDS)
            + ["time_s"]
        )
        rows = [
            [_csv_value(c.params.get(k)) for k in param_keys]
            + [c.seed, c.replicate, c.method]
            + [_csv_value(getattr(c, f)) for f in CELL_METRIC_FIELDS]
            + [c.time_s]
            for c in self.cells
        ]
        return write_csv(path, header, rows)

    def write_acceptance_csv(self, path: str | Path) -> Path:
        rows = self.acceptance()
        if not rows:
            return write_csv(path, [], [])
        header = list(rows[0].keys())
        return write_csv(
            path, header, [[_csv_value(r[h]) for h in header] for r in rows]
        )

    def format_summary(self) -> str:
        """Human-readable acceptance table plus the accounting footer."""
        rows = self.acceptance()
        if not rows:
            return "(empty campaign)"
        axes = [k for k in rows[0] if k not in (
            "method", "n", "accepted", "ratio",
            "mean_outer_iterations", "mean_evaluations", "mean_time_s",
        )]
        header = axes + ["method", "n", "ratio", "outer", "evals", "ms"]
        body = [
            [f"{r[a]:g}" if isinstance(r[a], float) else str(r[a]) for a in axes]
            + [
                r["method"],
                str(r["n"]),
                f"{r['ratio']:.2f}",
                f"{r['mean_outer_iterations']:.1f}",
                f"{r['mean_evaluations']:.0f}",
                f"{r['mean_time_s'] * 1e3:.2f}",
            ]
            for r in rows
        ]
        acc = self.accounting()
        footer = (
            f"\n{acc['systems']} systems x {len(self.spec.get('methods', []))} "
            f"method(s) = {acc['analyses']} analyses in "
            f"{acc['wall_time_s']:.2f}s "
            f"({acc['systems_per_second']:.1f} systems/s, "
            f"workers={self.workers})\n"
            f"evaluations: {acc['evaluations_total']} total; warm cells "
            f"{acc['warm']['cells']} @ {acc['warm']['mean_evaluations']:.0f} "
            f"evals/cell vs cold {acc['cold']['cells']} @ "
            f"{acc['cold']['mean_evaluations']:.0f}\n"
            f"phase cache: {acc['phase_cache']['hits']} hits / "
            f"{acc['phase_cache']['misses']} misses "
            f"(hit ratio {acc['phase_cache']['hit_ratio']:.2f})"
        )
        title = (
            f"campaign: generator={self.spec.get('generator')} "
            f"seed={self.spec.get('seed')}"
        )
        return format_table(header, body, title=title) + footer


def _freeze(value: Any) -> Any:
    """Hashable view of a params value (lists -> tuples)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _csv_value(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (list, tuple)):
        return "x".join(str(v) for v in value)
    if value is None:
        return ""
    return value


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------


def _run_chain(spec: CampaignSpec, chain: dict) -> list[dict]:
    """Execute one warm-start chain; returns tagged cell dicts."""
    point: dict[str, Any] = chain["point"]
    seed: int = chain["seed"]
    replicate: int = chain["replicate"]
    chain_index: int = chain["index"]

    warm: dict[str, dict | None] = {m: None for m in spec.methods}
    out: list[dict] = []
    scaler = (
        GENERATOR_SWEEP_SCALERS.get(spec.generator)
        if spec.sweep_axis is not None
        else None
    )
    base_system: TransactionSystem | None = None
    base_value: Any = None
    for step, sweep_value in enumerate(spec.sweep_values()):
        params = dict(spec.base)
        params.update(point)
        if spec.sweep_axis is not None:
            params[spec.sweep_axis] = sweep_value
        system = None
        if scaler is not None and base_system is not None:
            system = scaler(
                base_system, spec.sweep_axis, base_value, sweep_value
            )
        if system is None:
            system = GENERATORS[spec.generator](params, seed)
            base_system, base_value = system, sweep_value
        # A fresh cache per sweep step keeps per-cell hit/miss accounting
        # independent of which worker ran the previous chain.
        clear_phase_cache()
        for m_idx, name in enumerate(spec.methods):
            fn, supports_warm = resolve_method(name)
            warm_vector = (
                warm[name] if (spec.warm_start and supports_warm) else None
            )
            hits0, misses0 = phase_cache_stats()
            t0 = time.perf_counter()
            outcome = fn(system, warm_vector)
            dt = time.perf_counter() - t0
            hits1, misses1 = phase_cache_stats()
            warm[name] = outcome.jitters
            out.append(
                {
                    "order": (chain_index, step, m_idx),
                    "cell": {
                        "params": _jsonify(params),
                        "seed": seed,
                        "replicate": replicate,
                        "method": name,
                        "schedulable": bool(outcome.schedulable),
                        "converged": bool(outcome.converged),
                        "outer_iterations": int(outcome.outer_iterations),
                        "evaluations": int(outcome.evaluations),
                        "warm_started": bool(outcome.warm_started),
                        "max_wcrt_ratio": float(outcome.max_wcrt_ratio),
                        "time_s": dt,
                        "phase_cache_hits": hits1 - hits0,
                        "phase_cache_misses": misses1 - misses0,
                        "extras": _jsonify(outcome.extras),
                    },
                }
            )
    return out


def _run_chunk(payload: tuple[dict, list[dict]]) -> list[dict]:
    """Worker entry point: a chunk is a list of chains."""
    spec_dict, chains = payload
    spec = CampaignSpec.from_dict(spec_dict)
    results: list[dict] = []
    for chain in chains:
        results.extend(_run_chain(spec, chain))
    return results


class _CellCsvStream:
    """Appends finished cells to a CSV as their chains complete.

    The column set is fixed upfront (``base`` keys plus grid axes) so rows
    can be written without buffering the campaign; rows appear in chunk
    completion order, which is the canonical cell order for a single
    worker and chunk order under a pool (``Executor.map`` preserves it).
    """

    def __init__(self, path: str | Path, spec: CampaignSpec):
        self.param_keys = sorted(set(spec.base) | set(spec.grid))
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", newline="")
        self._writer = csv.writer(self._fh)
        self._writer.writerow(
            self.param_keys
            + ["seed", "replicate", "method"]
            + list(CELL_METRIC_FIELDS)
            + ["time_s"]
        )

    def write(self, part: list[dict]) -> None:
        for item in part:
            c = item["cell"]
            params = c["params"]
            self._writer.writerow(
                [_csv_value(params.get(k)) for k in self.param_keys]
                + [c["seed"], c["replicate"], c["method"]]
                + [_csv_value(c[f]) for f in CELL_METRIC_FIELDS]
                + [c["time_s"]]
            )
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


class Campaign:
    """A configured campaign, ready to run.

    >>> from repro.batch import Campaign, CampaignSpec
    >>> spec = CampaignSpec(
    ...     grid={"utilization": (0.3, 0.6)},
    ...     base={"n_platforms": 2, "n_transactions": 2,
    ...           "tasks_per_transaction": (1, 2)},
    ...     methods=("reduced",),
    ...     systems_per_cell=2,
    ... )
    >>> result = Campaign(spec).run(workers=1)
    >>> result.n_systems
    4
    """

    def __init__(self, spec: CampaignSpec):
        if spec.generator not in GENERATORS:
            raise KeyError(
                f"unknown generator {spec.generator!r}; "
                f"known: {', '.join(available_generators())}"
            )
        for name in spec.methods:
            resolve_method(name)  # raises on unknown names
        self.spec = spec

    def chains(self) -> list[dict]:
        """The planned chains (sequential units of execution)."""
        chains = []
        for p_idx, point in enumerate(self.spec.points()):
            for rep in range(self.spec.systems_per_cell):
                chains.append(
                    {
                        "index": len(chains),
                        "point": point,
                        "replicate": rep,
                        "seed": self.spec.cell_seed(p_idx, rep),
                    }
                )
        return chains

    def _chain_cells_from(
        self, chain: dict, index: dict
    ) -> list[dict] | None:
        """Tagged cell dicts for *chain* recovered from a resume index.

        Chains resume whole or not at all: a partially completed chain is
        re-run from its first sweep level so the warm-start state matches a
        fresh execution.  Returns ``None`` unless every (sweep level,
        method) cell of the chain is present in *index*.
        """
        out: list[dict] = []
        for step, sweep_value in enumerate(self.spec.sweep_values()):
            params = dict(self.spec.base)
            params.update(chain["point"])
            if self.spec.sweep_axis is not None:
                params[self.spec.sweep_axis] = sweep_value
            params = _jsonify(params)
            for m_idx, name in enumerate(self.spec.methods):
                cell = index.get(_cell_identity(params, chain["seed"], name))
                if cell is None:
                    return None
                out.append(
                    {
                        "order": (chain["index"], step, m_idx),
                        "cell": cell.to_dict(),
                    }
                )
        return out

    def run(
        self,
        *,
        workers: int = 1,
        chunk_size: int | None = None,
        resume_from: CampaignResult | None = None,
        stream_csv: str | Path | None = None,
        collect: bool = True,
    ) -> CampaignResult:
        """Execute the campaign and return a :class:`CampaignResult`.

        ``workers == 1`` runs inline (same code path as the pool workers);
        any worker count produces identical metrics for the same spec.

        Parameters
        ----------
        resume_from:
            A previous (possibly partial) result for the same spec: chains
            whose cells are all present there (matched by cell seed + full
            parameter point + method) are reused instead of re-run, and
            the reused cells are merged into the returned result.
        stream_csv:
            Append each finished cell to this CSV as its chain completes,
            instead of waiting for the whole campaign.
        collect:
            Keep per-cell results in memory.  ``False`` (with
            ``stream_csv``) runs arbitrarily large sweeps in bounded
            memory: the returned result then has no cells, only the
            wall-clock and ``streamed_cells`` accounting.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not collect and stream_csv is None:
            raise ValueError("collect=False requires stream_csv")
        chains = self.chains()
        spec_dict = self.spec.to_dict()
        t0 = time.perf_counter()

        reused: list[dict] = []
        if resume_from is not None:
            # Cell identities are (params, seed, method) -- meaningful only
            # when the results came from the same generator and campaign
            # seed; grid/replicate extensions are fine (extra chains just
            # find no match), but a different generator or master seed
            # would silently reuse wrong systems.
            for field_name in ("generator", "seed", "base", "warm_start"):
                ours = spec_dict.get(field_name)
                theirs = resume_from.spec.get(field_name)
                if theirs != ours:
                    raise ValueError(
                        f"resume_from was produced with {field_name}="
                        f"{theirs!r}, campaign uses {ours!r}"
                    )
            index = {
                _cell_identity(c.params, c.seed, c.method): c
                for c in resume_from.cells
            }
            pending: list[dict] = []
            for chain in chains:
                cells = self._chain_cells_from(chain, index)
                if cells is None:
                    pending.append(chain)
                else:
                    reused.extend(cells)
            chains = pending

        stream = (
            _CellCsvStream(stream_csv, self.spec)
            if stream_csv is not None
            else None
        )
        tagged: list[dict] = []
        streamed = 0

        def consume(part: list[dict]) -> None:
            nonlocal streamed
            if stream is not None:
                stream.write(part)
                streamed += len(part)
            if collect:
                tagged.extend(part)

        try:
            if reused:
                consume(reused)
            if not chains:
                pass
            elif workers == 1 or len(chains) <= 1:
                for chain in chains:
                    consume(_run_chain(self.spec, chain))
            else:
                if chunk_size is None:
                    chunk_size = max(1, math.ceil(len(chains) / (workers * 4)))
                chunks = [
                    chains[i:i + chunk_size]
                    for i in range(0, len(chains), chunk_size)
                ]
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for part in pool.map(
                        _run_chunk, [(spec_dict, chunk) for chunk in chunks]
                    ):
                        consume(part)
        finally:
            if stream is not None:
                stream.close()

        wall = time.perf_counter() - t0
        tagged.sort(key=lambda item: item["order"])
        cells = [CellResult.from_dict(item["cell"]) for item in tagged]
        return CampaignResult(
            spec=spec_dict,
            cells=cells,
            workers=workers,
            wall_time_s=wall,
            streamed_cells=streamed,
            reused_cells=len(reused),
        )


def run_campaign(
    spec: CampaignSpec, *, workers: int = 1, chunk_size: int | None = None
) -> CampaignResult:
    """Convenience one-call front end to :class:`Campaign`."""
    return Campaign(spec).run(workers=workers, chunk_size=chunk_size)
