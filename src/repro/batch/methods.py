"""Registry of named analysis methods for campaign experiments.

A *method* maps a transaction system to a :class:`MethodOutcome`: the
schedulability verdict plus the accounting the campaign report aggregates
(outer rounds, inner fixed-point evaluations, warm-start usage).  The
built-in entries cover the paper's comparison axes:

``reduced``
    The holistic analysis with the reduced per-task bound (Sec. 3.1.2) and
    the paper's Jacobi outer update -- the method Table 3 traces.
``gauss_seidel``
    Same fixed point, Gauss-Seidel outer update: each fresh response feeds
    its successor within the round, converging in fewer (but individually
    costlier) rounds.  Runs the chain-aware dirty-set fast path: once a
    precedence chain's upstream prefix stabilizes, its tasks stop being
    re-solved (``fp_task_skips`` in the extras counts the savings).
``gauss_seidel_full``
    The same Gauss-Seidel fixed point without the dirty set -- every round
    re-solves every task (the PR 1 behavior, kept as the A/B reference for
    the campaign benchmarks).
``verdict``
    The verdict-mode pipeline (``AnalysisConfig(mode="verdict")``) over the
    incremental Gauss-Seidel analysis: deadline-ceiling early exits, cheap
    pre-filters, most-constrained-first sweeps.  Verdicts are identical to
    ``gauss_seidel`` (and ``reduced``); per-task accounting is not.  Marked
    *verdict-monotone*: along a utilization-scaled warm-start chain, a miss
    at one level implies a miss at every higher level, which lets the
    campaign engine bisect the sweep instead of solving every cell.
``exact``
    The holistic analysis with the exact scenario enumeration (Sec. 3.1.1);
    guard the combinatorics with small systems.
``dedicated``
    The classical special case :math:`(\\alpha, \\Delta, \\beta) = (1,0,0)`:
    every platform replaced by a dedicated full-speed processor (the
    optimistic baseline of benchmark E9/E16).
``compositional``
    The prior-art per-component admission ([12], [7] in the paper): each
    platform-local task set tested in isolation with
    :func:`repro.analysis.compositional.fp_component_schedulable`, blind to
    cross-platform offsets and jitters (benchmark E13's baseline).

Custom methods register with :func:`register_method`; under the default
``fork`` start method of the process pool, registrations made before
``Campaign.run`` are visible to the workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple

from repro.analysis import AnalysisConfig, analyze, analyze_dedicated
from repro.analysis.compositional import LocalTask, fp_component_schedulable
from repro.analysis.interfaces import SystemAnalysis
from repro.model.system import TransactionSystem
from repro.util.fixedpoint import fixed_point_stats, reseed_scope

__all__ = [
    "MethodInfo",
    "MethodOutcome",
    "available_methods",
    "holistic_method",
    "register_method",
    "reseed_jitters",
    "resolve_method",
]


@dataclass
class MethodOutcome:
    """What one method reports for one generated system."""

    #: The method's acceptance verdict.
    schedulable: bool
    #: Whether the method's iteration converged (always True for
    #: non-iterative methods).
    converged: bool = True
    #: Outer (dynamic-offset) rounds performed.
    outer_iterations: int = 0
    #: Inner fixed-point evaluations, divergent solves included.
    evaluations: int = 0
    #: Largest ``wcrt / deadline`` over the transactions (inf when some
    #: busy period failed to close; NaN when the method has no such notion).
    max_wcrt_ratio: float = float("nan")
    #: Whether the analysis resumed from a warm-start jitter vector.
    warm_started: bool = False
    #: Final jitter vector for warm-start chaining along a sweep; never
    #: serialized into cell results.
    jitters: dict[tuple[int, int], float] | None = None
    #: Method-specific extra scalars, copied verbatim into the cell result.
    extras: dict[str, Any] = field(default_factory=dict)


MethodFn = Callable[
    [TransactionSystem, "dict[tuple[int, int], float] | None"], MethodOutcome
]


class MethodInfo(NamedTuple):
    """Registry entry of one campaign method."""

    fn: MethodFn
    #: Whether the method accepts (and benefits from) a warm-start jitter
    #: vector chained along the sweep axis.
    supports_warm_start: bool
    #: Whether the method's verdict is monotone along a utilization-scaled
    #: sweep chain (unschedulable at level *u* implies unschedulable at
    #: every higher level).  Verdict-mode holistic methods set this; the
    #: campaign engine then bisects the sweep for the method's chains and
    #: infers the remaining verdicts instead of solving them.
    verdict_monotone: bool = False


def outcome_from_analysis(result: SystemAnalysis) -> MethodOutcome:
    """Convert a :class:`SystemAnalysis` into a :class:`MethodOutcome`."""
    ratio = max(
        (r / d if d > 0 else float("inf"))
        for r, d in zip(result.transaction_wcrt, result.transaction_deadline)
    )
    jitters = result.final_jitters()
    # A pre-filter-classified result carries cap/zero jitters, not the
    # converged least fixed point -- the caps sit *above* it, so handing
    # them to the next sweep level as a warm start would be unsound.
    usable_warm = (
        result.converged
        and result.prefilter is None
        and all(math.isfinite(v) for v in jitters.values())
    )
    return MethodOutcome(
        schedulable=result.schedulable,
        converged=result.converged,
        outer_iterations=result.outer_iterations,
        evaluations=result.evaluations,
        max_wcrt_ratio=ratio,
        warm_started=result.warm_started,
        jitters=jitters if usable_warm else None,
    )


def holistic_method(config: AnalysisConfig, *, dedicated: bool = False) -> MethodFn:
    """Build a campaign method running the holistic analysis with *config*.

    Exposed so benchmarks and experiments can register ad-hoc variants
    (kernel/update/incremental axes) with :func:`register_method`.
    """
    def run(
        system: TransactionSystem,
        warm_start: dict[tuple[int, int], float] | None,
    ) -> MethodOutcome:
        before = fixed_point_stats()
        if dedicated:
            # analyze_dedicated shares the input's transaction list with
            # its platform-swapped clone, so it must not mutate.
            result = analyze_dedicated(
                system, config=config, warm_start=warm_start
            )
        else:
            # Campaign generators produce a fresh system per cell (the
            # registry contract), so the defensive clone is skipped; the
            # derived offset/jitter fields are recomputed per analysis,
            # which keeps repeated method runs on one cell independent.
            result = analyze(
                system, config=config, warm_start=warm_start, in_place=True
            )
        stats = fixed_point_stats().delta(before)
        outcome = outcome_from_analysis(result)
        # Cross-checkable accounting: the driver-level counters must agree
        # with the per-result evaluations threaded up through the analyses.
        outcome.extras["fp_solves"] = stats.solves
        outcome.extras["fp_diverged"] = stats.diverged
        outcome.extras["fp_evaluations"] = stats.evaluations
        outcome.extras["fp_task_solves"] = result.task_solves
        outcome.extras["fp_task_skips"] = result.task_skips
        if config.mode == "verdict":
            # Verdict-layer accounting only exists in verdict mode; keeping
            # the keys out of exact-mode extras preserves the PR 3 cell
            # payload byte for byte.
            outcome.extras["fp_ceiling_exits"] = stats.ceiling_exits
            outcome.extras["fp_prefilter"] = result.prefilter or ""
        return outcome

    return run


def _compositional_method(
    system: TransactionSystem,
    warm_start: dict[tuple[int, int], float] | None,
) -> MethodOutcome:
    del warm_start  # per-component admission has no outer fixed point
    verdicts = []
    for m, platform in enumerate(system.platforms):
        local = [
            LocalTask(
                wcet=task.wcet,
                period=system.transactions[i].period,
                priority=task.priority,
                name=task.name,
            )
            for i, _j, task in system.tasks_on(m)
        ]
        verdicts.append(bool(fp_component_schedulable(local, platform)))
    return MethodOutcome(
        schedulable=all(verdicts),
        extras={"platforms_accepted": sum(verdicts), "platforms": len(verdicts)},
    )


#: name -> MethodInfo(fn, supports warm-start chaining, verdict-monotone)
_METHODS: dict[str, MethodInfo] = {
    "reduced": MethodInfo(
        holistic_method(AnalysisConfig(method="reduced")), True
    ),
    "gauss_seidel": MethodInfo(
        holistic_method(AnalysisConfig(method="reduced", update="gauss_seidel")),
        True,
    ),
    "gauss_seidel_full": MethodInfo(
        holistic_method(
            AnalysisConfig(
                method="reduced", update="gauss_seidel", incremental=False
            )
        ),
        True,
    ),
    "verdict": MethodInfo(
        holistic_method(
            AnalysisConfig(
                method="reduced", update="gauss_seidel", mode="verdict"
            )
        ),
        True,
        verdict_monotone=True,
    ),
    "exact": MethodInfo(holistic_method(AnalysisConfig(method="exact")), True),
    "dedicated": MethodInfo(
        holistic_method(AnalysisConfig(), dedicated=True), True
    ),
    "compositional": MethodInfo(_compositional_method, False),
}


def register_method(
    name: str,
    fn: MethodFn,
    *,
    supports_warm_start: bool = False,
    verdict_monotone: bool = False,
) -> None:
    """Register (or replace) a campaign method under *name*.

    Methods of one cell run in spec order on a *shared* system object.
    The built-in holistic methods analyze it in place, overwriting the
    Eq. 18-derived offset/jitter fields of non-first tasks (re-analysis is
    unaffected -- those fields are recomputed from scratch every run, which
    is why the built-ins can skip the defensive clone).  A custom method
    that reads raw task offsets/jitters should either be listed before the
    holistic methods or treat those fields as derived state.

    ``verdict_monotone`` declares the method's verdict monotone along a
    utilization-scaled sweep chain (see :class:`MethodInfo`); only set it
    for methods whose verdict can never flip back to schedulable as
    utilization grows -- the campaign engine will *infer* pruned verdicts
    from it.
    """
    _METHODS[name] = MethodInfo(fn, supports_warm_start, verdict_monotone)


def resolve_method(name: str) -> MethodInfo:
    """Look up a method; raises :class:`KeyError` with the known names."""
    try:
        return _METHODS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign method {name!r}; "
            f"known methods: {', '.join(sorted(_METHODS))}"
        ) from None


def available_methods() -> list[str]:
    """Sorted names of every registered method."""
    return sorted(_METHODS)


def reseed_jitters(
    name: str, system: TransactionSystem
) -> dict[tuple[int, int], float] | None:
    """Recover the warm-start jitter vector of *system* under method *name*.

    The chain-prefix resume machinery calls this for the last *completed*
    sweep level of a partial chain: the converged jitters are the least
    fixed point of that level's outer iteration, which is independent of
    the starting vector, so a cold re-solve reproduces exactly the jitters
    the original (possibly warm-started) run handed to the next level.
    Returns ``None`` for methods without warm-start support, or when the
    re-solve did not converge to a finite jitter vector (matching what the
    original run would have chained).

    The re-solve's cost is charged to the ``reseed_*`` counters of
    :mod:`repro.util.fixedpoint` instead of any reported cell.
    """
    info = resolve_method(name)
    if not info.supports_warm_start:
        return None
    with reseed_scope():
        outcome = info.fn(system, None)
    return outcome.jitters
