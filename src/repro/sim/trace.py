"""Simulation traces and response-time statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskStats", "SimTrace"]


@dataclass
class TaskStats:
    """Observed response times of one task (measured from transaction release).

    When ``keep_samples`` is set the individual responses are retained so
    quantiles and histograms can be computed; otherwise only the running
    aggregates are kept (constant memory).
    """

    count: int = 0
    max_response: float = 0.0
    min_response: float = float("inf")
    total_response: float = 0.0
    misses: int = 0  # completions after the transaction's end-to-end deadline
    keep_samples: bool = False
    samples: list[float] = field(default_factory=list)

    def record(self, response: float, deadline: float, is_last: bool) -> None:
        self.count += 1
        self.total_response += response
        if response > self.max_response:
            self.max_response = response
        if response < self.min_response:
            self.min_response = response
        if is_last and response > deadline + 1e-9:
            self.misses += 1
        if self.keep_samples:
            self.samples.append(response)

    @property
    def mean_response(self) -> float:
        return self.total_response / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Empirical response-time quantile; requires ``keep_samples``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q!r}")
        if not self.samples:
            raise ValueError(
                "no samples retained; simulate with keep_samples=True"
            )
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]


@dataclass
class SimTrace:
    """Aggregate outcome of one simulation run."""

    #: Per-task statistics keyed by (transaction index, task index).
    tasks: dict[tuple[int, int], TaskStats] = field(default_factory=dict)
    #: Simulated horizon.
    horizon: float = 0.0
    #: Number of transaction instances released (per transaction).
    released: list[int] = field(default_factory=list)
    #: Instances still in flight when the horizon was reached.
    in_flight: int = 0
    #: Optional event log [(time, kind, detail)], filled when requested.
    events: list[tuple[float, str, str]] = field(default_factory=list)
    #: Optional execution intervals [(platform, txn, task, start, end)],
    #: filled when ``record_intervals`` is set; consumed by the Gantt
    #: renderer.
    intervals: list[tuple[int, int, int, float, float]] = field(
        default_factory=list
    )

    #: Whether per-job samples are retained in every TaskStats.
    keep_samples: bool = False

    def stats(self, i: int, j: int) -> TaskStats:
        return self.tasks.setdefault(
            (i, j), TaskStats(keep_samples=self.keep_samples)
        )

    def max_response(self, i: int, j: int) -> float:
        """Largest observed response of task ``(i, j)`` (0 if never completed)."""
        st = self.tasks.get((i, j))
        return st.max_response if st else 0.0

    def total_misses(self) -> int:
        return sum(st.misses for st in self.tasks.values())

    def observed_end_to_end(self) -> dict[int, float]:
        """Max observed end-to-end response per transaction (last task's max)."""
        last: dict[int, int] = {}
        for (i, j) in self.tasks:
            last[i] = max(last.get(i, -1), j)
        return {i: self.tasks[(i, j)].max_response for i, j in last.items()}
