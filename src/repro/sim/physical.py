"""The global scheduler: budget servers sharing one physical processor.

The paper's deployment (Sec. 2.3): "the mechanism that implements the
abstract platforms upon the physical platform is the global scheduler",
e.g. an aperiodic-server algorithm.  The rest of :mod:`repro.sim` realizes
each abstract platform with an *independent* supply process; this module
closes the loop by actually scheduling the servers' budgets on a shared
physical CPU and deriving each server's supply windows from that one
timeline -- the two-level scheduling hierarchy, executed.

Two global policies are provided:

* ``"edf"`` -- budgets are jobs with deadline at the period end (the
  CBS-style deployment); feasible whenever the total server utilization is
  at most the CPU capacity, hence the natural choice for fully booked
  processors like the paper's example (0.4 + 0.4 + 0.2 = 1.0).
* ``"fp"`` -- servers have fixed priorities (rate-monotonic by default).

The derived supplies are *compliant*: as long as every budget job finishes
within its period (checked, and guaranteed under EDF at utilization <= 1),
each server delivers its full budget once per period somewhere within the
period -- exactly the pattern whose worst case is the 2(P-Q) blackout of
the periodic-server envelope.  :func:`schedule_servers` returns one
:class:`WindowSupply` per server, ready to be passed to the
:class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.platforms.periodic_server import PeriodicServer
from repro.sim.supply import SupplyProcess
from repro.util.validation import check_positive

__all__ = ["WindowSupply", "GlobalScheduleResult", "schedule_servers"]

_INF = float("inf")


class WindowSupply(SupplyProcess):
    """Supply defined by an explicit sorted list of half-open ON windows."""

    def __init__(self, windows: list[tuple[float, float]]) -> None:
        cleaned: list[tuple[float, float]] = []
        for s, e in sorted(windows):
            if e <= s:
                continue
            if cleaned and s <= cleaned[-1][1] + 1e-12:
                cleaned[-1] = (cleaned[-1][0], max(cleaned[-1][1], e))
            else:
                cleaned.append((s, e))
        self.windows = cleaned

    def rate_at(self, t: float) -> float:
        for s, e in self.windows:
            if s <= t < e:
                return 1.0
            if s > t:
                break
        return 0.0

    def next_change(self, t: float) -> float:
        for s, e in self.windows:
            if s > t:
                return s
            if e > t:
                return e
        return _INF

    def delivered(self, a: float, b: float) -> float:
        """Cycles supplied in ``[a, b)``."""
        total = 0.0
        for s, e in self.windows:
            total += max(0.0, min(b, e) - max(a, s))
        return total


@dataclass
class GlobalScheduleResult:
    """Outcome of scheduling servers on one physical CPU."""

    #: One supply per server, index-aligned with the input list.
    supplies: list[WindowSupply]
    #: True when every budget job completed within its period.
    feasible: bool
    #: Worst observed budget-completion lateness relative to the period end
    #: (negative = margin, positive = overrun).
    worst_lateness: float
    #: Fraction of CPU time left idle over the horizon.
    idle_fraction: float


def schedule_servers(
    servers: list[PeriodicServer],
    horizon: float,
    *,
    policy: str = "edf",
    priorities: list[int] | None = None,
    speed: float = 1.0,
) -> GlobalScheduleResult:
    """Schedule the servers' budget jobs on one CPU and derive supplies.

    Each server releases a budget job of size :math:`Q` at every period
    start with deadline at the period end.  Jobs are scheduled preemptively
    under the chosen *policy*; the execution windows of server *k*'s jobs
    become its supply process.

    Parameters
    ----------
    servers:
        The reservations to host.  Total utilization above *speed* is
        rejected outright (no policy can deliver the budgets).
    horizon:
        Timeline length to precompute.  Simulations must not run past it.
    policy:
        ``"edf"`` (deadline = period end) or ``"fp"`` (fixed priorities;
        rate-monotonic if *priorities* is not given).
    speed:
        Physical processor speed (cycles per time unit).
    """
    check_positive(horizon, "horizon")
    if policy not in ("edf", "fp"):
        raise ValueError(f"unknown global policy {policy!r}")
    if not servers:
        raise ValueError("need at least one server")
    total_util = sum(s.budget / s.period for s in servers)
    if total_util > speed + 1e-9:
        raise ValueError(
            f"total server utilization {total_util:.4f} exceeds the physical "
            f"speed {speed}; the budgets are not deliverable"
        )
    if priorities is None:
        # Rate-monotonic: shortest period -> greatest priority.
        order = sorted(range(len(servers)), key=lambda k: servers[k].period)
        priorities = [0] * len(servers)
        for rank, k in enumerate(order):
            priorities[k] = len(servers) - rank
    elif len(priorities) != len(servers):
        raise ValueError("one priority per server required")

    # Job state per server: remaining budget of the current period.
    n = len(servers)
    windows: list[list[tuple[float, float]]] = [[] for _ in range(n)]
    remaining = [0.0] * n
    abs_deadline = [0.0] * n
    # Release heap: (time, server index).
    releases: list[tuple[float, int]] = [(0.0, k) for k in range(n)]
    heapq.heapify(releases)

    t = 0.0
    busy_time = 0.0
    worst_lateness = -_INF

    def pick() -> int | None:
        ready = [k for k in range(n) if remaining[k] > 1e-12]
        if not ready:
            return None
        if policy == "edf":
            return min(ready, key=lambda k: (abs_deadline[k], k))
        return min(ready, key=lambda k: (-priorities[k], k))

    while t < horizon:
        # Release every job due now.
        while releases and releases[0][0] <= t + 1e-12:
            rt, k = heapq.heappop(releases)
            if remaining[k] > 1e-12:
                # Previous budget not delivered by its period end.
                worst_lateness = max(worst_lateness, rt - abs_deadline[k])
            remaining[k] = servers[k].budget  # cycles
            abs_deadline[k] = rt + servers[k].period
            heapq.heappush(releases, (rt + servers[k].period, k))
        runner = pick()
        next_release = releases[0][0] if releases else _INF
        if runner is None:
            t = min(next_release, horizon)
            continue
        completion = t + remaining[runner] / speed
        t_next = min(completion, next_release, horizon)
        if t_next > t:
            windows[runner].append((t, t_next))
            executed = (t_next - t) * speed
            remaining[runner] -= executed
            busy_time += t_next - t
            if remaining[runner] <= 1e-12:
                worst_lateness = max(worst_lateness, t_next - abs_deadline[runner])
        t = t_next

    supplies = [WindowSupply(w) for w in windows]
    feasible = worst_lateness <= 1e-9
    return GlobalScheduleResult(
        supplies=supplies,
        feasible=feasible,
        worst_lateness=worst_lateness if worst_lateness != -_INF else 0.0,
        idle_fraction=max(0.0, 1.0 - busy_time / horizon),
    )
