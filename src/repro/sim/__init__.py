"""Discrete-event simulation of hierarchical scheduling.

The validation substrate for the analysis of Section 3: transactions are
executed on concrete realizations of the abstract platforms (budget/period
servers, TDM partitions, fluid shares), with preemptive fixed-priority (or
EDF) local scheduling and precedence chaining across platforms -- the
run-time system the paper assumes a middleware/OS provides.

Key invariant (asserted by the property tests and benchmark E8): for any
compliant supply pattern and any release phasing, every *observed* response
time is bounded by the *analytic* worst case.

* :mod:`repro.sim.supply` -- concrete supply processes compliant with each
  platform's supply bounds.
* :mod:`repro.sim.engine` -- the event-driven simulator core.
* :mod:`repro.sim.trace` -- response-time statistics and deadline-miss
  accounting.
* :mod:`repro.sim.workload` -- release-phasing policies.
* :mod:`repro.sim.validate` -- one-call comparison against the analysis.
"""

from repro.sim.engine import SimulationConfig, Simulator, simulate
from repro.sim.supply import (
    AlwaysOnSupply,
    FluidSupply,
    PartitionSupply,
    ServerSupply,
    SupplyProcess,
    supply_for_platform,
)
from repro.sim.physical import (
    GlobalScheduleResult,
    WindowSupply,
    schedule_servers,
)
from repro.sim.trace import SimTrace, TaskStats
from repro.sim.workload import ReleasePolicy
from repro.sim.validate import ValidationReport, validate_against_analysis

__all__ = [
    "SimulationConfig",
    "Simulator",
    "simulate",
    "SupplyProcess",
    "AlwaysOnSupply",
    "FluidSupply",
    "ServerSupply",
    "PartitionSupply",
    "supply_for_platform",
    "GlobalScheduleResult",
    "WindowSupply",
    "schedule_servers",
    "SimTrace",
    "TaskStats",
    "ReleasePolicy",
    "ValidationReport",
    "validate_against_analysis",
]
