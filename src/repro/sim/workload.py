"""Release-phasing policies for simulation runs.

The analytic worst case is attained (or approached) under specific critical
phasings; simulation explores the space of *legal* phasings: synchronous
release, deterministic per-transaction phases, or seeded random phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ReleasePolicy"]


@dataclass
class ReleasePolicy:
    """How transaction releases are phased.

    Parameters
    ----------
    mode:
        ``"synchronous"`` -- all transactions first released at time 0;
        ``"phased"`` -- transaction *i* first released at ``phases[i]``;
        ``"random"`` -- first releases drawn uniformly in ``[0, period)``.
    phases:
        Per-transaction initial offsets for ``"phased"`` mode.
    seed:
        RNG seed for ``"random"`` mode.
    """

    mode: str = "synchronous"
    phases: list[float] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("synchronous", "phased", "random"):
            raise ValueError(f"unknown release mode {self.mode!r}")

    def initial_releases(self, periods: list[float]) -> list[float]:
        """First release time of each transaction."""
        n = len(periods)
        if self.mode == "synchronous":
            return [0.0] * n
        if self.mode == "phased":
            if len(self.phases) != n:
                raise ValueError(
                    f"phased release needs {n} phases, got {len(self.phases)}"
                )
            if any(p < 0 for p in self.phases):
                raise ValueError("phases must be non-negative")
            return [float(p) for p in self.phases]
        rng = np.random.default_rng(self.seed)
        return [float(rng.uniform(0.0, T)) for T in periods]
