"""Concrete supply processes realizing abstract platforms.

A :class:`SupplyProcess` answers two questions the simulator core asks:
what is the service *rate* at time ``t`` (0 when the platform is off), and
when does the rate next change.  Every process here is *compliant* with the
supply bounds of the platform it realizes: over any window, the delivered
cycles lie between ``zmin`` and ``zmax`` -- which is precisely why observed
response times can never exceed the analytic bounds.

Realizations:

* :class:`AlwaysOnSupply` -- a dedicated processor of some speed.
* :class:`FluidSupply` -- an idealized fractional share (rate
  :math:`\\alpha` at every instant); compliant with any platform of rate
  :math:`\\alpha` since :math:`\\alpha t` lies between the envelopes.
* :class:`ServerSupply` -- one budget window of length :math:`Q` per period
  :math:`P`, placed early, late, or at a (seeded) random position -- the
  placement degree of freedom is exactly the "on-line conditions" of the
  paper's Figure 3.
* :class:`PartitionSupply` -- a cyclic TDM table.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.platforms.base import AbstractPlatform
from repro.platforms.partition import StaticPartitionPlatform
from repro.platforms.periodic_server import PeriodicServer

__all__ = [
    "SupplyProcess",
    "AlwaysOnSupply",
    "FluidSupply",
    "ServerSupply",
    "PartitionSupply",
    "supply_for_platform",
]

_INF = float("inf")


class SupplyProcess(abc.ABC):
    """Service rate as a piecewise-constant function of time."""

    @abc.abstractmethod
    def rate_at(self, t: float) -> float:
        """Execution speed granted at time *t* (cycles per time unit)."""

    @abc.abstractmethod
    def next_change(self, t: float) -> float:
        """First instant strictly after *t* where :meth:`rate_at` changes.

        ``inf`` when the rate is constant forever after *t*.
        """


class AlwaysOnSupply(SupplyProcess):
    """A dedicated processor running at *speed* forever."""

    def __init__(self, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        self.speed = float(speed)

    def rate_at(self, t: float) -> float:
        return self.speed

    def next_change(self, t: float) -> float:
        return _INF


class FluidSupply(AlwaysOnSupply):
    """An idealized fractional share: constant rate :math:`\\alpha < 1`.

    Used to realize bare :class:`~repro.platforms.linear.LinearSupplyPlatform`
    triples, whose fluid supply :math:`\\alpha t` trivially satisfies
    :math:`\\max(0, \\alpha(t-\\Delta)) \\le \\alpha t \\le \\beta+\\alpha t`.
    """


class ServerSupply(SupplyProcess):
    """Budget :math:`Q` delivered contiguously once per period :math:`P`.

    Parameters
    ----------
    budget, period:
        The reservation.
    placement:
        ``"early"`` -- window at each period start (maximizes early supply);
        ``"late"`` -- window at each period end (realizes the worst-case
        blackout when preceded by an early window);
        ``"random"`` -- independent uniform placement per period (seeded).
    rng:
        NumPy generator for ``"random"`` placement.
    """

    def __init__(
        self,
        budget: float,
        period: float,
        *,
        placement: str = "random",
        rng: np.random.Generator | None = None,
    ) -> None:
        if budget <= 0 or period <= 0 or budget > period:
            raise ValueError(
                f"invalid server parameters Q={budget!r}, P={period!r}"
            )
        if placement not in ("early", "late", "random"):
            raise ValueError(f"unknown placement {placement!r}")
        self.budget = float(budget)
        self.period = float(period)
        self.placement = placement
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._offsets: dict[int, float] = {}

    def _offset(self, k: int) -> float:
        """Start of the budget window within period *k*, relative to ``kP``."""
        slack = self.period - self.budget
        if self.placement == "early":
            return 0.0
        if self.placement == "late":
            return slack
        got = self._offsets.get(k)
        if got is None:
            got = float(self._rng.uniform(0.0, slack)) if slack > 0 else 0.0
            self._offsets[k] = got
        return got

    def _window(self, k: int) -> tuple[float, float]:
        start = k * self.period + self._offset(k)
        return start, start + self.budget

    def rate_at(self, t: float) -> float:
        # floor(t / P) can misround by one period when t sits exactly on a
        # boundary (t = k*P computed as a float): with early placement the
        # event walk lands on those boundaries every period, and resolving
        # only period k made the simulator lose entire budget windows (the
        # differential harness caught this as analysis-bound violations).
        k = int(math.floor(t / self.period))
        for kk in (k - 1, k, k + 1):
            s, e = self._window(kk)
            if s <= t < e:
                return 1.0
        return 0.0

    def next_change(self, t: float) -> float:
        k = int(math.floor(t / self.period))
        for kk in (k - 1, k, k + 1):
            s, e = self._window(kk)
            if s > t:
                return s
            if e > t:
                return e
        return (k + 2) * self.period + self._offset(k + 2)  # pragma: no cover


class PartitionSupply(SupplyProcess):
    """A cyclic TDM slot table (full speed inside slots, off outside)."""

    def __init__(self, slots: list[tuple[float, float]], cycle: float) -> None:
        # Reuse the platform's validation.
        self._platform = StaticPartitionPlatform(slots, cycle)
        self.cycle = float(cycle)
        self.slots = self._platform.slots

    def rate_at(self, t: float) -> float:
        rem = t - math.floor(t / self.cycle) * self.cycle
        for start, length in self.slots:
            if start <= rem < start + length:
                return 1.0
        return 0.0

    def next_change(self, t: float) -> float:
        base = math.floor(t / self.cycle) * self.cycle
        rem = t - base
        boundaries: list[float] = []
        for start, length in self.slots:
            boundaries.extend((start, start + length))
        for b in sorted(boundaries):
            if b > rem + 1e-12:
                return base + b
        return base + self.cycle + min(b for b in boundaries if b >= 0)


def supply_for_platform(
    platform: AbstractPlatform,
    *,
    placement: str = "random",
    rng: np.random.Generator | None = None,
) -> SupplyProcess:
    """Build a compliant supply process for *platform*.

    * :class:`~repro.platforms.periodic_server.PeriodicServer` (and its
      reservation subclasses) map to :class:`ServerSupply`.
    * :class:`~repro.platforms.partition.StaticPartitionPlatform` maps to
      :class:`PartitionSupply`.
    * Dedicated platforms (rate 1, no delay) map to :class:`AlwaysOnSupply`.
    * Other linear triples: when the delay is positive, a periodic server
      with the same rate and worst-case blackout is synthesized
      (:math:`P = \\Delta / (2(1-\\alpha))`, :math:`Q = \\alpha P`) --
      *provided* its double-hit burst :math:`2Q(1-\\alpha)` stays within the
      platform's advertised burstiness, so the realized supply respects
      **both** envelopes.  When the burst budget is too small for that
      server (or the delay is zero), the fluid share is used instead: its
      supply :math:`\\alpha t` is compliant with any
      :math:`(\\alpha, \\Delta \\ge 0, \\beta \\ge 0)`.
    """
    if isinstance(platform, PeriodicServer):
        return ServerSupply(
            platform.budget, platform.period, placement=placement, rng=rng
        )
    if isinstance(platform, StaticPartitionPlatform):
        return PartitionSupply(
            [(s, l) for s, l in platform.slots], platform.cycle
        )
    alpha, delta, beta = platform.triple()
    if alpha >= 1.0 and delta == 0.0:
        return AlwaysOnSupply(speed=alpha)
    if delta <= 0.0:
        return FluidSupply(speed=alpha)
    if alpha >= 1.0:
        # Super-unit rates (network links measured in bytes/time) with a
        # positive delay: the fluid stream at the advertised rate is the
        # compliant realization (alpha*t sits between both envelopes).
        return FluidSupply(speed=alpha)
    period = delta / (2.0 * (1.0 - alpha))
    budget = alpha * period
    if 2.0 * budget * (1.0 - alpha) > beta + 1e-12:
        # The delay-matched server would burst past the advertised beta;
        # the fluid share is the compliant realization.
        return FluidSupply(speed=alpha)
    return ServerSupply(budget, period, placement=placement, rng=rng)
