"""Event-driven simulator core.

State: per platform, a set of *ready jobs* and the currently running job;
per transaction, a stream of periodic releases.  Between two consecutive
events the running job of each platform advances at the platform's current
supply rate (piecewise constant by construction of
:mod:`repro.sim.supply`), so exact completion instants can be predicted and
no time-stepping error is introduced.

Event kinds (implicit -- the loop simply advances to the earliest of):

* the next transaction release,
* the next supply-rate change on any platform,
* the predicted completion of any running job.

Scheduling is preemptive: after every event each platform runs its
highest-priority ready job (fixed priority; ties broken by earliest ready
time, then transaction index -- deterministic).  EDF local scheduling
orders by absolute deadline instead, honouring the per-component policy of
the derived system when task metadata carries one.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.model.system import TransactionSystem
from repro.sim.supply import SupplyProcess, supply_for_platform
from repro.sim.trace import SimTrace
from repro.sim.workload import ReleasePolicy

__all__ = ["SimulationConfig", "Simulator", "simulate"]

_EPS = 1e-9
_INF = float("inf")


@dataclass
class SimulationConfig:
    """Simulation knobs.

    Parameters
    ----------
    horizon:
        Simulated time span.  Defaults (when ``None``) to 50 times the
        largest transaction period.
    release:
        Release-phasing policy.
    placement:
        Budget-window placement passed to the server supplies
        (``"early"``/``"late"``/``"random"``).
    seed:
        Master seed; supplies and the release policy derive their streams
        from it.
    scheduler:
        ``"fixed_priority"`` (default) or ``"edf"`` -- the local policy used
        on every platform.
    execution:
        How much work each job actually performs: ``"wcet"`` (default,
        worst case), ``"bcet"`` (best case) or ``"uniform"`` (seeded draw
        in ``[bcet, wcet]`` per job).  Varying execution times exercise the
        best-case bounds and the jitter propagation.
    record_events:
        Keep a full event log in the trace (slow; for debugging).
    record_intervals:
        Record per-platform execution intervals for Gantt rendering
        (:func:`repro.viz.gantt.render_gantt`).
    keep_samples:
        Retain every observed response time per task (enables quantiles and
        histograms; memory grows with the horizon).
    """

    horizon: float | None = None
    release: ReleasePolicy = field(default_factory=ReleasePolicy)
    placement: str = "random"
    seed: int = 0
    scheduler: str = "fixed_priority"
    execution: str = "wcet"
    record_events: bool = False
    record_intervals: bool = False
    keep_samples: bool = False

    def __post_init__(self) -> None:
        if self.scheduler not in ("fixed_priority", "edf"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.placement not in ("early", "late", "random"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.execution not in ("wcet", "bcet", "uniform"):
            raise ValueError(f"unknown execution policy {self.execution!r}")


@dataclass
class _Job:
    txn: int
    idx: int
    release: float  # transaction release time
    remaining: float  # cycles left
    priority: int
    abs_deadline: float
    ready: float  # instant this job became ready
    uid: int  # global tie-breaker


class Simulator:
    """Executable instance of a transaction system.

    Create, then call :meth:`run`.  A simulator is single-use: ``run`` may
    only be called once per instance.
    """

    def __init__(
        self,
        system: TransactionSystem,
        config: SimulationConfig | None = None,
        *,
        supplies: list[SupplyProcess] | None = None,
    ) -> None:
        self.system = system
        self.config = config or SimulationConfig()
        rng = np.random.default_rng(self.config.seed)
        if supplies is None:
            supplies = [
                supply_for_platform(
                    p,
                    placement=self.config.placement,
                    rng=np.random.default_rng(rng.integers(0, 2**63)),
                )
                for p in system.platforms
            ]
        if len(supplies) != len(system.platforms):
            raise ValueError(
                f"{len(supplies)} supplies for {len(system.platforms)} platforms"
            )
        self.supplies = supplies
        self._exec_rng = np.random.default_rng(
            np.random.default_rng(self.config.seed + 1).integers(0, 2**63)
        )
        self._ran = False

    def _demand(self, task) -> float:
        """Cycles one job of *task* executes under the execution policy."""
        policy = self.config.execution
        if policy == "wcet":
            return task.wcet
        if policy == "bcet":
            return task.bcet
        if task.bcet >= task.wcet:
            return task.wcet
        return float(self._exec_rng.uniform(task.bcet, task.wcet))

    # -- scheduling order ---------------------------------------------------------

    def _key(self, job: _Job) -> tuple:
        if self.config.scheduler == "edf":
            return (job.abs_deadline, job.ready, job.uid)
        # Fixed priority: greater number = higher priority.
        return (-job.priority, job.ready, job.uid)

    # -- main loop ------------------------------------------------------------------

    def run(self) -> SimTrace:
        """Simulate and return the trace."""
        if self._ran:
            raise RuntimeError("Simulator instances are single-use; create a new one")
        self._ran = True

        system = self.system
        cfg = self.config
        n_txn = len(system.transactions)
        horizon = (
            cfg.horizon
            if cfg.horizon is not None
            else 50.0 * max(tr.period for tr in system.transactions)
        )

        trace = SimTrace(
            horizon=horizon, released=[0] * n_txn, keep_samples=cfg.keep_samples
        )
        uid_counter = itertools.count()

        periods = [tr.period for tr in system.transactions]
        next_release = cfg.release.initial_releases(periods)

        ready: list[list[_Job]] = [[] for _ in system.platforms]
        running: list[_Job | None] = [None] * len(system.platforms)

        def log(t: float, kind: str, detail: str) -> None:
            if cfg.record_events:
                trace.events.append((t, kind, detail))

        def enqueue(job: _Job, t: float) -> None:
            ready[system.transactions[job.txn].tasks[job.idx].platform].append(job)
            log(t, "ready", f"txn{job.txn}.task{job.idx}")

        def pick(m: int) -> None:
            if ready[m]:
                ready[m].sort(key=self._key)
                running[m] = ready[m][0]
            else:
                running[m] = None

        def release_transaction(i: int, t: float) -> None:
            tr = system.transactions[i]
            task = tr.tasks[0]
            job = _Job(
                txn=i,
                idx=0,
                release=t,
                remaining=self._demand(task),
                priority=task.priority,
                abs_deadline=t + float(tr.deadline),
                ready=t,
                uid=next(uid_counter),
            )
            trace.released[i] += 1
            enqueue(job, t)

        t = 0.0
        # Prime releases occurring exactly at their initial instants.
        while t <= horizon + _EPS:
            # 1) release everything due now.
            for i in range(n_txn):
                while next_release[i] <= t + _EPS:
                    release_transaction(i, next_release[i])
                    next_release[i] += periods[i]
            # 2) elect runners.
            for m in range(len(system.platforms)):
                pick(m)
            # 3) find the next event time.
            t_next = min(next_release)
            for m, sup in enumerate(self.supplies):
                boundary = sup.next_change(t)
                t_next = min(t_next, boundary)
                job = running[m]
                if job is not None:
                    rate = sup.rate_at(t)
                    if rate > 0.0:
                        completion = t + job.remaining / rate
                        # Only trust the prediction up to the next supply
                        # boundary; the loop will re-predict after it.
                        t_next = min(t_next, completion)
            if t_next <= t + _EPS:
                t_next = t + _EPS  # defensive: guarantee progress
            if t_next > horizon:
                break
            # 4) advance running jobs.
            dt = t_next - t
            for m, sup in enumerate(self.supplies):
                job = running[m]
                if job is not None:
                    rate = sup.rate_at(t)
                    job.remaining -= rate * dt
                    if cfg.record_intervals and rate > 0.0 and dt > _EPS:
                        trace.intervals.append(
                            (m, job.txn, job.idx, t, t_next)
                        )
            t = t_next
            # 5) retire completed jobs.
            for m in range(len(system.platforms)):
                job = running[m]
                if job is not None and job.remaining <= _EPS:
                    ready[m].remove(job)
                    running[m] = None
                    tr = system.transactions[job.txn]
                    response = t - job.release
                    is_last = job.idx == len(tr.tasks) - 1
                    trace.stats(job.txn, job.idx).record(
                        response, float(tr.deadline), is_last
                    )
                    log(t, "done", f"txn{job.txn}.task{job.idx} R={response:.4f}")
                    if not is_last:
                        nxt = tr.tasks[job.idx + 1]
                        enqueue(
                            _Job(
                                txn=job.txn,
                                idx=job.idx + 1,
                                release=job.release,
                                remaining=self._demand(nxt),
                                priority=nxt.priority,
                                abs_deadline=job.abs_deadline,
                                ready=t,
                                uid=next(uid_counter),
                            ),
                            t,
                        )

        trace.in_flight = sum(len(q) for q in ready)
        return trace


def simulate(
    system: TransactionSystem,
    *,
    config: SimulationConfig | None = None,
    supplies: list[SupplyProcess] | None = None,
) -> SimTrace:
    """One-call wrapper: build a :class:`Simulator` and run it."""
    return Simulator(system, config, supplies=supplies).run()
