"""Simulation-versus-analysis validation.

Runs the simulator under several seeds/placements/phasings and checks the
fundamental soundness invariant of the reproduction: **no observed response
time exceeds the analytic worst-case bound** (and, symmetrically, none falls
below the best-case bound).  Benchmark E8 reports the resulting tightness
ratios; the property tests assert the invariant on random systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.interfaces import AnalysisConfig, SystemAnalysis
from repro.analysis.schedulability import analyze
from repro.model.system import TransactionSystem
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.workload import ReleasePolicy

__all__ = ["ValidationReport", "validate_against_analysis"]


@dataclass
class ValidationReport:
    """Outcome of the sim-vs-analysis comparison."""

    #: max observed response per task, over all runs.
    observed: dict[tuple[int, int], float]
    #: analytic worst-case bound per task.
    bound: dict[tuple[int, int], float]
    #: analytic best-case bound per task.
    best: dict[tuple[int, int], float]
    #: tasks whose observation exceeded the bound (should be empty).
    violations: list[tuple[int, int]] = field(default_factory=list)
    #: tasks observed below the best-case bound (should be empty).
    best_violations: list[tuple[int, int]] = field(default_factory=list)
    runs: int = 0
    analysis: SystemAnalysis | None = None

    @property
    def sound(self) -> bool:
        """True when no bound was violated in any run."""
        return not self.violations and not self.best_violations

    def tightness(self, i: int, j: int) -> float:
        """observed / bound for task (i, j); 0 when never observed."""
        b = self.bound[(i, j)]
        if b == 0 or b != b or b == float("inf"):
            return 0.0
        return self.observed.get((i, j), 0.0) / b


def validate_against_analysis(
    system: TransactionSystem,
    *,
    seeds: tuple[int, ...] = (0, 1, 2),
    placements: tuple[str, ...] = ("early", "late", "random"),
    release_modes: tuple[str, ...] = ("synchronous", "random"),
    horizon: float | None = None,
    analysis_config: AnalysisConfig | None = None,
    tol: float = 1e-6,
) -> ValidationReport:
    """Cross-validate the analysis against simulation on *system*.

    Every combination of seed, budget-window placement and release phasing
    is simulated; the per-task maxima are compared with the analytic
    bounds.  Transactions whose analytic bound is infinite (unschedulable)
    are skipped in the comparison -- simulation cannot refute an infinite
    bound.

    Unless an explicit *analysis_config* is given, the analysis runs with
    the envelope-correct ``best_case="sound"`` bound: the paper's published
    best-case formula is not a valid lower bound against compliant bursty
    supplies (see :mod:`repro.analysis.bestcase`), so checking observations
    against it would produce false violations.
    """
    if analysis_config is None:
        analysis_config = AnalysisConfig(best_case="sound")
    result = analyze(system, config=analysis_config)
    bound = {k: v.wcrt for k, v in result.tasks.items()}
    best = {k: v.bcrt for k, v in result.tasks.items()}

    observed: dict[tuple[int, int], float] = {}
    min_observed: dict[tuple[int, int], float] = {}
    runs = 0
    for seed in seeds:
        for placement in placements:
            for mode in release_modes:
                cfg = SimulationConfig(
                    horizon=horizon,
                    seed=seed,
                    placement=placement,
                    release=ReleasePolicy(mode=mode, seed=seed),
                )
                trace = simulate(system, config=cfg)
                runs += 1
                for key, st in trace.tasks.items():
                    observed[key] = max(observed.get(key, 0.0), st.max_response)
                    min_observed[key] = min(
                        min_observed.get(key, float("inf")), st.min_response
                    )

    violations = [
        key
        for key, obs in observed.items()
        if obs > bound[key] + tol and bound[key] != float("inf")
    ]
    best_violations = [
        key
        for key, obs in min_observed.items()
        if obs < best[key] - tol
    ]
    return ValidationReport(
        observed=observed,
        bound=bound,
        best=best,
        violations=sorted(violations),
        best_violations=sorted(best_violations),
        runs=runs,
        analysis=result,
    )
