"""Random layered component assemblies.

Exercises the Sec. 2.4 transform on non-trivial topologies: *client*
components with periodic threads call into a layer of *server* components,
which may in turn call a deeper layer -- always downward, so the call graph
is acyclic by construction.  Each server's provided MIT is set to the
fastest caller period divided by the number of call sites, guaranteeing the
MIT validation passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.components.assembly import SystemAssembly
from repro.components.component import Component
from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.threads import CallStep, EventThread, PeriodicThread, TaskStep
from repro.platforms.linear import LinearSupplyPlatform

__all__ = ["RandomAssemblySpec", "random_assembly"]


@dataclass(frozen=True)
class RandomAssemblySpec:
    """Parameters of :func:`random_assembly`."""

    n_layers: int = 2          # 1 client layer + (n_layers - 1) server layers
    clients_per_layer: int = 2
    calls_per_thread: tuple[int, int] = (1, 2)
    period_range: tuple[float, float] = (50.0, 400.0)
    wcet_range: tuple[float, float] = (0.5, 3.0)
    rate_range: tuple[float, float] = (0.3, 0.9)
    delay_range: tuple[float, float] = (0.0, 2.0)

    def __post_init__(self) -> None:
        if self.n_layers < 1 or self.clients_per_layer < 1:
            raise ValueError("need at least one layer with one component")
        lo, hi = self.calls_per_thread
        if lo < 0 or hi < lo:
            raise ValueError(f"bad calls_per_thread {self.calls_per_thread!r}")


def random_assembly(
    spec: RandomAssemblySpec | None = None,
    *,
    seed: int | np.random.Generator = 0,
) -> SystemAssembly:
    """Draw a random acyclic component assembly (one platform per instance)."""
    spec = spec or RandomAssemblySpec()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    asm = SystemAssembly(name="random-assembly")
    # layer -> list of (instance name, provided method name or None)
    layers: list[list[tuple[str, str | None]]] = []

    # Build from the deepest layer up so callees exist when callers bind.
    min_period = spec.period_range[0]
    for depth in range(spec.n_layers - 1, -1, -1):
        layer: list[tuple[str, str | None]] = []
        for k in range(spec.clients_per_layer):
            iname = f"L{depth}C{k}"
            is_leafward = depth > 0  # servers in layers >= 1
            callees = layers[-1] if layers else []
            n_calls = (
                int(rng.integers(spec.calls_per_thread[0], spec.calls_per_thread[1] + 1))
                if callees
                else 0
            )
            chosen = (
                [callees[int(rng.integers(0, len(callees)))] for _ in range(n_calls)]
                if n_calls
                else []
            )
            required = []
            body: list = [
                TaskStep(
                    "work0",
                    wcet=float(rng.uniform(*spec.wcet_range)),
                    bcet=None,
                )
            ]
            for c_idx, (callee, method) in enumerate(chosen):
                req_name = f"call{c_idx}"
                # A very generous MIT: validated against the real rate later.
                required.append(RequiredMethod(req_name, mit=min_period / 8.0))
                body.append(CallStep(req_name))
            body.append(
                TaskStep(
                    "work1",
                    wcet=float(rng.uniform(*spec.wcet_range)),
                    bcet=None,
                )
            )

            if is_leafward:
                # Server component: provides one method realized by an event
                # thread with the body above.  MIT sized for the worst case:
                # every possible caller thread calling at the fastest period.
                mit = min_period / (8.0 * spec.clients_per_layer * spec.calls_per_thread[1])
                comp = Component(
                    name=f"Server{depth}_{k}",
                    provided=[ProvidedMethod("serve", mit=mit)],
                    required=required,
                    threads=[
                        EventThread(
                            name="handler",
                            realizes="serve",
                            priority=1 + int(rng.integers(0, 3)),
                            body=tuple(body),
                        )
                    ],
                )
                layer.append((iname, "serve"))
            else:
                period = float(
                    np.exp(
                        rng.uniform(
                            np.log(spec.period_range[0]),
                            np.log(spec.period_range[1]),
                        )
                    )
                )
                comp = Component(
                    name=f"Client{k}",
                    provided=[],
                    required=required,
                    threads=[
                        PeriodicThread(
                            name="main",
                            period=period,
                            priority=1 + int(rng.integers(0, 3)),
                            body=tuple(body),
                        )
                    ],
                )
                layer.append((iname, None))

            asm.add_instance(iname, comp)
            pname = f"P_{iname}"
            asm.add_platform(
                pname,
                LinearSupplyPlatform(
                    rate=float(rng.uniform(*spec.rate_range)),
                    delay=float(rng.uniform(*spec.delay_range)),
                    burstiness=0.0,
                    name=pname,
                ),
            )
            asm.place(iname, platform=pname)
            for c_idx, (callee, method) in enumerate(chosen):
                asm.bind(iname, f"call{c_idx}", callee, method)
        layers.append(layer)

    return asm
