"""Random transaction systems with controlled per-platform utilization.

Generation recipe (the usual one for holistic-analysis papers, adapted to
abstract platforms):

1. draw platform triples: rates in ``rate_range``, delays in
   ``delay_range``, burstiness in ``burst_range``;
2. draw transaction periods log-uniformly in ``period_range``; deadlines
   equal periods times ``deadline_factor``;
3. assign each task of each transaction a platform (uniformly);
4. draw per-platform task utilizations with UUniFast at ``utilization``
   (interpreted *relative to the platform rate*, i.e. a platform of rate
   0.4 at utilization 0.8 carries demand 0.32 of a unit processor);
5. set ``wcet = u * rate * T`` and ``bcet = bcet_ratio * wcet``;
6. assign deadline-monotonic priorities per platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gen.uunifast import uunifast
from repro.model.priorities import assign_deadline_monotonic
from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.linear import LinearSupplyPlatform

__all__ = ["RandomSystemSpec", "random_system", "scale_system_utilization"]


@dataclass(frozen=True)
class RandomSystemSpec:
    """Parameters of :func:`random_system`."""

    n_platforms: int = 3
    n_transactions: int = 4
    tasks_per_transaction: tuple[int, int] = (1, 4)
    utilization: float = 0.5  # per platform, relative to its rate
    period_range: tuple[float, float] = (20.0, 500.0)
    deadline_factor: float = 1.0
    rate_range: tuple[float, float] = (0.2, 0.8)
    delay_range: tuple[float, float] = (0.0, 4.0)
    burst_range: tuple[float, float] = (0.0, 2.0)
    bcet_ratio: float = 0.6

    def __post_init__(self) -> None:
        if self.n_platforms < 1 or self.n_transactions < 1:
            raise ValueError("need at least one platform and one transaction")
        lo, hi = self.tasks_per_transaction
        if lo < 1 or hi < lo:
            raise ValueError(f"bad tasks_per_transaction {self.tasks_per_transaction!r}")
        if not (0.0 < self.utilization):
            raise ValueError("utilization must be positive")
        if not (0.0 < self.bcet_ratio <= 1.0):
            raise ValueError("bcet_ratio must lie in (0, 1]")


def random_system(
    spec: RandomSystemSpec | None = None,
    *,
    seed: int | np.random.Generator = 0,
) -> TransactionSystem:
    """Draw one random transaction system according to *spec*."""
    spec = spec or RandomSystemSpec()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    # Batched draws (one RNG call per parameter family, not one per value):
    # campaign sweeps generate hundreds of systems per second and the
    # per-call dispatch of tiny numpy draws dominated generation time.
    rates = rng.uniform(*spec.rate_range, spec.n_platforms)
    delays = rng.uniform(*spec.delay_range, spec.n_platforms)
    bursts = rng.uniform(*spec.burst_range, spec.n_platforms)
    platforms = [
        LinearSupplyPlatform(
            rate=float(rates[m]),
            delay=float(delays[m]),
            burstiness=float(bursts[m]),
            name=f"Pi{m + 1}",
        )
        for m in range(spec.n_platforms)
    ]

    periods = np.exp(
        rng.uniform(
            np.log(spec.period_range[0]),
            np.log(spec.period_range[1]),
            spec.n_transactions,
        )
    )
    lo, hi = spec.tasks_per_transaction
    sizes = rng.integers(lo, hi + 1, spec.n_transactions)

    # Pre-assign platforms so per-platform UUniFast can size the demand.
    flat_assignment = rng.integers(0, spec.n_platforms, int(sizes.sum()))
    assignment: list[list[int]] = []
    pos = 0
    for i in range(spec.n_transactions):
        n_i = int(sizes[i])
        assignment.append([int(m) for m in flat_assignment[pos:pos + n_i]])
        pos += n_i

    # Per platform: the list of (txn, pos) slots mapped to it.
    slots: dict[int, list[tuple[int, int]]] = {m: [] for m in range(spec.n_platforms)}
    for i, plat_list in enumerate(assignment):
        for j, m in enumerate(plat_list):
            slots[m].append((i, j))

    wcet: dict[tuple[int, int], float] = {}
    for m, slot_list in slots.items():
        if not slot_list:
            continue
        utils = uunifast(len(slot_list), spec.utilization, rng)
        rate = platforms[m].rate
        for (i, j), u in zip(slot_list, utils):
            # Demand in cycles: utilization is relative to the platform rate.
            wcet[(i, j)] = max(1e-6, float(u) * rate * float(periods[i]))

    transactions = []
    for i in range(spec.n_transactions):
        tasks = []
        for j in range(int(sizes[i])):
            c = wcet[(i, j)]
            # Values are valid by construction (wcet > 0 via the 1e-6
            # floor, bcet = ratio * wcet <= wcet with ratio in (0, 1]).
            tasks.append(
                Task.unchecked(
                    wcet=c,
                    bcet=spec.bcet_ratio * c,
                    platform=assignment[i][j],
                    priority=1,  # replaced by deadline-monotonic below
                    name=f"tau_{i + 1}_{j + 1}",
                )
            )
        transactions.append(
            Transaction(
                period=float(periods[i]),
                deadline=spec.deadline_factor * float(periods[i]),
                name=f"Gamma{i + 1}",
                tasks=tasks,
            )
        )

    system = TransactionSystem(
        transactions=transactions, platforms=platforms, name="random"
    )
    return assign_deadline_monotonic(system)


def scale_system_utilization(
    system: TransactionSystem, factor: float
) -> TransactionSystem:
    """*system* with every execution time scaled by *factor*.

    UUniFast is exactly linear in its total (``sums = total * factors``),
    so for a fixed seed the system :func:`random_system` draws at
    utilization ``u2`` equals the one drawn at ``u1`` with all wcet/bcet
    multiplied by ``u2/u1`` -- periods, platforms, offsets and priorities
    are utilization-independent.  Campaign sweep chains (and their shard /
    prefix-resume replays, which must reproduce the chain's systems bit
    for bit) exploit this to generate each chain's system once and scale
    per level instead of re-drawing.  Scaling applies the generator's own
    1e-6 wcet floor, and a demand that crosses it keeps the task's
    bcet/wcet ratio, so a downscaled system matches the regenerated one
    (up to a rounding ulp in the floored bcet); the only residual
    deviation is a task whose demand was *already* floored at the base
    utilization, which a drawn task essentially never hits.
    """
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor!r}")
    transactions = []
    for tr in system.transactions:
        tasks = []
        for t in tr.tasks:
            c = t.unvalidated_copy()
            scaled = t.wcet * factor
            if scaled >= 1e-6:
                c.wcet = scaled
                c.bcet = t.bcet * factor
            else:
                # Demand crossed the generator's floor: re-apply it and
                # keep the bcet/wcet ratio, matching what random_system
                # draws at the target utilization (bcet = ratio * wcet).
                c.wcet = 1e-6
                c.bcet = 1e-6 * (t.bcet / t.wcet) if t.wcet > 0 else 0.0
            tasks.append(c)
        transactions.append(
            Transaction(
                period=tr.period,
                deadline=tr.deadline,
                name=tr.name,
                meta=dict(tr.meta),
                tasks=tasks,
            )
        )
    return TransactionSystem(
        transactions=transactions,
        platforms=list(system.platforms),
        name=system.name,
        meta=dict(system.meta),
    )
