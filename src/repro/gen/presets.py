"""Canonical ready-made workloads.

Two realistic component-based systems in the style the paper's introduction
motivates, usable as test fixtures, demo material and benchmark seeds:

* :func:`automotive_cluster` -- three ECUs around a CAN-like bus: an engine
  controller polling sensors over the bus, a dashboard subscribing to the
  engine state, and a diagnostics unit with background traffic.  Exercises
  message tasks, multiple callers of one provided method, and priority
  bands on the bus.
* :func:`avionics_partitions` -- an IMA-flavoured uniprocessor hosting
  three partitions (flight control / navigation / maintenance) as periodic
  servers, with an RPC from navigation into flight control's provided
  attitude service.  Exercises server platforms and cross-partition calls.

Both return a validated :class:`~repro.components.assembly.SystemAssembly`
whose derived system is schedulable under the default analysis.

Random-campaign presets (ROADMAP items): two
:class:`~repro.gen.random_transactions.RandomSystemSpec` shapes that pin
down where the PR 2 performance layers pay off --

* :func:`deep_chain_spec` -- few long transactions (8-16 tasks each,
  spread over two platforms): once a chain's upstream prefix stabilizes,
  the chain-aware dirty set stops re-solving it, so the skip fraction
  *grows* with chain depth;
* :func:`wide_view_spec` -- everything on one platform with 10-14 tasks
  per transaction: every foreign transaction view batches well past
  :data:`repro.analysis.busy.VECTOR_MIN_JOBS` (starters x tasks), so
  ``kernel="auto"`` selects the NumPy vector kernel;
* :func:`independent_tasks_spec` -- single-task transactions only: the
  regime where the verdict-mode sufficient pre-filter (capped-jitter
  response bound, see :mod:`repro.analysis.schedulability`) classifies
  schedulable systems without entering the holistic loop at all -- with
  no derived jitters to cap, the one filter round *is* the analysis.

:func:`campaign_base` converts any of them into the ``base`` params dict
of a :class:`~repro.batch.campaign.CampaignSpec` utilization sweep.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.components.assembly import SystemAssembly
from repro.components.component import Component
from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.threads import CallStep, EventThread, PeriodicThread, TaskStep
from repro.gen.random_transactions import RandomSystemSpec
from repro.platforms.linear import LinearSupplyPlatform
from repro.platforms.network import Message, NetworkLinkPlatform
from repro.platforms.periodic_server import PeriodicServer

__all__ = [
    "automotive_cluster",
    "avionics_partitions",
    "campaign_base",
    "deep_chain_spec",
    "independent_tasks_spec",
    "wide_view_spec",
]


def deep_chain_spec(utilization: float = 0.4) -> RandomSystemSpec:
    """Deep precedence chains: 2 transactions of 8-16 tasks on 2 platforms.

    The showcase (and regression pin) for the chain-aware dirty set of the
    incremental Gauss-Seidel outer iteration: with long chains, most of a
    round's per-task solves are skipped once the upstream prefix of each
    chain has stabilized, so the ``task_skips`` fraction is substantially
    higher than on shallow (1-3 task) systems.
    """
    return RandomSystemSpec(
        n_platforms=2,
        n_transactions=2,
        tasks_per_transaction=(8, 16),
        utilization=utilization,
    )


def wide_view_spec(utilization: float = 0.5) -> RandomSystemSpec:
    """Wide interference views: 3 transactions of 10-14 tasks, 1 platform.

    Co-locating everything on a single platform makes every foreign
    transaction view 10-14 tasks wide; the starter-batched Eq. 15
    evaluation then covers ``(starters x tasks) >= 100`` jobs per call,
    comfortably past the ``kernel="auto"`` vector threshold
    (:data:`repro.analysis.busy.VECTOR_MIN_JOBS`), so campaigns over this
    preset default onto the NumPy kernel.
    """
    return RandomSystemSpec(
        n_platforms=1,
        n_transactions=3,
        tasks_per_transaction=(10, 14),
        utilization=utilization,
    )


def independent_tasks_spec(utilization: float = 0.4) -> RandomSystemSpec:
    """Independent tasks: 4 single-task transactions on 2 platforms.

    The showcase (and regression pin) for the verdict-mode sufficient
    pre-filter: single-task transactions carry no derived jitters, so the
    one capped-jitter solve round of
    :func:`repro.analysis.schedulability.response_bound_prefilter`
    evaluates the exact final jitter vector -- every schedulable draw is
    accepted without entering the holistic loop (``prefilter_accepts`` in
    the fixed-point stats).  Multi-task chains leave this regime quickly:
    the deadline-sized jitter caps inflate the one-round bound past the
    deadline, and the filter correctly declines to classify.
    """
    return RandomSystemSpec(
        n_platforms=2,
        n_transactions=4,
        tasks_per_transaction=(1, 1),
        utilization=utilization,
    )


def campaign_base(spec: RandomSystemSpec) -> dict:
    """*spec* as a campaign ``base`` dict (utilization left to the sweep).

    >>> from repro.batch import CampaignSpec
    >>> CampaignSpec(
    ...     grid={"utilization": (0.3, 0.6)}, base=campaign_base(wide_view_spec())
    ... ).n_cells()
    2
    """
    base = asdict(spec)
    del base["utilization"]
    return base


def automotive_cluster() -> SystemAssembly:
    """Three ECUs + CAN-like bus; times in milliseconds, payloads in bytes."""
    engine = Component(
        name="EngineController",
        provided=[ProvidedMethod("engine_state", mit=9.0)],
        threads=[
            PeriodicThread(
                name="injection",
                period=5.0,
                deadline=5.0,
                priority=4,
                body=[TaskStep("injection_law", wcet=0.8, bcet=0.3)],
            ),
            PeriodicThread(
                name="lambda_loop",
                period=20.0,
                deadline=20.0,
                priority=3,
                body=[TaskStep("lambda_ctrl", wcet=1.5, bcet=0.6)],
            ),
            EventThread(
                name="state_server",
                realizes="engine_state",
                priority=2,
                body=[TaskStep("snapshot", wcet=0.4, bcet=0.2)],
            ),
        ],
    )
    dashboard = Component(
        name="Dashboard",
        required=[RequiredMethod("engine", mit=40.0)],
        threads=[
            PeriodicThread(
                name="refresh",
                period=40.0,
                deadline=40.0,
                priority=2,
                body=[
                    CallStep("engine"),
                    TaskStep("render", wcet=4.0, bcet=1.5),
                ],
            )
        ],
    )
    diagnostics = Component(
        name="Diagnostics",
        required=[RequiredMethod("engine", mit=100.0)],
        threads=[
            PeriodicThread(
                name="obd",
                period=100.0,
                deadline=100.0,
                priority=1,
                body=[
                    CallStep("engine"),
                    TaskStep("store_dtc", wcet=6.0, bcet=2.0),
                ],
            )
        ],
    )

    asm = SystemAssembly(name="automotive-cluster")
    asm.add_instance("Engine", engine)
    asm.add_instance("Dash", dashboard)
    asm.add_instance("Diag", diagnostics)
    asm.add_platform("ecu.engine", LinearSupplyPlatform(0.7, 0.3, 0.0, name="ecu.engine"))
    asm.add_platform("ecu.dash", LinearSupplyPlatform(0.5, 0.5, 0.0, name="ecu.dash"))
    asm.add_platform("ecu.diag", LinearSupplyPlatform(0.3, 1.0, 0.0, name="ecu.diag"))
    asm.add_platform(
        "can",
        NetworkLinkPlatform(
            bandwidth=62.5,            # bytes/ms (500 kbit/s)
            share=0.6,                 # periodic window
            arbitration_delay=0.27,    # one max frame at 500 kbit/s
            frame_overhead=6.0,
            name="can",
        ),
    )
    asm.place("Engine", platform="ecu.engine")
    asm.place("Dash", platform="ecu.dash")
    asm.place("Diag", platform="ecu.diag")
    asm.bind(
        "Dash", "engine", "Engine", "engine_state",
        request=Message(payload=2.0, priority=3, name="dash.req"),
        reply=Message(payload=8.0, priority=3, name="dash.rep"),
        network="can",
    )
    asm.bind(
        "Diag", "engine", "Engine", "engine_state",
        request=Message(payload=2.0, priority=1, name="diag.req"),
        reply=Message(payload=8.0, priority=1, name="diag.rep"),
        network="can",
    )
    return asm


def avionics_partitions() -> SystemAssembly:
    """Three IMA partitions on one CPU (periodic servers); times in ms."""
    flight_control = Component(
        name="FlightControl",
        provided=[ProvidedMethod("attitude", mit=90.0)],
        threads=[
            PeriodicThread(
                name="inner_loop",
                period=10.0,
                deadline=10.0,
                priority=4,
                body=[TaskStep("stabilize", wcet=1.0, bcet=0.5)],
            ),
            EventThread(
                name="attitude_server",
                realizes="attitude",
                priority=3,
                body=[TaskStep("read_attitude", wcet=0.5, bcet=0.25)],
            ),
        ],
    )
    navigation = Component(
        name="Navigation",
        required=[RequiredMethod("att", mit=100.0)],
        threads=[
            PeriodicThread(
                name="fusion",
                period=100.0,
                deadline=100.0,
                priority=2,
                body=[
                    TaskStep("predict", wcet=2.0, bcet=1.0),
                    CallStep("att"),
                    TaskStep("correct", wcet=3.0, bcet=1.2),
                ],
            )
        ],
    )
    maintenance = Component(
        name="Maintenance",
        threads=[
            PeriodicThread(
                name="health",
                period=200.0,
                deadline=200.0,
                priority=1,
                body=[TaskStep("bit", wcet=8.0, bcet=3.0)],
            )
        ],
    )

    asm = SystemAssembly(name="avionics-partitions")
    asm.add_instance("FC", flight_control)
    asm.add_instance("NAV", navigation)
    asm.add_instance("MX", maintenance)
    # One physical CPU, three ARINC-style servers: total bandwidth 0.8.
    asm.add_platform("p.fc", PeriodicServer(2.0, 5.0, name="p.fc"))
    asm.add_platform("p.nav", PeriodicServer(2.5, 10.0, name="p.nav"))
    asm.add_platform("p.mx", PeriodicServer(3.0, 20.0, name="p.mx"))
    asm.place("FC", platform="p.fc")
    asm.place("NAV", platform="p.nav")
    asm.place("MX", platform="p.mx")
    asm.bind("NAV", "att", "FC", "attitude")
    return asm
