"""UUniFast utilization sampling (Bini & Buttazzo 2005).

Draws *n* task utilizations summing exactly to *total*, uniformly over the
simplex -- the standard generator for schedulability experiments, free of
the bias that naive normalization introduces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uunifast", "uunifast_discard"]


def uunifast(
    n: int, total: float, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Sample *n* utilizations uniformly on the simplex summing to *total*.

    Vectorized form of the classical recurrence
    ``sum_{i+1} = sum_i * U^(1/(n-i))``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    if total <= 0:
        raise ValueError(f"total must be positive, got {total!r}")
    rng = rng if rng is not None else np.random.default_rng()
    if n == 1:
        return np.array([total])
    # sums[k] = remaining utilization after assigning k tasks.
    exponents = 1.0 / np.arange(n - 1, 0, -1, dtype=float)
    factors = rng.random(n - 1) ** exponents
    sums = np.empty(n + 1)
    sums[0] = total
    np.multiply.accumulate(factors, out=factors)
    sums[1:n] = total * factors
    sums[n] = 0.0
    return sums[:-1] - sums[1:]


def uunifast_discard(
    n: int,
    total: float,
    *,
    cap: float = 1.0,
    rng: np.random.Generator | None = None,
    max_tries: int = 10_000,
) -> np.ndarray:
    """UUniFast rejecting draws with any utilization above *cap*.

    Needed when ``total > 1`` (multi-platform systems) to keep individual
    tasks implementable; preserves uniformity over the truncated simplex.
    """
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap!r}")
    if total > n * cap:
        raise ValueError(
            f"total utilization {total!r} cannot be split into {n} tasks "
            f"with cap {cap!r}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    for _ in range(max_tries):
        u = uunifast(n, total, rng)
        if np.all(u <= cap):
            return u
    raise RuntimeError(
        f"uunifast_discard failed to draw a valid vector in {max_tries} tries "
        f"(n={n}, total={total}, cap={cap})"
    )
