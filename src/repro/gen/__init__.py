"""Workload generators for experiments and property-based testing.

* :mod:`repro.gen.uunifast` -- the UUniFast / UUniFast-discard utilization
  samplers (Bini & Buttazzo), the standard unbiased way to draw task-set
  utilizations.
* :mod:`repro.gen.random_transactions` -- random transaction systems over
  random abstract platforms with controlled per-platform utilization.
* :mod:`repro.gen.random_components` -- random layered component
  assemblies (acyclic RPC topologies) exercising the Sec. 2.4 transform.
"""

from repro.gen.uunifast import uunifast, uunifast_discard
from repro.gen.random_transactions import (
    RandomSystemSpec,
    random_system,
)
from repro.gen.random_components import (
    RandomAssemblySpec,
    random_assembly,
)
from repro.gen.presets import (
    automotive_cluster,
    avionics_partitions,
    campaign_base,
    deep_chain_spec,
    independent_tasks_spec,
    wide_view_spec,
)

__all__ = [
    "uunifast",
    "uunifast_discard",
    "RandomSystemSpec",
    "random_system",
    "RandomAssemblySpec",
    "random_assembly",
    "automotive_cluster",
    "avionics_partitions",
    "campaign_base",
    "deep_chain_spec",
    "independent_tasks_spec",
    "wide_view_spec",
]
