"""Classical-analysis baselines.

The paper remarks (end of Sec. 2.3) that setting
:math:`(\\alpha, \\Delta, \\beta) = (1, 0, 0)` "obtains a processor used at
its full capacity": on dedicated platforms the whole machinery must coincide
with the classical holistic analysis.  This module provides

* :func:`analyze_dedicated` -- run the holistic analysis with every platform
  replaced by a dedicated processor (the baseline of benchmark E9), and
* :func:`rta_independent` -- the textbook independent-task response-time
  analysis with jitter (Audsley/Tindell), used to cross-check single-task
  transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.holistic import holistic_analysis
from repro.analysis.interfaces import AnalysisConfig, SystemAnalysis, UNSCHEDULABLE
from repro.model.system import TransactionSystem
from repro.platforms.linear import DedicatedPlatform
from repro.util.fixedpoint import FixedPointDiverged, iterate_fixed_point
from repro.util.math import ceil_div

__all__ = ["analyze_dedicated", "rta_independent", "IndependentTask"]


def analyze_dedicated(
    system: TransactionSystem,
    *,
    config: AnalysisConfig | None = None,
    trace: bool = False,
    warm_start: dict[tuple[int, int], float] | None = None,
) -> SystemAnalysis:
    """Holistic analysis with every platform replaced by ``(1, 0, 0)``.

    This is the "what if every component had a dedicated full-speed
    processor" baseline: the difference between its response times and
    :func:`repro.analysis.holistic.holistic_analysis` on the real platforms
    quantifies the cost of resource sharing.
    """
    dedicated = TransactionSystem(
        transactions=system.transactions,
        platforms=[DedicatedPlatform(name=f"cpu{m}") for m in range(len(system.platforms))],
        name=(system.name + "-dedicated") if system.name else "dedicated",
        meta=dict(system.meta),
    )
    return holistic_analysis(
        dedicated, config=config, trace=trace, warm_start=warm_start
    )


@dataclass(frozen=True)
class IndependentTask:
    """A task for the textbook independent-task RTA baseline."""

    wcet: float
    period: float
    deadline: float
    priority: int  # greater = higher, as everywhere in the library
    jitter: float = 0.0
    blocking: float = 0.0
    name: str = ""


def rta_independent(
    tasks: list[IndependentTask],
    *,
    max_busy: float = 1e9,
    tol: float = 1e-9,
) -> list[float]:
    """Classical fixed-priority response-time analysis with release jitter.

    For each task: :math:`w = B + C + \\sum_{hp} \\lceil (w + J_h)/T_h \\rceil
    C_h`, response :math:`R = w + J`.  Deadline-constrained systems with
    ``D <= T`` need only the first job; for generality the full busy-period
    job enumeration is performed (Tindell's extension).

    Returns the per-task worst-case response times, index-aligned with the
    input; :data:`~repro.analysis.interfaces.UNSCHEDULABLE` where the busy
    period does not close below *max_busy*.
    """
    results: list[float] = []
    for task in tasks:
        hp = [t for t in tasks if t is not task and t.priority >= task.priority]

        def demand(t: float, q: int, task=task, hp=hp) -> float:
            total = task.blocking + (q + 1) * task.wcet
            for h in hp:
                total += ceil_div(t + h.jitter, h.period) * h.wcet
            return total

        # Level-i busy period.
        try:
            busy = iterate_fixed_point(
                lambda t: demand(t, ceil_div(t + task.jitter, task.period) - 1),
                task.wcet,
                bound=max_busy,
                tol=tol,
            ).value
        except FixedPointDiverged:
            results.append(UNSCHEDULABLE)
            continue

        n_jobs = max(1, ceil_div(busy + task.jitter, task.period))
        worst = 0.0
        failed = False
        for q in range(n_jobs):
            try:
                w = iterate_fixed_point(
                    lambda t, q=q: demand(t, q),
                    task.wcet,
                    bound=max_busy,
                    tol=tol,
                ).value
            except FixedPointDiverged:
                failed = True
                break
            worst = max(worst, w - q * task.period + task.jitter)
        results.append(UNSCHEDULABLE if failed else worst)
    return results
