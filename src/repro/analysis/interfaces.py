"""Result and configuration types shared by all analyses."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "UNSCHEDULABLE",
    "AnalysisConfig",
    "TaskAnalysis",
    "IterationRow",
    "SystemAnalysis",
]

#: Response time reported when a busy period fails to close (deadline
#: certainly missed or utilization over 1); compares greater than any
#: deadline, so verdict code needs no special casing.
UNSCHEDULABLE: float = float("inf")


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of the holistic analysis.

    Parameters
    ----------
    method:
        ``"reduced"`` (Sec. 3.1.2, default -- what the paper's example uses)
        or ``"exact"`` (Sec. 3.1.1 scenario enumeration).
    best_case:
        ``"simple"`` (the paper's published summation bound -- what Table 3
        is computed with), ``"sound"`` (the envelope-correct variant; use
        this when validating against simulation) or ``"iterative"``
        (Redell-style refinement of the sound bound).
    max_outer_iterations:
        Cap on the dynamic-offset (jitter) fixed point of Sec. 3.2.
    max_exact_scenarios:
        Guard for the exact analysis: abort with :class:`ValueError` if
        Eq. 12 exceeds this count (the combinatorial explosion the reduced
        analysis exists to avoid).
    busy_bound_factor:
        The inner busy-period iteration is declared divergent (response time
        :data:`UNSCHEDULABLE`) once it exceeds ``busy_bound_factor`` times
        the largest period-or-deadline in the system.
    tol:
        Convergence tolerance of all fixed points.
    stop_on_miss:
        Stop the outer iteration as soon as some end-to-end deadline is
        missed (the jitter fixed point can only grow, so the verdict is
        already final).  Off by default to reproduce full paper traces.
    update:
        Outer-iteration scheme: ``"jacobi"`` (all jitters refreshed from
        the *previous* round's responses -- the scheme whose trace the
        paper's Table 3 shows) or ``"gauss_seidel"`` (each task's fresh
        response feeds its successor within the same round; converges to
        the same least fixed point in fewer rounds).
    kernel:
        Interference-evaluation backend: ``"scalar"`` (the reference
        Python closures), ``"vector"`` (NumPy array reductions over all
        interfering jobs, Eq. 15 batched over starters) or ``"auto"``
        (default -- per view, vector once the batch is large enough to
        amortize NumPy dispatch; scalar otherwise or when NumPy is
        missing).  Both kernels produce bit-identical job counts.
    incremental:
        Enable the chain-aware dirty-set fast path of the
        ``"gauss_seidel"`` outer update: a task is re-solved in a round
        only when a jitter it can observe moved by more than ``tol``.
        Ignored under ``"jacobi"``, whose full-round trace is the paper's.
    driver_cache:
        Enable the driver-level caches and warm chains that never change a
        converged value: projection reuse across outer rounds, compiled-W
        reuse while jitters are unchanged, per-scenario interference
        memoization and job-chained completion warm starts.  Off, every
        solve recomputes from scratch -- the PR 1 cost model, kept so the
        campaign benchmark can A/B the driver work honestly.
    mode:
        ``"exact"`` (default) computes exact worst-case response times for
        every task -- the full PR 3 cost model, byte for byte.
        ``"verdict"`` computes only the schedulability *verdict*, spending
        as little as possible on everything else: inner solves abort at a
        deadline ceiling the moment an iterate proves a miss, the outer
        sweep visits the most-constrained transactions first and stops as
        soon as any task provably misses, and cheap pre-filters (see
        :mod:`repro.analysis.schedulability`) classify easy systems without
        entering the holistic loop at all.  Verdicts are identical to exact
        mode; per-task response times are NOT (they may be partial, upper
        bounds, or :data:`UNSCHEDULABLE` once the verdict is decided).
    prefilters:
        Verdict mode only: enable the necessary utilization test and the
        sufficient response-time upper bound.  Off, verdict mode still
        early-exits but always runs the holistic loop (for A/B accounting).
    """

    method: str = "reduced"
    best_case: str = "simple"
    max_outer_iterations: int = 200
    max_exact_scenarios: int = 200_000
    busy_bound_factor: float = 1_000.0
    tol: float = 1e-9
    stop_on_miss: bool = False
    update: str = "jacobi"
    kernel: str = "auto"
    incremental: bool = True
    driver_cache: bool = True
    mode: str = "exact"
    prefilters: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "verdict"):
            raise ValueError(
                f"mode must be 'exact' or 'verdict', got {self.mode!r}"
            )
        if self.method not in ("reduced", "exact"):
            raise ValueError(f"method must be 'reduced' or 'exact', got {self.method!r}")
        if self.best_case not in ("simple", "sound", "iterative"):
            raise ValueError(
                "best_case must be 'simple', 'sound' or 'iterative', "
                f"got {self.best_case!r}"
            )
        if self.max_outer_iterations < 1:
            raise ValueError("max_outer_iterations must be >= 1")
        if self.busy_bound_factor <= 0:
            raise ValueError("busy_bound_factor must be positive")
        if self.update not in ("jacobi", "gauss_seidel"):
            raise ValueError(
                f"update must be 'jacobi' or 'gauss_seidel', got {self.update!r}"
            )
        if self.kernel not in ("auto", "vector", "scalar"):
            raise ValueError(
                f"kernel must be 'auto', 'vector' or 'scalar', got {self.kernel!r}"
            )


@dataclass
class TaskAnalysis:
    """Per-task outcome of the holistic analysis.

    ``wcrt``/``bcrt`` are measured from the *activation of the transaction*
    (not of the task), as in the paper; ``offset``/``jitter`` are the final
    Eq. 18 values the worst case was computed with.
    """

    wcrt: float
    bcrt: float
    offset: float
    jitter: float
    name: str = ""

    @property
    def response_span(self) -> float:
        """Width of the response-time interval ``wcrt - bcrt``."""
        return self.wcrt - self.bcrt


@dataclass(frozen=True)
class IterationRow:
    """One outer iteration: the ``(J, R)`` pairs of Table 3.

    ``jitters[(i, j)]`` and ``responses[(i, j)]`` are keyed by
    (transaction index, task index).
    """

    index: int
    jitters: dict[tuple[int, int], float]
    responses: dict[tuple[int, int], float]
    #: Tasks the dirty-set scheduler did not re-solve this round (their
    #: ``responses`` entries are carried over); empty under Jacobi or when
    #: the incremental fast path is off.
    skipped: tuple[tuple[int, int], ...] = ()


@dataclass
class SystemAnalysis:
    """Full outcome of :func:`repro.analysis.schedulability.analyze`."""

    #: Per-task results keyed by (transaction index, task index).
    tasks: dict[tuple[int, int], TaskAnalysis]
    #: End-to-end worst-case response time per transaction (last task's wcrt).
    transaction_wcrt: list[float]
    #: Deadline of each transaction, for convenience.
    transaction_deadline: list[float]
    #: Whether every transaction meets its end-to-end deadline.
    schedulable: bool
    #: Outer-iteration trace (Table 3); empty unless tracing was requested.
    iterations: list[IterationRow] = field(default_factory=list)
    #: Number of outer iterations performed until convergence (or cap).
    outer_iterations: int = 0
    #: True when the outer fixed point converged within the iteration cap.
    converged: bool = True
    #: Total inner fixed-point evaluations across every outer round,
    #: including the evaluations of divergent (unschedulable) solves.
    evaluations: int = 0
    #: True when the outer iteration was seeded from a warm-start jitter
    #: vector instead of the cold J = 0 start.
    warm_started: bool = False
    #: Per-task response-time solves actually performed across the outer
    #: rounds, and solves the dirty-set scheduler skipped because no input
    #: jitter had moved.  ``task_solves + task_skips == rounds x tasks``.
    task_solves: int = 0
    task_skips: int = 0
    #: Verdict mode: the pre-filter that classified the system without
    #: running the holistic loop (``"utilization"`` for the necessary
    #: utilization reject, ``"bound"`` for the sufficient response-time
    #: upper-bound accept), or ``None`` when the holistic analysis ran.
    #: When set, per-task values in ``tasks`` are filter artifacts (upper
    #: bounds, or :data:`UNSCHEDULABLE`), not exact response times.
    prefilter: str | None = None

    def final_jitters(self) -> dict[tuple[int, int], float]:
        """The converged jitter vector, usable as a warm start for the
        analysis of a nearby system (e.g. the next cell of a sweep)."""
        return {key: t.jitter for key, t in self.tasks.items()}

    def wcrt(self, i: int, j: int) -> float:
        """Worst-case response time of task ``(i, j)``."""
        return self.tasks[(i, j)].wcrt

    def slack(self, i: int) -> float:
        """End-to-end slack of transaction *i* (negative when missed)."""
        return self.transaction_deadline[i] - self.transaction_wcrt[i]

    def misses(self) -> list[int]:
        """Indices of transactions whose end-to-end deadline is missed."""
        return [
            i
            for i, (r, d) in enumerate(
                zip(self.transaction_wcrt, self.transaction_deadline)
            )
            if r > d
        ]
