"""Exact response-time analysis for static offsets (paper Sec. 3.1.1).

The exact analysis enumerates every *scenario*: for each transaction with a
non-empty interfering set, one of its interfering tasks starts the busy
period with its maximally-delayed activation (Theorem 1); for the analyzed
task's own transaction the analyzed task itself is an additional candidate.
The number of scenarios is the product of Eq. 12 -- exponential in the
number of transactions, which is why Sec. 3.1.2 (see
:mod:`repro.analysis.reduced`) exists.

The analysis assumes the offsets and jitters stored in the system are final
("static"); the dynamic-offset coupling of Sec. 3.2 is layered on top by
:mod:`repro.analysis.holistic`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.analysis._scenario import solve_scenario
from repro.analysis.busy import (
    HPTask,
    TransactionView,
    build_views,
    compile_w_transaction_k,
    starter_phase_of_analyzed,
)
from repro.analysis.interfaces import AnalysisConfig
from repro.model.system import TransactionSystem

__all__ = ["ExactResult", "response_time_exact"]


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exact analysis for one task."""

    wcrt: float
    scenarios_evaluated: int
    #: The scenario (starter task index per transaction view, analyzed
    #: transaction encoded with starter index ``-1`` for "the task itself")
    #: attaining the worst case; ``None`` if no scenario constrained the task.
    worst_scenario: tuple[tuple[int, int], ...] | None
    #: Inner fixed-point evaluations spent, divergent solves included.
    evaluations: int = 0


def _busy_bound(system: TransactionSystem, config: AnalysisConfig) -> float:
    longest = max(
        max(tr.period, float(tr.deadline)) for tr in system.transactions
    )
    return config.busy_bound_factor * longest


def response_time_exact(
    system: TransactionSystem,
    a: int,
    b: int,
    *,
    config: AnalysisConfig | None = None,
    views: tuple | None = None,
    bound: float | None = None,
    ceiling: float = float("inf"),
) -> ExactResult:
    """Worst-case response time of task ``(a, b)`` by full scenario enumeration.

    ``views`` optionally supplies a pre-projected ``(analyzed, own,
    others)`` triple (from a cached :class:`~repro.analysis.busy.ViewProjector`)
    so the outer holistic rounds skip re-projection; ``bound`` an already
    computed divergence bound; ``ceiling`` the verdict-mode response
    ceiling (``wcrt`` reported as ``inf`` as soon as any scenario proves
    the response exceeds it).

    Raises
    ------
    ValueError
        If the scenario count exceeds ``config.max_exact_scenarios``.
    """
    config = config or AnalysisConfig()
    analyzed, own, others = views if views is not None else build_views(system, a, b)
    if bound is None:
        bound = _busy_bound(system, config)
    kernel = config.kernel

    # Candidate starters: every interfering task per foreign transaction;
    # for the own transaction additionally the analyzed task itself,
    # represented by None.
    own_candidates: list[HPTask | None] = list(own.tasks) + [None]
    other_candidates: list[list[HPTask]] = [list(v.tasks) for v in others]

    n_scenarios = len(own_candidates)
    for cands in other_candidates:
        n_scenarios *= len(cands)
    if n_scenarios > config.max_exact_scenarios:
        raise ValueError(
            f"exact analysis of task ({a},{b}) requires {n_scenarios} scenarios, "
            f"exceeding max_exact_scenarios={config.max_exact_scenarios}; "
            "use the reduced analysis instead"
        )

    worst = float("-inf")
    worst_scenario: tuple[tuple[int, int], ...] | None = None
    evaluated = 0
    evaluations = 0

    # Every scenario reuses per-(view, starter) W closures: compile each
    # foreign candidate once instead of once per element of the product.
    others_w = [
        {
            id(starter): compile_w_transaction_k(view, starter, kernel=kernel)
            for starter in cands
        }
        for view, cands in zip(others, other_candidates)
    ]

    for own_starter in own_candidates:
        phi_ab = starter_phase_of_analyzed(analyzed, own_starter)
        # Own transaction: when the analyzed task itself starts the busy
        # period (own_starter None) its reduced offset/jitter anchor the
        # phases of its higher-priority siblings.
        own_w = compile_w_transaction_k(
            own, own_starter,
            starter_phi=analyzed.phi, starter_jitter=analyzed.jitter,
            kernel=kernel,
        )
        for combo in itertools.product(*other_candidates) if other_candidates else [()]:
            combo_w = [
                table[id(starter)]
                for table, starter in zip(others_w, combo)
            ]

            def interference(t: float, own_w=own_w, combo_w=combo_w) -> float:
                total = own_w(t)
                for w_k in combo_w:
                    total += w_k(t)
                return total

            outcome = solve_scenario(
                analyzed, phi_ab, interference, bound=bound, tol=config.tol,
                chain_jobs=config.driver_cache, memoize=config.driver_cache,
                response_ceiling=ceiling,
            )
            evaluated += 1
            evaluations += outcome.evaluations
            if outcome.response > worst:
                worst = outcome.response
                key = [
                    (own.index, own_starter.index if own_starter is not None else -1)
                ]
                key.extend(
                    (view.index, starter.index)
                    for view, starter in zip(others, combo)
                )
                worst_scenario = tuple(key)
            if worst == float("inf"):
                return ExactResult(
                    wcrt=float("inf"),
                    scenarios_evaluated=evaluated,
                    worst_scenario=worst_scenario,
                    evaluations=evaluations,
                )

    if worst == float("-inf"):
        # No scenario placed a job of the analyzed task inside a busy
        # period; this cannot happen for the self-started scenario, so it
        # indicates a modelling error.
        raise AssertionError(
            f"no scenario constrained task ({a},{b}); "
            "the self-started scenario must always contain job p=p0"
        )
    return ExactResult(
        wcrt=worst, scenarios_evaluated=evaluated, worst_scenario=worst_scenario,
        evaluations=evaluations,
    )
