"""Scenario counting (Eq. 12) and enumeration helpers.

The exact analysis considers every combination of busy-period starters; the
reduced analysis only the analyzed transaction's own candidates.  These
counters drive benchmark E7, which reproduces the paper's complexity claim
("the number of scenarios is significantly less than the number of
scenarios of the exact analysis").
"""

from __future__ import annotations

from repro.analysis.busy import build_views
from repro.model.system import TransactionSystem

__all__ = [
    "count_scenarios_exact",
    "count_scenarios_reduced",
    "count_scenarios_system",
]


def count_scenarios_exact(system: TransactionSystem, a: int, b: int) -> int:
    """Number of scenarios of the exact analysis for task ``(a, b)`` (Eq. 12).

    :math:`N(\\tau_{a,b}) = (N_a(\\tau_{a,b}) + 1)\\ \\prod_{i \\ne a,\\
    hp_i \\ne \\emptyset} N_i(\\tau_{a,b})` where :math:`N_i` counts the
    interfering tasks of transaction :math:`\\Gamma_i` (same platform,
    priority at least that of the analyzed task).
    """
    _, own, others = build_views(system, a, b)
    n = len(own.tasks) + 1
    for view in others:
        n *= len(view.tasks)
    return n


def count_scenarios_reduced(system: TransactionSystem, a: int, b: int) -> int:
    """Number of scenarios of the reduced analysis: :math:`N_a(\\tau_{a,b}) + 1`."""
    _, own, _ = build_views(system, a, b)
    return len(own.tasks) + 1


def count_scenarios_system(
    system: TransactionSystem, *, exact: bool = True
) -> dict[tuple[int, int], int]:
    """Scenario counts for every task of the system, keyed by (txn, task)."""
    fn = count_scenarios_exact if exact else count_scenarios_reduced
    return {
        (i, j): fn(system, i, j)
        for i, tr in enumerate(system.transactions)
        for j in range(len(tr.tasks))
    }
