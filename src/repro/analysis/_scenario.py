"""Per-scenario busy-period solver shared by the exact and reduced analyses.

A *scenario* fixes which task's maximally-delayed activation starts the busy
period in each transaction (the vector :math:`\\nu` of Sec. 3.1.1).  Given
the resulting interference function
:math:`I(t) = \\sum_i W^{\\nu(i)}_i(\\tau_{a,b}, t)` and the phase of the
analyzed task, this module solves Eq. 13/14: the busy-period length, the job
range :math:`p_0 \\dots p_L` and the per-job completion times, and returns
the scenario's worst response time.

The monotone fixed-point loops are hand-inlined here rather than routed
through :func:`repro.util.fixedpoint.iterate_fixed_point`: the scenario
solves are the innermost hot path of every campaign, and the inlining
removes two Python call layers per evaluation.  Convergence, divergence and
accounting semantics are kept bit-for-bit (:func:`repro.util.fixedpoint.note_solve`
charges the same counters the shared driver would).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.analysis.busy import AnalyzedTask
from repro.util.fixedpoint import note_ceiling_exit, note_solve, note_solves
from repro.util.math import EPS, ceil_div, floor_div

__all__ = ["ScenarioOutcome", "solve_scenario"]

#: Safety cap mirroring ``iterate_fixed_point``'s default.
_MAX_ITERATIONS = 100_000


@dataclass(frozen=True)
class ScenarioOutcome:
    """Worst response time found in one scenario.

    ``response`` is ``-inf`` when no job of the analyzed task falls inside
    the scenario's busy period (the scenario constrains nothing) and
    ``+inf`` when the busy period failed to close within the divergence
    bound.  ``evaluations`` counts every evaluation of the iterated maps,
    *including* those of divergent solves: the iteration counts carried by
    divergent solves used to be dropped on the unschedulable path, so
    aggregate accounting undercounted exactly the expensive cells.
    """

    response: float
    worst_job: int | None
    busy_length: float
    jobs_checked: int
    evaluations: int = 0


def solve_scenario(
    analyzed: AnalyzedTask,
    phi_ab: float,
    interference: Callable[[float], float],
    *,
    bound: float,
    tol: float = 1e-9,
    chain_jobs: bool = True,
    memoize: bool = True,
    response_ceiling: float = float("inf"),
) -> ScenarioOutcome:
    """Solve one scenario for the analyzed task.

    Parameters
    ----------
    analyzed:
        The task under analysis (rate-scaled cost, platform delay, ...).
    phi_ab:
        Phase :math:`\\varphi^{\\nu(a)}_{a,b}` of the analyzed task for this
        scenario (Eq. 10 relative to the scenario's own-transaction starter).
    interference:
        Total higher-priority interference :math:`I(t)` for this scenario,
        already rate-scaled and platform-restricted.
    bound:
        Divergence bound for the inner fixed points; exceeding it makes the
        scenario report an infinite response time.
    response_ceiling:
        Verdict-mode deadline ceiling (mirrors ``ceiling`` of
        :func:`repro.util.fixedpoint.iterate_fixed_point` for this inlined
        loop): abort with an infinite response as soon as any job's
        completion iterate *implies* a response above it.  Sound because
        completion iterates grow from below toward the least fixed point,
        so the implied response is a lower bound on the job's final
        response, itself a lower bound on the scenario's worst response --
        callers that only compare the response against a deadline already
        have their answer.  ``inf`` (default) restores exact behavior.

        A finite ceiling also restructures the solve around the busy-
        period *length* loop (see :func:`_solve_scenario_verdict`): job
        completions are solved incrementally as busy iterates widen the
        window, so a first-job deadline miss aborts the scenario without
        paying the full busy-length solve -- near-saturated levels used
        to spend hundreds of busy evaluations before the first
        completion abort could fire.  Job set, per-job iterate sequences
        and the final outcome are identical to the two-phase order.
    chain_jobs:
        Warm-start each job's completion fixed point from the previous
        job's completion (sound: the completion map of job ``p+1``
        dominates job ``p``'s pointwise, so its least fixed point is at or
        above job ``p``'s).  Disabled by the benchmark reference mode.
    memoize:
        Cache ``interference`` on exact *t* across this scenario's busy
        and completion solves (they revisit the same time points: shared
        iterate prefixes, job-chained warm starts).  The dict operations
        are inlined in the loops, so a hit costs one lookup instead of the
        whole interference sum.  Disabled by the benchmark reference mode.
    """
    if response_ceiling != float("inf"):
        return _solve_scenario_verdict(
            analyzed, phi_ab, interference,
            bound=bound, tol=tol, chain_jobs=chain_jobs, memoize=memoize,
            response_ceiling=response_ceiling,
        )

    T = analyzed.period
    base = analyzed.delay + analyzed.blocking
    cost = analyzed.cost
    ceil_ = math.ceil
    memo: dict[float, float] | None = {} if memoize else None

    # Eq. 13: p0 indexes the earliest job whose jittered activation can
    # coincide with the busy-period start.
    p0 = 1 - floor_div(analyzed.jitter + phi_ab, T)

    # Busy-period length (Eq. between 13 and 14): own jobs present in [0, L)
    # are p0 .. ceil((L - phi)/T); their count is clamped at zero for
    # scenarios the analyzed task never joins.  The epsilon-snapped ceiling
    # (util.math.ceil_div) is inlined in the loop.
    shift = 1 - p0

    start = base + cost
    x = start
    evals = 0
    while True:
        evals += 1
        xx = (x - phi_ab) / T
        nearest = round(xx)
        own_jobs = (
            nearest if abs(xx - nearest) <= EPS else ceil_(xx)
        ) + shift
        if own_jobs < 0:
            own_jobs = 0
        if memo is None:
            inter = interference(x)
        else:
            inter = memo.get(x)
            if inter is None:
                inter = memo[x] = interference(x)
        nxt = base + own_jobs * cost + inter
        if nxt > bound:
            note_solve(evals, diverged=True)
            return ScenarioOutcome(
                response=float("inf"), worst_job=None, busy_length=float("inf"),
                jobs_checked=0, evaluations=evals,
            )
        if -tol <= nxt - x <= tol:
            break
        if evals >= _MAX_ITERATIONS:
            note_solve(evals, diverged=True)
            return ScenarioOutcome(
                response=float("inf"), worst_job=None, busy_length=float("inf"),
                jobs_checked=0, evaluations=evals,
            )
        x = nxt
    L = nxt
    evaluations = evals
    solves = 1
    warm_solves = 0

    p_last = ceil_div(L - phi_ab, T)  # Eq. 14
    if p_last < p0:
        # No job of the analyzed task inside this busy period.
        note_solves(evaluations, solves)
        return ScenarioOutcome(
            response=float("-inf"), worst_job=None, busy_length=L,
            jobs_checked=0, evaluations=evaluations,
        )

    worst = float("-inf")
    worst_job: int | None = None
    checked = 0
    # Job-chained warm start: the completion map of job p+1 dominates job
    # p's pointwise (one more own job), so its least fixed point is at or
    # above job p's -- iterating from the previous completion reaches the
    # same fixed point in fewer steps.
    prev_completion: float | None = None
    for p in range(p0, p_last + 1):
        done = base + (p - p0 + 1) * cost
        # Activation instant of job p measured from the transaction
        # activation (phi + (p-1)T - phi_bar); a completion iterate above
        # ``response_ceiling + act`` implies a response past the ceiling.
        act = phi_ab + (p - 1) * T - analyzed.phi
        limit = response_ceiling + act
        warm = (
            chain_jobs
            and prev_completion is not None
            and prev_completion > start
        )
        w = prev_completion if warm else start
        evals = 0
        while True:
            evals += 1
            if memo is None:
                inter = interference(w)
            else:
                inter = memo.get(w)
                if inter is None:
                    inter = memo[w] = interference(w)
            nxt = done + inter
            if nxt > bound:
                note_solves(evaluations, solves, warm_started=warm_solves)
                note_solve(evals, diverged=True, warm_started=warm)
                return ScenarioOutcome(
                    response=float("inf"), worst_job=p, busy_length=L,
                    jobs_checked=checked, evaluations=evaluations + evals,
                )
            if nxt > limit:
                # Verdict-mode early exit: the iterate is a lower bound on
                # this job's response, which lower-bounds the scenario's
                # worst response -- the deadline miss is already proven.
                note_solves(evaluations, solves, warm_started=warm_solves)
                note_solve(evals, warm_started=warm)
                note_ceiling_exit()
                return ScenarioOutcome(
                    response=float("inf"), worst_job=p, busy_length=L,
                    jobs_checked=checked, evaluations=evaluations + evals,
                )
            if -tol <= nxt - w <= tol:
                break
            if evals >= _MAX_ITERATIONS:
                note_solves(evaluations, solves, warm_started=warm_solves)
                note_solve(evals, diverged=True, warm_started=warm)
                return ScenarioOutcome(
                    response=float("inf"), worst_job=p, busy_length=L,
                    jobs_checked=checked, evaluations=evaluations + evals,
                )
            w = nxt
        w = nxt
        evaluations += evals
        solves += 1
        if warm:
            warm_solves += 1
        prev_completion = w
        # Response measured from the transaction activation that released
        # job p (see ``act`` above).
        r = w - act
        checked += 1
        if r > worst:
            worst = r
            worst_job = p
    note_solves(evaluations, solves, warm_started=warm_solves)
    return ScenarioOutcome(
        response=worst, worst_job=worst_job, busy_length=L, jobs_checked=checked,
        evaluations=evaluations,
    )


def _solve_scenario_verdict(
    analyzed: AnalyzedTask,
    phi_ab: float,
    interference: Callable[[float], float],
    *,
    bound: float,
    tol: float,
    chain_jobs: bool,
    memoize: bool,
    response_ceiling: float,
) -> ScenarioOutcome:
    """Verdict-mode scenario solve: the busy-*length* loop has a ceiling too.

    The two-phase order of :func:`solve_scenario` (busy length to
    convergence, then per-job completions) pays the whole length solve
    before the first completion's ceiling abort can fire -- and near
    saturation the length solve is exactly the expensive part.  A long
    busy iterate alone proves nothing (interference released *after* a
    job completes can stretch the busy period with every job still making
    its deadline), so the sound restructuring interleaves instead: every
    busy iterate is a lower bound on the busy length, so every own job
    activated inside the current window is already known to lie in the
    busy period and its completion can be solved -- and its deadline
    ceiling abort taken -- immediately.  Job set (``p0..p_last``), per-job
    iterate sequences, job-chained warm starts and the returned outcome
    are identical to the two-phase order; only the abort arrives before
    the length solve converges, skipping its remaining iterations.

    Accounting matches :func:`solve_scenario`'s shapes: completed solves
    are batched through ``note_solves``, the aborting solve goes through
    ``note_solve`` + ``note_ceiling_exit``, and evaluations spent on a
    still-open busy solve at abort time are charged as evaluations
    without a closing solve count.
    """
    T = analyzed.period
    base = analyzed.delay + analyzed.blocking
    cost = analyzed.cost
    ceil_ = math.ceil
    memo: dict[float, float] | None = {} if memoize else None

    p0 = 1 - floor_div(analyzed.jitter + phi_ab, T)
    shift = 1 - p0
    start = base + cost

    def eval_inter(t: float) -> float:
        if memo is None:
            return interference(t)
        v = memo.get(t)
        if v is None:
            v = memo[t] = interference(t)
        return v

    evaluations = 0
    solves = 0
    warm_solves = 0
    worst = float("-inf")
    worst_job: int | None = None
    checked = 0
    prev_completion: float | None = None
    next_p = p0  # next own job awaiting its completion solve

    def complete_jobs(p_hi: int, busy_evals: int) -> ScenarioOutcome | None:
        """Solve completions for jobs ``next_p..p_hi`` (all provably in
        the busy period); an abort outcome, or ``None`` to continue."""
        nonlocal evaluations, solves, warm_solves, worst, worst_job
        nonlocal checked, prev_completion, next_p
        while next_p <= p_hi:
            p = next_p
            done = base + (p - p0 + 1) * cost
            act = phi_ab + (p - 1) * T - analyzed.phi
            limit = response_ceiling + act
            warm = (
                chain_jobs
                and prev_completion is not None
                and prev_completion > start
            )
            w = prev_completion if warm else start
            evals = 0
            while True:
                evals += 1
                nxt = done + eval_inter(w)
                if nxt > bound:
                    note_solves(
                        evaluations + busy_evals, solves,
                        warm_started=warm_solves,
                    )
                    note_solve(evals, diverged=True, warm_started=warm)
                    return ScenarioOutcome(
                        response=float("inf"), worst_job=p,
                        busy_length=float("inf"), jobs_checked=checked,
                        evaluations=evaluations + busy_evals + evals,
                    )
                if nxt > limit:
                    note_solves(
                        evaluations + busy_evals, solves,
                        warm_started=warm_solves,
                    )
                    note_solve(evals, warm_started=warm)
                    note_ceiling_exit()
                    return ScenarioOutcome(
                        response=float("inf"), worst_job=p,
                        busy_length=float("inf"), jobs_checked=checked,
                        evaluations=evaluations + busy_evals + evals,
                    )
                if -tol <= nxt - w <= tol:
                    break
                if evals >= _MAX_ITERATIONS:
                    note_solves(
                        evaluations + busy_evals, solves,
                        warm_started=warm_solves,
                    )
                    note_solve(evals, diverged=True, warm_started=warm)
                    return ScenarioOutcome(
                        response=float("inf"), worst_job=p,
                        busy_length=float("inf"), jobs_checked=checked,
                        evaluations=evaluations + busy_evals + evals,
                    )
                w = nxt
            evaluations += evals
            solves += 1
            if warm:
                warm_solves += 1
            prev_completion = nxt
            r = nxt - act
            checked += 1
            if r > worst:
                worst = r
                worst_job = p
            next_p += 1
        return None

    # Busy-period length loop, with incremental completion solves: the
    # iterate sequence, own-job window arithmetic and divergence handling
    # mirror solve_scenario exactly.
    x = start
    busy_evals = 0
    while True:
        xx = (x - phi_ab) / T
        nearest = round(xx)
        own_jobs = (
            nearest if abs(xx - nearest) <= EPS else ceil_(xx)
        ) + shift
        if own_jobs < 0:
            own_jobs = 0
        if own_jobs > next_p - p0:
            abort = complete_jobs(p0 + own_jobs - 1, busy_evals)
            if abort is not None:
                return abort
        busy_evals += 1
        nxt = base + own_jobs * cost + eval_inter(x)
        if nxt > bound:
            note_solves(evaluations, solves, warm_started=warm_solves)
            note_solve(busy_evals, diverged=True)
            return ScenarioOutcome(
                response=float("inf"), worst_job=None,
                busy_length=float("inf"), jobs_checked=checked,
                evaluations=evaluations + busy_evals,
            )
        if -tol <= nxt - x <= tol:
            break
        if busy_evals >= _MAX_ITERATIONS:
            note_solves(evaluations, solves, warm_started=warm_solves)
            note_solve(busy_evals, diverged=True)
            return ScenarioOutcome(
                response=float("inf"), worst_job=None,
                busy_length=float("inf"), jobs_checked=checked,
                evaluations=evaluations + busy_evals,
            )
        x = nxt
    L = nxt
    evaluations += busy_evals
    solves += 1

    p_last = ceil_div(L - phi_ab, T)  # Eq. 14
    if p_last < p0:
        note_solves(evaluations, solves, warm_started=warm_solves)
        return ScenarioOutcome(
            response=float("-inf"), worst_job=None, busy_length=L,
            jobs_checked=0, evaluations=evaluations,
        )
    abort = complete_jobs(p_last, 0)
    if abort is not None:
        return abort
    note_solves(evaluations, solves, warm_started=warm_solves)
    return ScenarioOutcome(
        response=worst, worst_job=worst_job, busy_length=L,
        jobs_checked=checked, evaluations=evaluations,
    )
