"""Per-scenario busy-period solver shared by the exact and reduced analyses.

A *scenario* fixes which task's maximally-delayed activation starts the busy
period in each transaction (the vector :math:`\\nu` of Sec. 3.1.1).  Given
the resulting interference function
:math:`I(t) = \\sum_i W^{\\nu(i)}_i(\\tau_{a,b}, t)` and the phase of the
analyzed task, this module solves Eq. 13/14: the busy-period length, the job
range :math:`p_0 \\dots p_L` and the per-job completion times, and returns
the scenario's worst response time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.busy import AnalyzedTask
from repro.util.fixedpoint import FixedPointDiverged, iterate_fixed_point
from repro.util.math import ceil_div, floor_div

__all__ = ["ScenarioOutcome", "solve_scenario"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """Worst response time found in one scenario.

    ``response`` is ``-inf`` when no job of the analyzed task falls inside
    the scenario's busy period (the scenario constrains nothing) and
    ``+inf`` when the busy period failed to close within the divergence
    bound.  ``evaluations`` counts every evaluation of the iterated maps,
    *including* those of divergent solves: the iteration counts carried by
    :class:`FixedPointDiverged` used to be dropped on the unschedulable
    path, so aggregate accounting undercounted exactly the expensive cells.
    """

    response: float
    worst_job: int | None
    busy_length: float
    jobs_checked: int
    evaluations: int = 0


def solve_scenario(
    analyzed: AnalyzedTask,
    phi_ab: float,
    interference: Callable[[float], float],
    *,
    bound: float,
    tol: float = 1e-9,
) -> ScenarioOutcome:
    """Solve one scenario for the analyzed task.

    Parameters
    ----------
    analyzed:
        The task under analysis (rate-scaled cost, platform delay, ...).
    phi_ab:
        Phase :math:`\\varphi^{\\nu(a)}_{a,b}` of the analyzed task for this
        scenario (Eq. 10 relative to the scenario's own-transaction starter).
    interference:
        Total higher-priority interference :math:`I(t)` for this scenario,
        already rate-scaled and platform-restricted.
    bound:
        Divergence bound for the inner fixed points; exceeding it makes the
        scenario report an infinite response time.
    """
    T = analyzed.period
    base = analyzed.delay + analyzed.blocking
    cost = analyzed.cost

    # Eq. 13: p0 indexes the earliest job whose jittered activation can
    # coincide with the busy-period start.
    p0 = 1 - floor_div(analyzed.jitter + phi_ab, T)

    # Busy-period length (Eq. between 13 and 14): own jobs present in [0, L)
    # are p0 .. ceil((L - phi)/T); their count is clamped at zero for
    # scenarios the analyzed task never joins.
    def busy_map(L: float) -> float:
        own_jobs = max(0, ceil_div(L - phi_ab, T) - p0 + 1)
        return base + own_jobs * cost + interference(L)

    evaluations = 0
    try:
        busy = iterate_fixed_point(busy_map, base + cost, bound=bound, tol=tol)
    except FixedPointDiverged as exc:
        return ScenarioOutcome(
            response=float("inf"), worst_job=None, busy_length=float("inf"),
            jobs_checked=0, evaluations=exc.iterations,
        )
    L = busy.value
    evaluations += busy.iterations

    p_last = ceil_div(L - phi_ab, T)  # Eq. 14
    if p_last < p0:
        # No job of the analyzed task inside this busy period.
        return ScenarioOutcome(
            response=float("-inf"), worst_job=None, busy_length=L,
            jobs_checked=0, evaluations=evaluations,
        )

    worst = float("-inf")
    worst_job: int | None = None
    checked = 0
    for p in range(p0, p_last + 1):
        def completion_map(w: float, p: int = p) -> float:
            return base + (p - p0 + 1) * cost + interference(w)

        try:
            comp = iterate_fixed_point(
                completion_map, base + cost, bound=bound, tol=tol
            )
        except FixedPointDiverged as exc:
            return ScenarioOutcome(
                response=float("inf"), worst_job=p, busy_length=L,
                jobs_checked=checked, evaluations=evaluations + exc.iterations,
            )
        w = comp.value
        evaluations += comp.iterations
        # Response measured from the transaction activation that released
        # job p: the activation instant is phi + (p-1)T - phi_bar.
        r = w - (phi_ab + (p - 1) * T - analyzed.phi)
        checked += 1
        if r > worst:
            worst = r
            worst_job = p
    return ScenarioOutcome(
        response=worst, worst_job=worst_job, busy_length=L, jobs_checked=checked,
        evaluations=evaluations,
    )
