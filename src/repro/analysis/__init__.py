"""Schedulability analysis on abstract computing platforms (paper Sec. 3).

Layering, bottom-up:

* :mod:`repro.analysis.busy` -- the interference machinery: phases
  (Eq. 7/10), per-task contributions :math:`W_{i,j}` (Eq. 8), per-scenario
  transaction contributions :math:`W^k_i` (Eq. 11) and Tindell's
  maximization :math:`W^*_i` (Eq. 15), all restricted to the analyzed
  task's platform (Eq. 17) with costs scaled by the platform rate.
* :mod:`repro.analysis.static_offsets` -- the **exact** scenario-enumeration
  response-time analysis of Sec. 3.1.1 for fixed offsets/jitters.
* :mod:`repro.analysis.reduced` -- the **reduced** analysis of Sec. 3.1.2
  (scenarios limited to the analyzed task's own transaction).
* :mod:`repro.analysis.bestcase` -- best-case response times: the paper's
  summation bound and a Redell-style iterative refinement.
* :mod:`repro.analysis.holistic` -- the outer "dynamic offset" fixed point
  of Sec. 3.2 coupling the per-platform analyses through Eq. 18; produces
  the iteration trace reproduced in Table 3.
* :mod:`repro.analysis.classic` -- classical holistic analysis as the
  special case :math:`(\\alpha,\\Delta,\\beta)=(1,0,0)`, plus an independent
  fixed-priority RTA baseline.
* :mod:`repro.analysis.schedulability` -- the one-call public API.
* :mod:`repro.analysis.scenarios` -- scenario counting/enumeration (Eq. 12).
* :mod:`repro.analysis.sensitivity` -- critical scaling factors and slacks.
"""

from repro.analysis.interfaces import (
    AnalysisConfig,
    IterationRow,
    SystemAnalysis,
    TaskAnalysis,
    UNSCHEDULABLE,
)
from repro.analysis.report import text_report
from repro.analysis.schedulability import (
    analyze,
    is_schedulable,
    response_bound_prefilter,
    utilization_prefilter,
)
from repro.analysis.holistic import holistic_analysis
from repro.analysis.static_offsets import response_time_exact
from repro.analysis.reduced import response_time_reduced
from repro.analysis.bestcase import best_case_response_times, simple_best_case
from repro.analysis.blocking import (
    CriticalSection,
    ResourceSpec,
    assign_ceiling_blocking,
    assign_nonpreemptive_blocking,
)
from repro.analysis.classic import analyze_dedicated, rta_independent
from repro.analysis.compositional import (
    LocalTask,
    dbf,
    edf_component_schedulable,
    fp_component_schedulable,
    rbf,
)
from repro.analysis.scenarios import count_scenarios_exact, count_scenarios_reduced
from repro.analysis.sensitivity import (
    critical_scaling_factor,
    delay_slack,
    rate_slack,
)

__all__ = [
    "AnalysisConfig",
    "IterationRow",
    "SystemAnalysis",
    "TaskAnalysis",
    "UNSCHEDULABLE",
    "analyze",
    "is_schedulable",
    "response_bound_prefilter",
    "utilization_prefilter",
    "text_report",
    "holistic_analysis",
    "response_time_exact",
    "response_time_reduced",
    "best_case_response_times",
    "simple_best_case",
    "analyze_dedicated",
    "rta_independent",
    "CriticalSection",
    "ResourceSpec",
    "assign_ceiling_blocking",
    "assign_nonpreemptive_blocking",
    "LocalTask",
    "dbf",
    "rbf",
    "edf_component_schedulable",
    "fp_component_schedulable",
    "count_scenarios_exact",
    "count_scenarios_reduced",
    "critical_scaling_factor",
    "delay_slack",
    "rate_slack",
]
