"""Reduced-scenario response-time analysis (paper Sec. 3.1.2).

Tindell's observation: the contribution of a *foreign* transaction can be
upper-bounded by maximizing over its candidate starters (Eq. 15,
:func:`repro.analysis.busy.w_transaction_star`), collapsing the exponential
scenario product to the :math:`N_a(\\tau_{a,b}) + 1` scenarios of the
analyzed task's own transaction (Eq. 16).  The result is a safe upper bound
on the exact analysis -- the property-based tests assert
``reduced >= exact`` on random systems.

This is the analysis the paper's worked example (Table 3) runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis._scenario import solve_scenario
from repro.analysis.busy import (
    HPTask,
    build_views,
    compile_w_transaction_k,
    compile_w_transaction_star,
    starter_phase_of_analyzed,
)
from repro.analysis.interfaces import AnalysisConfig
from repro.model.system import TransactionSystem

__all__ = ["ReducedResult", "response_time_reduced"]


@dataclass(frozen=True)
class ReducedResult:
    """Outcome of the reduced analysis for one task."""

    wcrt: float
    scenarios_evaluated: int
    #: Task index (within the analyzed transaction) of the starter attaining
    #: the worst case; ``-1`` when the analyzed task itself starts.
    worst_starter: int | None
    #: Inner fixed-point evaluations spent, divergent solves included.
    evaluations: int = 0


def _busy_bound(system: TransactionSystem, config: AnalysisConfig) -> float:
    longest = max(
        max(tr.period, float(tr.deadline)) for tr in system.transactions
    )
    return config.busy_bound_factor * longest


def response_time_reduced(
    system: TransactionSystem,
    a: int,
    b: int,
    *,
    config: AnalysisConfig | None = None,
) -> ReducedResult:
    """Upper bound on the worst-case response time of task ``(a, b)`` (Eq. 16)."""
    config = config or AnalysisConfig()
    analyzed, own, others = build_views(system, a, b)
    bound = _busy_bound(system, config)

    candidates: list[HPTask | None] = list(own.tasks) + [None]
    # Foreign transactions contribute W* regardless of the own-transaction
    # starter: compile them once, outside the candidate loop.
    others_w = [compile_w_transaction_star(view) for view in others]

    worst = float("-inf")
    worst_starter: int | None = None
    evaluated = 0
    evaluations = 0

    for starter in candidates:
        phi_ab = starter_phase_of_analyzed(analyzed, starter)
        own_w = compile_w_transaction_k(
            own, starter,
            starter_phi=analyzed.phi, starter_jitter=analyzed.jitter,
        )

        def interference(t: float, own_w=own_w) -> float:
            total = own_w(t)
            for w_star in others_w:
                total += w_star(t)
            return total

        outcome = solve_scenario(
            analyzed, phi_ab, interference, bound=bound, tol=config.tol
        )
        evaluated += 1
        evaluations += outcome.evaluations
        if outcome.response > worst:
            worst = outcome.response
            worst_starter = starter.index if starter is not None else -1
        if worst == float("inf"):
            break

    if worst == float("-inf"):
        raise AssertionError(
            f"no scenario constrained task ({a},{b}); "
            "the self-started scenario must always contain job p=p0"
        )
    return ReducedResult(
        wcrt=worst, scenarios_evaluated=evaluated, worst_starter=worst_starter,
        evaluations=evaluations,
    )
