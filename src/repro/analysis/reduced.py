"""Reduced-scenario response-time analysis (paper Sec. 3.1.2).

Tindell's observation: the contribution of a *foreign* transaction can be
upper-bounded by maximizing over its candidate starters (Eq. 15,
:func:`repro.analysis.busy.w_transaction_star`), collapsing the exponential
scenario product to the :math:`N_a(\\tau_{a,b}) + 1` scenarios of the
analyzed task's own transaction (Eq. 16).  The result is a safe upper bound
on the exact analysis -- the property-based tests assert
``reduced >= exact`` on random systems.

This is the analysis the paper's worked example (Table 3) runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis._scenario import solve_scenario
from repro.analysis.busy import (
    HPTask,
    build_views,
    compile_w_rows,
    compile_w_transaction_star,
    scenario_rows,
    starter_phase_of_analyzed,
)
from repro.analysis.interfaces import AnalysisConfig
from repro.model.system import TransactionSystem

__all__ = ["ReducedResult", "response_time_reduced"]


@dataclass(frozen=True)
class ReducedResult:
    """Outcome of the reduced analysis for one task."""

    wcrt: float
    scenarios_evaluated: int
    #: Task index (within the analyzed transaction) of the starter attaining
    #: the worst case; ``-1`` when the analyzed task itself starts.
    worst_starter: int | None
    #: Inner fixed-point evaluations spent, divergent solves included.
    evaluations: int = 0


def _busy_bound(system: TransactionSystem, config: AnalysisConfig) -> float:
    longest = max(
        max(tr.period, float(tr.deadline)) for tr in system.transactions
    )
    return config.busy_bound_factor * longest


def response_time_reduced(
    system: TransactionSystem,
    a: int,
    b: int,
    *,
    config: AnalysisConfig | None = None,
    views: tuple | None = None,
    bound: float | None = None,
    compile_cache: dict | None = None,
    ceiling: float = float("inf"),
) -> ReducedResult:
    """Upper bound on the worst-case response time of task ``(a, b)`` (Eq. 16).

    ``views`` optionally supplies a pre-projected ``(analyzed, own,
    others)`` triple (from a cached :class:`~repro.analysis.busy.ViewProjector`)
    so the outer holistic rounds skip re-projection; ``bound`` an already
    computed divergence bound; ``compile_cache`` a per-task dict the outer
    rounds thread through so compiled W closures are rebuilt only when the
    jitters they bake in actually moved; ``ceiling`` the verdict-mode
    response ceiling (``wcrt`` is reported as ``inf`` as soon as any
    scenario proves the response exceeds it -- see
    :func:`repro.analysis._scenario.solve_scenario`).
    """
    config = config or AnalysisConfig()
    analyzed, own, others = views if views is not None else build_views(system, a, b)
    if bound is None:
        bound = _busy_bound(system, config)
    kernel = config.kernel

    candidates: list[HPTask | None] = list(own.tasks) + [None]
    # Foreign transactions contribute W* regardless of the own-transaction
    # starter.  A view with a single interfering task degenerates (Eq. 15's
    # max over one candidate is the identity) into flat W rows that merge
    # with the own-view rows into one compiled closure per scenario; views
    # with several starters keep their batched W*.  Across outer rounds the
    # compiled closures are reused while the jitters they bake in are
    # unchanged (phases and carries depend on nothing else that moves).
    single = [v for v in others if len(v.tasks) == 1]
    multi = [v for v in others if len(v.tasks) > 1]
    if compile_cache is None:
        multi_w = tuple(
            compile_w_transaction_star(view, kernel=kernel) for view in multi
        )
    else:
        multi_list = []
        for view in multi:
            state = tuple(hp.jitter for hp in view.tasks)
            key = ("star", view.index)
            hit = compile_cache.get(key)
            if hit is not None and hit[0] == state:
                multi_list.append(hit[1])
            else:
                fn = compile_w_transaction_star(view, kernel=kernel)
                compile_cache[key] = (state, fn)
                multi_list.append(fn)
        multi_w = tuple(multi_list)

    worst = float("-inf")
    worst_starter: int | None = None
    evaluated = 0
    evaluations = 0

    # State baked into each scenario closure: the analyzed task's jitter
    # (anchor of the self-started scenario and its siblings' phases), the
    # own-view jitters and the merged single-starter foreign jitters.
    scenario_state = (
        (analyzed.jitter,)
        + tuple(hp.jitter for hp in own.tasks)
        + tuple(v.tasks[0].jitter for v in single)
    )
    shared_rows: tuple | None = None  # built on the first cache miss

    for starter in candidates:
        phi_ab = starter_phase_of_analyzed(analyzed, starter)
        starter_idx = starter.index if starter is not None else -1
        scenario_key = ("scenario", starter_idx)
        hit = (
            compile_cache.get(scenario_key)
            if compile_cache is not None
            else None
        )
        if hit is not None and hit[0] == scenario_state:
            scenario_w = hit[1]
        else:
            if shared_rows is None:
                shared_rows = ()
                for v in single:
                    row_key = ("rows", v.index)
                    row_hit = (
                        compile_cache.get(row_key)
                        if compile_cache is not None
                        else None
                    )
                    jit = v.tasks[0].jitter
                    if row_hit is not None and row_hit[0] == jit:
                        shared_rows += row_hit[1]
                    else:
                        v_rows = scenario_rows(v, v.tasks[0])
                        if compile_cache is not None:
                            compile_cache[row_key] = (jit, v_rows)
                        shared_rows += v_rows
            rows = (
                scenario_rows(
                    own, starter,
                    starter_phi=analyzed.phi, starter_jitter=analyzed.jitter,
                )
                + shared_rows
            )
            scenario_w = compile_w_rows(rows, kernel=kernel)
            if compile_cache is not None:
                compile_cache[scenario_key] = (scenario_state, scenario_w)

        # solve_scenario memoizes the interference per scenario (its busy
        # and completion fixed points revisit the same time points); here
        # only the raw sum is assembled -- with no multi-starter views the
        # merged closure is passed through without any wrapper.
        if multi_w:
            def interference(t: float, scenario_w=scenario_w) -> float:
                total = scenario_w(t)
                for w_star in multi_w:
                    total += w_star(t)
                return total
        else:
            interference = scenario_w

        outcome = solve_scenario(
            analyzed, phi_ab, interference, bound=bound, tol=config.tol,
            chain_jobs=config.driver_cache, memoize=config.driver_cache,
            response_ceiling=ceiling,
        )
        evaluated += 1
        evaluations += outcome.evaluations
        if outcome.response > worst:
            worst = outcome.response
            worst_starter = starter_idx
        if worst == float("inf"):
            break

    if worst == float("-inf"):
        raise AssertionError(
            f"no scenario constrained task ({a},{b}); "
            "the self-started scenario must always contain job p=p0"
        )
    return ReducedResult(
        wcrt=worst, scenarios_evaluated=evaluated, worst_starter=worst_starter,
        evaluations=evaluations,
    )
