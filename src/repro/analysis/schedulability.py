"""One-call public schedulability API.

``analyze(system)`` runs the full pipeline of the paper -- best-case bounds,
dynamic-offset fixed point, per-task worst-case response times -- and
returns a :class:`~repro.analysis.interfaces.SystemAnalysis` whose
``schedulable`` flag implements the paper's acceptance criterion: the last
task of every transaction meets the end-to-end deadline
(:math:`R_{i,n_i} \\le D_i`).
"""

from __future__ import annotations

from repro.analysis.holistic import holistic_analysis
from repro.analysis.interfaces import AnalysisConfig, SystemAnalysis
from repro.model.system import TransactionSystem

__all__ = ["analyze", "is_schedulable"]


def analyze(
    system: TransactionSystem,
    *,
    method: str = "reduced",
    best_case: str = "simple",
    trace: bool = False,
    config: AnalysisConfig | None = None,
    warm_start: dict[tuple[int, int], float] | None = None,
    in_place: bool = False,
) -> SystemAnalysis:
    """Analyze *system* and return response times plus the verdict.

    Parameters
    ----------
    system:
        The transaction system (use :mod:`repro.components` to derive one
        from a component assembly, or build it directly).
    method:
        ``"reduced"`` (default; Sec. 3.1.2) or ``"exact"`` (Sec. 3.1.1).
    best_case:
        ``"simple"`` (the paper's bound) or ``"iterative"`` (refined).
    trace:
        Record the per-iteration (J, R) table -- the shape of the paper's
        Table 3.
    config:
        Full configuration object; overrides *method*/*best_case* when given.
    warm_start:
        Initial jitter vector for the outer fixed point (see
        :func:`repro.analysis.holistic.holistic_analysis`); used by the
        campaign engine when sweeping a parameter upward.
    in_place:
        Analyze without cloning, mutating the derived offset/jitter
        fields of non-first tasks (see
        :func:`repro.analysis.holistic.holistic_analysis`).  Only for
        callers that own *system* and do not read those fields.

    Examples
    --------
    >>> from repro.paper import sensor_fusion_system
    >>> result = analyze(sensor_fusion_system())
    >>> result.schedulable
    True
    """
    if config is None:
        config = AnalysisConfig(method=method, best_case=best_case)
    return holistic_analysis(
        system, config=config, trace=trace, warm_start=warm_start,
        in_place=in_place,
    )


def is_schedulable(system: TransactionSystem, **kwargs) -> bool:
    """Shorthand: run :func:`analyze` and return only the verdict."""
    return analyze(system, **kwargs).schedulable
