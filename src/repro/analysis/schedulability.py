"""One-call public schedulability API and the verdict-mode pre-filters.

``analyze(system)`` runs the full pipeline of the paper -- best-case bounds,
dynamic-offset fixed point, per-task worst-case response times -- and
returns a :class:`~repro.analysis.interfaces.SystemAnalysis` whose
``schedulable`` flag implements the paper's acceptance criterion: the last
task of every transaction meets the end-to-end deadline
(:math:`R_{i,n_i} \\le D_i`).

Under ``AnalysisConfig(mode="verdict")`` two cheap pre-filters classify
easy systems before the holistic loop is entered at all, without ever
changing a verdict:

* **necessary utilization test** -- a platform whose rate-scaled demand
  exceeds its supply rate makes some busy period grow without bound, so
  the holistic analysis would report the system unschedulable; the filter
  reports it directly (:func:`utilization_prefilter`).
* **sufficient response-time upper bound** -- one round of per-task solves
  with every derived jitter *capped* at its deadline-implied maximum
  (:math:`J_{i,j} = D_i - R^{best}_{i,j-1}`).  If every response computed
  at the caps stays within its deadline, the jitter map :math:`G`
  satisfies :math:`G(J^{cap}) \\le J^{cap}`, so the least fixed point lies
  below the caps and its responses below the computed ones -- the system
  is schedulable without iterating (:func:`response_bound_prefilter`).

Both classifications are counted in
:class:`~repro.util.fixedpoint.FixedPointStats` (``prefilter_rejects`` /
``prefilter_accepts``) separately from regular solves.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.bestcase import best_case_response_times
from repro.analysis.busy import ViewProjector
from repro.analysis.holistic import _clone, holistic_analysis
from repro.analysis.interfaces import (
    AnalysisConfig,
    SystemAnalysis,
    TaskAnalysis,
    UNSCHEDULABLE,
)
from repro.analysis.reduced import response_time_reduced
from repro.model.system import TransactionSystem
from repro.util.fixedpoint import note_prefilter

__all__ = [
    "analyze",
    "is_schedulable",
    "response_bound_prefilter",
    "utilization_prefilter",
]

#: Relative slack of the utilization reject: a platform is rejected only
#: when its demand exceeds supply by more than this margin, so systems at
#: *exactly* full utilization (which can still converge -- e.g. one task
#: with C = T on a unit-rate platform) always reach the full analysis.
#: Misclassifying a barely-overloaded platform as "inconclusive" merely
#: costs the full analysis; the converse would be unsound.
_UTILIZATION_MARGIN = 1e-9


def utilization_prefilter(system: TransactionSystem) -> int | None:
    """Index of a provably over-utilized platform, or ``None``.

    A platform whose total rate-scaled demand strictly exceeds 1 cannot
    sustain its long-run load: the busy period of its lowest-priority task
    never closes, the holistic analysis diverges there and the system is
    unschedulable -- in exact mode just as in verdict mode, which is what
    makes this reject verdict-preserving.
    """
    for m in range(len(system.platforms)):
        if system.utilization(m) > 1.0 + _UTILIZATION_MARGIN:
            return m
    return None


def _reject_result(
    system: TransactionSystem, platform: int
) -> SystemAnalysis:
    """Synthetic unschedulable result for a utilization-rejected system."""
    tasks = {
        (i, j): TaskAnalysis(
            wcrt=UNSCHEDULABLE,
            bcrt=0.0,
            offset=task.offset,
            jitter=task.jitter,
            name=task.name,
        )
        for i, tr in enumerate(system.transactions)
        for j, task in enumerate(tr.tasks)
    }
    del platform  # which platform tripped the reject is in the stats only
    return SystemAnalysis(
        tasks=tasks,
        transaction_wcrt=[UNSCHEDULABLE] * len(system.transactions),
        transaction_deadline=[float(tr.deadline) for tr in system.transactions],
        schedulable=False,
        outer_iterations=0,
        converged=True,
        evaluations=0,
        prefilter="utilization",
    )


def response_bound_prefilter(
    work: TransactionSystem, config: AnalysisConfig
) -> SystemAnalysis | None:
    """Sufficient schedulability test: one solve round at capped jitters.

    Mutates *work* (derived offsets and jitters of non-first tasks), so the
    caller must own it -- :func:`analyze` clones first.  Returns a
    schedulable :class:`SystemAnalysis` (``prefilter="bound"``, per-task
    ``wcrt`` values are the *upper bounds* computed at the caps, not exact
    response times) or ``None`` when inconclusive.

    Soundness: with offsets fixed at :math:`R^{best}_{i,j-1}` (their final
    values), the outer iteration is the least fixed point of the monotone
    jitter map :math:`G(J)_{i,j} = R_{i,j-1}(J) - R^{best}_{i,j-1}`.  If
    every response computed at the cap vector
    :math:`J^{cap}_{i,j} = D_i - R^{best}_{i,j-1}` satisfies
    :math:`R_{i,j}(J^{cap}) \\le D_i`, then
    :math:`G(J^{cap}) \\le J^{cap}`, hence ``lfp(G) <= Jcap`` and the final
    responses are below the computed ones -- every deadline holds.  The
    reduced analysis is used regardless of ``config.method`` (it upper
    bounds the exact one, so the argument covers both).
    """
    best = best_case_response_times(work, method=config.best_case)
    for i, tr in enumerate(work.transactions):
        deadline = float(tr.deadline)
        for j in range(1, len(tr.tasks)):
            cap = deadline - best[(i, j - 1)]
            if cap < 0.0:
                return None  # cannot cap below zero: inconclusive
            tr.tasks[j].offset = best[(i, j - 1)]
            tr.tasks[j].jitter = cap
    bound = config.busy_bound_factor * max(
        max(tr.period, float(tr.deadline)) for tr in work.transactions
    )
    platform_index = ViewProjector.build_platform_index(work)
    evaluations = 0
    responses: dict[tuple[int, int], float] = {}
    for i, tr in enumerate(work.transactions):
        ceiling = float(tr.deadline) + config.tol
        for j in range(len(tr.tasks)):
            views = ViewProjector(work, i, j, platform_index).views()
            res = response_time_reduced(
                work, i, j, config=config, views=views, bound=bound,
                ceiling=ceiling,
            )
            evaluations += res.evaluations
            if res.wcrt > float(tr.deadline):
                return None  # bound above the deadline: inconclusive
            responses[(i, j)] = res.wcrt
    tasks = {
        (i, j): TaskAnalysis(
            wcrt=responses[(i, j)],
            bcrt=best[(i, j)],
            offset=task.offset,
            jitter=task.jitter,
            name=task.name,
        )
        for i, tr in enumerate(work.transactions)
        for j, task in enumerate(tr.tasks)
    }
    return SystemAnalysis(
        tasks=tasks,
        transaction_wcrt=[
            responses[(i, len(tr.tasks) - 1)]
            for i, tr in enumerate(work.transactions)
        ],
        transaction_deadline=[float(tr.deadline) for tr in work.transactions],
        schedulable=True,
        outer_iterations=0,
        converged=True,
        evaluations=evaluations,
        prefilter="bound",
    )


def analyze(
    system: TransactionSystem,
    *,
    method: str = "reduced",
    best_case: str = "simple",
    trace: bool = False,
    config: AnalysisConfig | None = None,
    warm_start: dict[tuple[int, int], float] | None = None,
    in_place: bool = False,
    mode: str | None = None,
) -> SystemAnalysis:
    """Analyze *system* and return response times plus the verdict.

    Parameters
    ----------
    system:
        The transaction system (use :mod:`repro.components` to derive one
        from a component assembly, or build it directly).
    method:
        ``"reduced"`` (default; Sec. 3.1.2) or ``"exact"`` (Sec. 3.1.1).
    best_case:
        ``"simple"`` (the paper's bound) or ``"iterative"`` (refined).
    trace:
        Record the per-iteration (J, R) table -- the shape of the paper's
        Table 3.
    config:
        Full configuration object; overrides *method*/*best_case* when given.
    warm_start:
        Initial jitter vector for the outer fixed point (see
        :func:`repro.analysis.holistic.holistic_analysis`); used by the
        campaign engine when sweeping a parameter upward.
    in_place:
        Analyze without cloning, mutating the derived offset/jitter
        fields of non-first tasks (see
        :func:`repro.analysis.holistic.holistic_analysis`).  Only for
        callers that own *system* and do not read those fields.
    mode:
        ``"exact"`` or ``"verdict"`` (see
        :class:`~repro.analysis.interfaces.AnalysisConfig`); overrides the
        config's mode when given.  In verdict mode the ``schedulable``
        flag is identical to exact mode, but per-task response times may
        be partial or upper bounds once the verdict is decided.

    Examples
    --------
    >>> from repro.paper import sensor_fusion_system
    >>> result = analyze(sensor_fusion_system())
    >>> result.schedulable
    True
    """
    if config is None:
        config = AnalysisConfig(
            method=method, best_case=best_case, mode=mode or "exact"
        )
    elif mode is not None and mode != config.mode:
        config = replace(config, mode=mode)
    # A trace request wants the outer iteration table; a pre-filter-
    # classified result has no iterations to show (render_table3 would
    # refuse it), so tracing runs the holistic loop -- still in verdict
    # mode, whose early exits keep every recorded row complete.
    if config.mode == "verdict" and config.prefilters and not trace:
        reject = utilization_prefilter(system)
        if reject is not None:
            note_prefilter(accepted=False)
            return _reject_result(system, reject)
        work = system if in_place else _clone(system)
        accepted = response_bound_prefilter(work, config)
        if accepted is not None:
            note_prefilter(accepted=True)
            return accepted
        # Inconclusive: fall through to the holistic loop on the same
        # clone (it re-derives every offset/jitter the filter touched).
        return holistic_analysis(
            work, config=config, trace=trace, warm_start=warm_start,
            in_place=True,
        )
    return holistic_analysis(
        system, config=config, trace=trace, warm_start=warm_start,
        in_place=in_place,
    )


def is_schedulable(
    system: TransactionSystem,
    *,
    method: str = "reduced",
    best_case: str = "simple",
    config: AnalysisConfig | None = None,
    mode: str | None = None,
    **unknown,
) -> bool:
    """Shorthand: the schedulability verdict of *system*, nothing else.

    With no *config* and no *mode*, delegates to the verdict-mode
    pipeline (early-exit solves plus pre-filters) -- the verdict is
    identical to ``mode="exact"``, only cheaper, which is exactly what a
    bool-returning API wants.  An explicit *mode* or a *config* carrying
    one is respected as given (``mode="exact"``, or an exact-mode
    config, forces the full analysis).

    Unknown keyword arguments raise :class:`TypeError` (this function
    used to take ``**kwargs`` and forward them, which silently accepted
    misspelled options whenever they happened to collide with ``analyze``
    parameters that change no verdict).
    """
    if unknown:
        raise TypeError(
            "is_schedulable() got unexpected keyword argument(s): "
            + ", ".join(sorted(unknown))
        )
    if mode is None and config is None:
        mode = "verdict"
    return analyze(
        system, method=method, best_case=best_case, config=config, mode=mode
    ).schedulable
