"""Human-readable analysis reports.

Bundles everything a reviewer asks for into one text document: system
inventory, per-platform utilizations, per-task response-time table,
end-to-end verdicts, and (optionally) the Table-3-style iteration trace --
the artifact a downstream user attaches to a design review.
"""

from __future__ import annotations

import math

from repro.analysis.interfaces import AnalysisConfig, SystemAnalysis
from repro.analysis.schedulability import analyze
from repro.model.system import TransactionSystem
from repro.viz.tables import format_table

__all__ = ["text_report"]


def _fmt(x: float, digits: int = 4) -> str:
    if math.isinf(x):
        return "inf"
    return f"{x:.{digits}g}"


def text_report(
    system: TransactionSystem,
    result: SystemAnalysis | None = None,
    *,
    config: AnalysisConfig | None = None,
    include_trace: bool = False,
) -> str:
    """Produce the full text report for *system*.

    Pass a pre-computed *result* to avoid re-analysis; otherwise the system
    is analyzed with *config* (trace recording is forced on when
    ``include_trace`` is requested).
    """
    if result is None:
        result = analyze(system, config=config, trace=include_trace)
    if include_trace and not result.iterations:
        raise ValueError(
            "include_trace requested but the provided result has no "
            "iteration trace; analyze with trace=True"
        )

    sections: list[str] = []
    title = system.name or "unnamed system"
    verdict = "SCHEDULABLE" if result.schedulable else "NOT SCHEDULABLE"
    sections.append(f"Schedulability report -- {title}: {verdict}")
    sections.append(
        f"{len(system.transactions)} transactions, {system.total_tasks()} tasks, "
        f"{len(system.platforms)} platforms; analysis converged = "
        f"{result.converged} in {result.outer_iterations} outer iteration(s)."
    )

    # Platforms.
    platform_rows = []
    for m, p in enumerate(system.platforms):
        platform_rows.append([
            getattr(p, "name", "") or f"Pi{m + 1}",
            _fmt(p.rate), _fmt(p.delay), _fmt(p.burstiness),
            f"{system.utilization(m):.1%}",
            str(len(system.tasks_on(m))),
        ])
    sections.append(format_table(
        ["platform", "alpha", "Delta", "beta", "utilization", "tasks"],
        platform_rows,
        title="Platforms",
    ))

    # Transactions.
    txn_rows = []
    for i, tr in enumerate(system.transactions):
        r = result.transaction_wcrt[i]
        txn_rows.append([
            tr.name or f"Gamma{i + 1}",
            _fmt(tr.period), _fmt(tr.deadline),
            _fmt(r), _fmt(result.slack(i)),
            "ok" if r <= tr.deadline + 1e-9 else "MISS",
        ])
    sections.append(format_table(
        ["transaction", "T", "D", "wcrt", "slack", "verdict"],
        txn_rows,
        title="End-to-end responses",
    ))

    # Tasks.
    task_rows = []
    for (i, j), ta in sorted(result.tasks.items()):
        task = system.transactions[i].tasks[j]
        task_rows.append([
            ta.name or f"tau_{i + 1}_{j + 1}",
            f"Pi{task.platform + 1}",
            str(task.priority),
            _fmt(task.wcet), _fmt(ta.offset), _fmt(ta.jitter),
            _fmt(ta.bcrt), _fmt(ta.wcrt),
        ])
    sections.append(format_table(
        ["task", "platform", "p", "C", "phi", "J", "bcrt", "wcrt"],
        task_rows,
        title="Per-task results",
    ))

    if include_trace:
        from repro.paper.tables import render_table3

        for i, tr in enumerate(system.transactions):
            if len(tr.tasks) > 1:
                sections.append(render_table3(result, transaction=i))

    if result.misses():
        missed = ", ".join(
            system.transactions[i].name or f"Gamma{i + 1}"
            for i in result.misses()
        )
        sections.append(f"Deadline misses: {missed}")

    return "\n\n".join(sections)
