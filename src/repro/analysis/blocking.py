"""Blocking terms from shared resources (filling the paper's :math:`B_{a,b}`).

Eq. 13 of the paper carries a blocking term :math:`B_{a,b}` without
computing it.  This module computes it for the two classical protocols on
*local* (per-platform) resources under fixed priorities:

* **SRP/PCP-style ceiling blocking** (:func:`assign_ceiling_blocking`):
  a task can be blocked at most once, by the longest critical section of a
  lower-priority task on the same platform accessing a resource whose
  ceiling is at least the task's priority;
* **non-preemptive sections** (:func:`assign_nonpreemptive_blocking`):
  every task is blocked by the longest lower-priority section on its
  platform (the degenerate case where every resource's ceiling is the
  maximum).

Critical-section durations are given in *cycles* and scaled by the platform
rate like any other demand.  The computed terms are written into each
task's ``blocking`` field, where the response-time analyses already consume
them (Eq. 13/16).

Resources are local to a platform by construction -- the paper's components
do not share memory across platforms (they interact by RPC only), so a
resource spanning two platforms is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.system import TransactionSystem

__all__ = [
    "CriticalSection",
    "ResourceSpec",
    "assign_ceiling_blocking",
    "assign_nonpreemptive_blocking",
    "resource_ceilings",
]


@dataclass(frozen=True)
class CriticalSection:
    """One access: task ``(txn, idx)`` holds *resource* for *duration* cycles."""

    txn: int
    idx: int
    resource: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(
                f"critical section on {self.resource!r} must have positive "
                f"duration, got {self.duration!r}"
            )


@dataclass
class ResourceSpec:
    """The set of critical sections of a system."""

    sections: list[CriticalSection] = field(default_factory=list)

    def add(self, txn: int, idx: int, resource: str, duration: float) -> "ResourceSpec":
        """Append one access (chainable)."""
        self.sections.append(CriticalSection(txn, idx, resource, duration))
        return self

    def validate(self, system: TransactionSystem) -> None:
        """Check indices and platform-locality of every resource."""
        resource_platform: dict[str, int] = {}
        for cs in self.sections:
            if cs.txn >= len(system.transactions):
                raise ValueError(f"critical section references transaction {cs.txn}")
            txn = system.transactions[cs.txn]
            if cs.idx >= len(txn.tasks):
                raise ValueError(
                    f"critical section references task ({cs.txn},{cs.idx})"
                )
            task = txn.tasks[cs.idx]
            if task.wcet < cs.duration - 1e-12:
                raise ValueError(
                    f"critical section on {cs.resource!r} ({cs.duration}) exceeds "
                    f"the wcet of task ({cs.txn},{cs.idx}) ({task.wcet})"
                )
            seen = resource_platform.setdefault(cs.resource, task.platform)
            if seen != task.platform:
                raise ValueError(
                    f"resource {cs.resource!r} is accessed from platforms "
                    f"{seen} and {task.platform}; cross-platform sharing is "
                    "not part of the model (components interact by RPC)"
                )


def resource_ceilings(
    spec: ResourceSpec, system: TransactionSystem
) -> dict[str, int]:
    """Priority ceiling of each resource: max priority of any accessor."""
    ceilings: dict[str, int] = {}
    for cs in spec.sections:
        prio = system.transactions[cs.txn].tasks[cs.idx].priority
        ceilings[cs.resource] = max(ceilings.get(cs.resource, prio), prio)
    return ceilings


def assign_ceiling_blocking(
    system: TransactionSystem, spec: ResourceSpec
) -> TransactionSystem:
    """Set each task's ``blocking`` to its SRP/PCP bound (in place).

    :math:`B_{a,b} = \\max\\{ \\mathrm{duration}(cs)/\\alpha :
    cs` held by a lower-priority task on the same platform with
    :math:`\\mathrm{ceiling}(cs.resource) \\ge p_{a,b}\\}` -- the classical
    "blocked at most once, by one critical section" bound.
    """
    spec.validate(system)
    ceilings = resource_ceilings(spec, system)
    for i, tr in enumerate(system.transactions):
        for j, task in enumerate(tr.tasks):
            alpha = system.platforms[task.platform].rate
            worst = 0.0
            for cs in spec.sections:
                holder = system.transactions[cs.txn].tasks[cs.idx]
                if holder.platform != task.platform:
                    continue
                if (i, j) == (cs.txn, cs.idx):
                    continue
                if holder.priority >= task.priority:
                    continue  # only lower-priority holders block
                if ceilings[cs.resource] >= task.priority:
                    worst = max(worst, cs.duration / alpha)
            task.blocking = worst
    return system


def assign_nonpreemptive_blocking(
    system: TransactionSystem, durations: dict[tuple[int, int], float]
) -> TransactionSystem:
    """Blocking when tasks end with non-preemptable sections (in place).

    ``durations[(i, j)]`` is the longest non-preemptable section of task
    ``(i, j)`` in cycles.  Every task is blocked by the longest section of
    any lower-priority task on its platform.
    """
    for (i, j), d in durations.items():
        task = system.transactions[i].tasks[j]
        if d < 0 or d > task.wcet + 1e-12:
            raise ValueError(
                f"non-preemptable section of task ({i},{j}) must lie in "
                f"[0, wcet], got {d!r}"
            )
    for i, tr in enumerate(system.transactions):
        for j, task in enumerate(tr.tasks):
            alpha = system.platforms[task.platform].rate
            worst = 0.0
            for (bi, bj), d in durations.items():
                holder = system.transactions[bi].tasks[bj]
                if holder.platform != task.platform or (bi, bj) == (i, j):
                    continue
                if holder.priority < task.priority:
                    worst = max(worst, d / alpha)
            task.blocking = worst
    return system
