"""Best-case response times (paper Sec. 3.2, closing equations).

The dynamic-offset coupling of Eq. 18 needs a *lower* bound on the best-case
response time of every task: offsets are set to the predecessor's best case
and jitters to the spread between worst and best case.

Three estimators are provided:

* ``method="simple"`` -- the paper's summation bound
  :math:`R^{best}_{i,j} = \\sum_{k=1}^{j} \\max(0,\\ C^{best}_{i,k}/\\alpha
  - \\beta)`.  Two deviations from the published equation are documented in
  DESIGN.md Sec. 4: the sum runs through ``k = j`` (the published ``j-1``
  contradicts the paper's own Table 1 offsets), and the published
  :math:`\\beta`-subtraction **overestimates** the true best case under the
  paper's own supply model (a compliant burst delivers
  :math:`\\beta + \\alpha t` cycles, so the sound term divides the
  burstiness by the rate).  The "simple" method reproduces the paper.
* ``method="sound"`` -- the same summation with the envelope-correct term
  :math:`\\max(0, (C^{best} - \\beta)/\\alpha)`; this is the bound the
  simulation validation checks against.
* ``method="iterative"`` -- a Redell-style refinement of the sound bound
  for the head of the chain: the first task's best case accounts for the
  minimum number of higher-priority jobs that must execute in any window
  ending at its completion.
"""

from __future__ import annotations

from repro.model.system import TransactionSystem
from repro.util.math import EPS, ceil_div

try:  # Optional vector path, mirroring repro.analysis.busy.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships numpy
    _np = None

#: Interferer count above which the Redell refinement switches its inner
#: reduction to NumPy (same crossover rationale as busy.VECTOR_MIN_JOBS).
_VECTOR_MIN_INTERFERERS = 24

__all__ = [
    "simple_best_case",
    "sound_best_case",
    "iterative_best_case",
    "best_case_response_times",
]


def _summation(system: TransactionSystem, a: int, b: int, *, sound: bool) -> float:
    txn = system.transactions[a]
    total = 0.0
    for k in range(b + 1):
        task = txn.tasks[k]
        platform = system.platforms[task.platform]
        total += task.scaled_bcet(platform.rate, platform.burstiness, sound=sound)
    return total


def simple_best_case(system: TransactionSystem, a: int, b: int) -> float:
    """The paper's best-case bound for task ``(a, b)`` (sum through ``k=b``)."""
    return _summation(system, a, b, sound=False)


def sound_best_case(system: TransactionSystem, a: int, b: int) -> float:
    """Envelope-correct best-case bound (burstiness divided by the rate)."""
    return _summation(system, a, b, sound=True)


def _best_case_first_task(system: TransactionSystem, a: int) -> float:
    """Redell-style lower bound for the first task of transaction *a*.

    Best-case recurrence for fixed-priority tasks (Redell & Sanfridson
    2002, adapted to the rate/burstiness supply abstraction): the job
    completing at the end of a busy interval of length ``R`` has seen at
    least ``ceil(R/T_i) - 1`` jobs of each higher-priority task; iterating

    .. math:: R \\leftarrow (C^{best} - \\beta)/\\alpha +
              \\sum_{hp} (\\lceil R/T_i \\rceil - 1)\\, C^{best}_i/\\alpha

    downward from the sound bound plus one round of interference converges
    to a valid lower bound; we clamp at the sound single-task bound.
    """
    task = system.transactions[a].tasks[0]
    platform = system.platforms[task.platform]
    alpha = platform.rate
    own_best = task.scaled_bcet(alpha, platform.burstiness, sound=True)

    interferers: list[tuple[float, float]] = []  # (scaled bcet, period)
    for i, tr in enumerate(system.transactions):
        for j, t in enumerate(tr.tasks):
            if i == a and j == 0:
                continue
            if t.platform == task.platform and t.priority >= task.priority:
                interferers.append((t.bcet / alpha, tr.period))
    if not interferers:
        return own_best

    # Iterate downward from an upper starting point; the map is monotone
    # non-decreasing so the iteration converges to the greatest fixed point
    # below the start, which is a sound best-case estimate.
    r = own_best + sum(c for c, _ in interferers)
    if _np is not None and len(interferers) >= _VECTOR_MIN_INTERFERERS:
        # Vectorized reduction with ceil_div's epsilon-snapping semantics.
        costs = _np.array([c for c, _ in interferers], dtype=float)
        periods = _np.array([T for _, T in interferers], dtype=float)
        for _ in range(10_000):
            x = r / periods
            nearest = _np.rint(x)
            jobs = _np.where(_np.abs(x - nearest) <= EPS, nearest, _np.ceil(x)) - 1.0
            nxt = own_best + float(_np.maximum(jobs, 0.0) @ costs)
            if nxt >= r - 1e-9:
                break
            r = nxt
        return max(own_best, r)
    for _ in range(10_000):
        nxt = own_best + sum(
            max(0, ceil_div(r, T) - 1) * c for c, T in interferers
        )
        if nxt >= r - 1e-9:
            break
        r = nxt
    return max(own_best, r)


def iterative_best_case(system: TransactionSystem, a: int, b: int) -> float:
    """Refined sound bound: Redell-style head + chained best service."""
    head = _best_case_first_task(system, a)
    tail = 0.0
    txn = system.transactions[a]
    for k in range(1, b + 1):
        task = txn.tasks[k]
        platform = system.platforms[task.platform]
        tail += task.scaled_bcet(platform.rate, platform.burstiness, sound=True)
    return max(head + tail, sound_best_case(system, a, b))


_METHODS = {
    "simple": simple_best_case,
    "sound": sound_best_case,
    "iterative": iterative_best_case,
}


def best_case_response_times(
    system: TransactionSystem, *, method: str = "simple"
) -> dict[tuple[int, int], float]:
    """Best-case response time of every task, keyed by (txn, task) index."""
    fn = _METHODS.get(method)
    if fn is None:
        raise ValueError(
            f"unknown best-case method {method!r}; expected one of {sorted(_METHODS)}"
        )
    out: dict[tuple[int, int], float] = {}
    if method in ("simple", "sound"):
        # The summation bounds are prefix sums along each chain: one pass
        # per transaction instead of re-summing the prefix per task (this
        # runs once per holistic analysis, i.e. per campaign cell).
        sound = method == "sound"
        for i, tr in enumerate(system.transactions):
            total = 0.0
            for j, task in enumerate(tr.tasks):
                platform = system.platforms[task.platform]
                total += task.scaled_bcet(
                    platform.rate, platform.burstiness, sound=sound
                )
                out[(i, j)] = total
        return out
    for i, tr in enumerate(system.transactions):
        for j in range(len(tr.tasks)):
            out[(i, j)] = fn(system, i, j)
    return out
