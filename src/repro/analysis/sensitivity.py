"""Sensitivity analysis: scaling factors and platform slacks.

The paper's closing discussion asks how platform parameters could be
*derived* rather than assumed; sensitivity analysis is the measuring stick
for that search (used by :mod:`repro.opt`): how much can execution demand
grow, a platform rate shrink, or a platform delay grow, before the system
stops being schedulable?  All three are monotone properties, so plain
bisection is exact up to the requested tolerance.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.interfaces import AnalysisConfig
from repro.analysis.schedulability import analyze
from repro.model.system import TransactionSystem
from repro.model.transaction import Transaction
from repro.platforms.linear import LinearSupplyPlatform

__all__ = ["critical_scaling_factor", "rate_slack", "delay_slack", "bisect_monotone"]


def bisect_monotone(
    predicate: Callable[[float], bool],
    lo: float,
    hi: float,
    *,
    tol: float = 1e-4,
    max_steps: int = 200,
) -> float:
    """Largest ``x`` in ``[lo, hi]`` with ``predicate(x)`` true.

    *predicate* must be monotone non-increasing in ``x`` (true below the
    threshold, false above).  Returns *lo* if even ``predicate(lo)`` fails
    and *hi* if ``predicate(hi)`` holds.
    """
    if predicate(hi):
        return hi
    if not predicate(lo):
        return lo
    steps = 0
    while hi - lo > tol and steps < max_steps:
        mid = 0.5 * (lo + hi)
        if predicate(mid):
            lo = mid
        else:
            hi = mid
        steps += 1
    return lo


def _scaled_system(system: TransactionSystem, factor: float) -> TransactionSystem:
    """Copy of *system* with every task's wcet/bcet scaled by *factor*."""
    return TransactionSystem(
        transactions=[
            Transaction(
                period=tr.period,
                deadline=tr.deadline,
                name=tr.name,
                tasks=[
                    t.with_updates(wcet=t.wcet * factor, bcet=t.bcet * factor)
                    for t in tr.tasks
                ],
            )
            for tr in system.transactions
        ],
        platforms=list(system.platforms),
        name=system.name,
    )


def critical_scaling_factor(
    system: TransactionSystem,
    *,
    config: AnalysisConfig | None = None,
    hi: float = 16.0,
    tol: float = 1e-4,
) -> float:
    """Largest uniform execution-time scaling keeping the system schedulable.

    A value above 1 measures robustness margin; below 1 the system is
    already unschedulable and the value measures how much it must shrink.
    """
    def ok(factor: float) -> bool:
        return analyze(_scaled_system(system, factor), config=config).schedulable

    return bisect_monotone(ok, 1e-6, hi, tol=tol)


def _with_platform(
    system: TransactionSystem, index: int, platform: LinearSupplyPlatform
) -> TransactionSystem:
    platforms = list(system.platforms)
    platforms[index] = platform
    return TransactionSystem(
        transactions=system.transactions, platforms=platforms, name=system.name
    )


def rate_slack(
    system: TransactionSystem,
    platform_index: int,
    *,
    config: AnalysisConfig | None = None,
    tol: float = 1e-4,
) -> float:
    """Smallest rate of platform *platform_index* keeping the system schedulable.

    Keeps the platform's delay and burstiness fixed.  The returned rate is
    the bandwidth the component actually *needs* -- the quantity the paper's
    future-work optimization would assign.
    """
    base = system.platforms[platform_index]

    def ok_at(rate: float) -> bool:
        candidate = LinearSupplyPlatform(
            rate=rate,
            delay=base.delay,
            burstiness=base.burstiness,
            allow_superunit=True,
        )
        return analyze(
            _with_platform(system, platform_index, candidate), config=config
        ).schedulable

    # Monotone: larger rate => easier. Find the smallest feasible rate.
    hi = base.rate
    if not ok_at(hi):
        return float("inf")  # infeasible even at the current rate
    lo_bound = 1e-6
    # bisect on the *negated* axis: predicate(x) := ok_at(hi + lo_bound - x)
    best = bisect_monotone(lambda x: ok_at(hi + lo_bound - x), lo_bound, hi, tol=tol)
    return hi + lo_bound - best


def delay_slack(
    system: TransactionSystem,
    platform_index: int,
    *,
    config: AnalysisConfig | None = None,
    hi: float = 1e4,
    tol: float = 1e-4,
) -> float:
    """Largest delay of platform *platform_index* keeping the system schedulable."""
    base = system.platforms[platform_index]

    def ok_at(delay: float) -> bool:
        candidate = LinearSupplyPlatform(
            rate=base.rate,
            delay=delay,
            burstiness=base.burstiness,
            allow_superunit=True,
        )
        return analyze(
            _with_platform(system, platform_index, candidate), config=config
        ).schedulable

    if not ok_at(base.delay):
        return float("-inf")  # already infeasible at the current delay
    return bisect_monotone(ok_at, base.delay, hi, tol=tol)
