"""The dynamic-offset outer fixed point (paper Sec. 3.2).

Tasks of a transaction are released by the completion of their predecessor,
so their offsets and jitters are not free parameters: Eq. 18 ties them to
the predecessor's best/worst-case response times,

.. math:: \\phi_{i,j} = R^{best}_{i,j-1}, \\qquad
          J_{i,j} = R_{i,j-1} - R^{best}_{i,j-1}.

The "static offset" analyses of Sec. 3.1 are iterated at a higher level:
starting from :math:`J_{i,j} = 0`, each round recomputes every response time
with the current jitters and then refreshes the jitters from the new
responses (a Jacobi iteration -- exactly the scheme whose trace the paper
reports in Table 3).  Monotonicity of response times in the jitters
guarantees convergence to the least fixed point when the busy periods close.

Two driver optimizations sit on top of the paper's scheme, neither of which
moves a single converged value:

* the Eq. 17 projection of every task is built once per analysis (offsets
  and priorities are fixed after initialization; only jitters move) and
  re-snapshotted per solve through a cached
  :class:`~repro.analysis.busy.ViewProjector`;
* under ``update="gauss_seidel"`` with ``incremental=True`` the rounds run
  a *chain-aware dirty set*: tasks are visited in precedence order and a
  task is re-solved only when some jitter it can observe (its own, or that
  of an interfering task on its platform) moved by more than the
  convergence tolerance in the meantime.  Re-solving a task whose inputs
  are unchanged returns the identical response, so skipping it is exact --
  deep chains stop paying full-system sweeps once their upstream prefixes
  stabilize.  Jacobi never skips: its full-round trace is the paper's.
"""

from __future__ import annotations

import math

from repro.analysis.bestcase import best_case_response_times
from repro.analysis.busy import ViewProjector
from repro.analysis.interfaces import (
    AnalysisConfig,
    IterationRow,
    SystemAnalysis,
    TaskAnalysis,
    UNSCHEDULABLE,
)
from repro.analysis.reduced import response_time_reduced
from repro.analysis.static_offsets import response_time_exact
from repro.model.system import TransactionSystem
from repro.model.transaction import Transaction
from repro.util.fixedpoint import note_outer_tasks

__all__ = ["holistic_analysis"]


def _clone(system: TransactionSystem) -> TransactionSystem:
    """Deep-copy transactions (tasks included) so the input stays pristine."""
    return TransactionSystem(
        transactions=[
            Transaction(
                period=tr.period,
                deadline=tr.deadline,
                name=tr.name,
                meta=dict(tr.meta),
                tasks=[t.unvalidated_copy() for t in tr.tasks],
            )
            for tr in system.transactions
        ],
        platforms=list(system.platforms),
        name=system.name,
        meta=dict(system.meta),
    )


def _jitter_dependents(
    work: TransactionSystem,
) -> dict[tuple[int, int], tuple[tuple[int, int], ...]]:
    """Static interference-dependency map for the dirty-set scheduler.

    ``dependents[(i, j)]`` lists every task whose response-time solve reads
    the jitter of task ``(i, j)``: the Eq. 17 projection of task ``(a, b)``
    contains ``(i, j)`` iff both share a platform and ``(i, j)`` has
    priority at least ``(a, b)``'s -- and every task additionally reads its
    own jitter (Eq. 13's ``p0`` and the starter phases).  Platforms and
    priorities are fixed for the whole analysis, so the map is built once.
    """
    keys = [
        ((i, j), t.platform, t.priority)
        for i, tr in enumerate(work.transactions)
        for j, t in enumerate(tr.tasks)
    ]
    dependents: dict[tuple[int, int], tuple[tuple[int, int], ...]] = {}
    for key, platform, priority in keys:
        dependents[key] = tuple(
            other
            for other, o_platform, o_priority in keys
            if o_platform == platform and o_priority <= priority
        )
    return dependents


def holistic_analysis(
    system: TransactionSystem,
    *,
    config: AnalysisConfig | None = None,
    trace: bool = True,
    warm_start: dict[tuple[int, int], float] | None = None,
    in_place: bool = False,
) -> SystemAnalysis:
    """Run the full dynamic-offset analysis on *system*.

    Parameters
    ----------
    system:
        The transaction system.  Offsets/jitters of non-first tasks are
        *derived* (Eq. 18) and any input values for them are ignored; the
        first task of each transaction keeps its input offset and jitter.
    in_place:
        Skip the defensive clone and iterate directly on *system*,
        mutating the derived offsets/jitters of non-first tasks.  Sound
        for callers that own the system and never read those fields (the
        campaign engine analyzes each generated system once and discards
        it); re-analyzing a mutated system gives identical results, since
        the derived fields are recomputed from scratch every run.
    config:
        Analysis knobs; defaults to the reduced method with the paper's
        simple best-case bound.
    trace:
        Record the per-iteration ``(J, R)`` table (Table 3 of the paper).
    warm_start:
        Optional initial jitter vector keyed like
        :meth:`SystemAnalysis.final_jitters`, typically the converged
        jitters of a *nearby* system (the previous cell of an ascending
        utilization sweep, whose jitters are componentwise below the new
        least fixed point).  Entries for first tasks and infinite entries
        are ignored.  The outer Jacobi iteration then resumes from that
        vector instead of ``J = 0`` and converges to the same least fixed
        point in fewer rounds.

    Returns
    -------
    SystemAnalysis
        Final response times, verdict, and (optionally) the iteration trace.
    """
    config = config or AnalysisConfig()
    work = system if in_place else _clone(system)
    n_txn = len(work.transactions)
    all_keys = [
        (i, j)
        for i, tr in enumerate(work.transactions)
        for j in range(len(tr.tasks))
    ]
    verdict = config.mode == "verdict"

    # Round visit order.  In verdict mode the most-constrained transactions
    # (highest rate-scaled demand relative to their end-to-end deadline) go
    # first, so a provable miss aborts the round before the easy
    # transactions are paid for; precedence order is preserved within each
    # transaction (the in-round Eq. 18 refresh needs predecessors first)
    # and any visit order converges to the same least fixed point.
    order = all_keys
    if verdict:
        def _txn_pressure(i: int) -> float:
            tr = work.transactions[i]
            demand = sum(
                t.wcet / work.platforms[t.platform].rate for t in tr.tasks
            )
            dl = float(tr.deadline)
            return demand / dl if dl > 0 else math.inf

        txn_order = sorted(range(n_txn), key=lambda i: (-_txn_pressure(i), i))
        order = [
            (i, j)
            for i in txn_order
            for j in range(len(work.transactions[i].tasks))
        ]
    # Per-transaction verdict ceiling for the inner solves: a response
    # iterate past ``deadline + tol`` proves the end-to-end miss (responses
    # are non-decreasing along a precedence chain, and outer rounds
    # approach the fixed point from below), so the solve aborts there.
    txn_ceiling = (
        [float(tr.deadline) + config.tol for tr in work.transactions]
        if verdict
        else None
    )

    best = best_case_response_times(work, method=config.best_case)

    # Initial state: phi_{i,j} = Rbest_{i,j-1}, J = 0 (paper Sec. 3.2),
    # unless a warm-start jitter vector resumes the sweep.
    warm_used = False
    for i, tr in enumerate(work.transactions):
        for j in range(1, len(tr.tasks)):
            tr.tasks[j].offset = best[(i, j - 1)]
            jit = 0.0
            if warm_start is not None:
                guess = warm_start.get((i, j), 0.0)
                if guess > 0.0 and math.isfinite(guess):
                    jit = guess
                    warm_used = True
            tr.tasks[j].jitter = jit

    # Offsets are final now; the Eq. 17 projections are structurally fixed
    # for the rest of the analysis and only re-snapshot jitters per solve.
    projectors: dict[tuple[int, int], ViewProjector] = {}
    compile_caches: dict[tuple[int, int], dict] = {}
    platform_index = (
        ViewProjector.build_platform_index(work) if config.driver_cache else None
    )
    busy_bound = config.busy_bound_factor * max(
        max(tr.period, float(tr.deadline)) for tr in work.transactions
    )

    evaluations = 0
    task_solves = 0
    task_skips = 0

    def compute_one(i: int, j: int) -> float:
        nonlocal evaluations, task_solves
        task_solves += 1
        if math.isinf(work.transactions[i].tasks[j].jitter):
            return UNSCHEDULABLE
        ceiling = txn_ceiling[i] if txn_ceiling is not None else math.inf
        if config.driver_cache:
            projector = projectors.get((i, j))
            if projector is None:
                projector = projectors[(i, j)] = ViewProjector(
                    work, i, j, platform_index
                )
                compile_caches[(i, j)] = {}
            views = projector.views()
            cache = compile_caches[(i, j)]
        else:
            views = ViewProjector(work, i, j).views()
            cache = None
        if config.method == "exact":
            res = response_time_exact(
                work, i, j, config=config, views=views, bound=busy_bound,
                ceiling=ceiling,
            )
        else:
            res = response_time_reduced(
                work, i, j, config=config, views=views, bound=busy_bound,
                compile_cache=cache, ceiling=ceiling,
            )
        evaluations += res.evaluations
        return res.wcrt

    incremental = config.update == "gauss_seidel" and config.incremental
    dependents = _jitter_dependents(work) if incremental else {}
    # Visit rank for the "already visited this round?" test of the dirty
    # marking; only needed when the verdict ordering departs from the
    # canonical key order (where tuple comparison is the rank).
    rank = (
        {key: pos for pos, key in enumerate(order)}
        if incremental and verdict
        else None
    )
    # Tasks whose inputs may have moved since their last solve.  Everything
    # is dirty before the first round; Jacobi and the full Gauss-Seidel
    # sweep simply re-dirty everything each round.
    dirty: set[tuple[int, int]] = set(all_keys)
    next_dirty: set[tuple[int, int]] = set()
    # Jitter value each task's dependents last re-solved against.  The
    # re-dirty test compares against *this* (not the per-round snapshot):
    # a jitter creeping by sub-tolerance steps over many rounds still
    # crosses the baseline by more than tol eventually, so observers can
    # never go stale by unbounded accumulation of skipped sub-tol moves.
    dirty_baseline: dict[tuple[int, int], float] = (
        {
            (i, j): tr.tasks[j].jitter
            for i, tr in enumerate(work.transactions)
            for j in range(1, len(tr.tasks))
        }
        if incremental
        else {}
    )

    def compute_round(
        prev: dict[tuple[int, int], float],
    ) -> tuple[dict[tuple[int, int], float], list[tuple[int, int]], bool]:
        """One outer round.

        Jacobi: plain sweep with the jitters of the previous round.
        Gauss-Seidel: each freshly computed response immediately refreshes
        its successor's jitter before that successor is analyzed -- same
        least fixed point (monotone map), fewer rounds.  The incremental
        variant additionally skips tasks that are not dirty, carrying their
        previous response; a jitter assignment that moves by more than the
        tolerance re-dirties every dependent task (in this round when it
        has not been visited yet, else in the next).

        In verdict mode an infinite response (deadline-ceiling abort or
        divergence) short-circuits the round: the verdict is already
        final, so the returned ``aborted`` flag tells the outer loop to
        stop without finishing the sweep (the round's remaining responses
        stay uncomputed).
        """
        nonlocal task_skips
        out: dict[tuple[int, int], float] = {}
        skipped: list[tuple[int, int]] = []
        for key in order:
            i, j = key
            tr = work.transactions[i]
            if incremental and key not in dirty:
                out[key] = prev[key]
                skipped.append(key)
                task_skips += 1
            else:
                out[key] = compute_one(i, j)
                if verdict and math.isinf(out[key]):
                    return out, skipped, True
            if (
                config.update == "gauss_seidel"
                and j + 1 < len(tr.tasks)
                and not math.isinf(out[key])
            ):
                succ = tr.tasks[j + 1]
                new_jit = max(succ.jitter, out[key] - best[key])
                if (
                    incremental
                    and new_jit - dirty_baseline[(i, j + 1)] > config.tol
                ):
                    # (i, j+1) itself is visited later in this same
                    # round; interference dependents positioned at or
                    # before the current task re-solve next round.
                    dirty_baseline[(i, j + 1)] = new_jit
                    for dep in dependents[(i, j + 1)]:
                        later = (
                            dep > key if rank is None else rank[dep] > rank[key]
                        )
                        if later:
                            dirty.add(dep)
                        else:
                            next_dirty.add(dep)
                succ.jitter = new_jit
        return out, skipped, False

    rows: list[IterationRow] = []
    responses: dict[tuple[int, int], float] = {}
    converged = False
    outer = 0
    diverged = False

    for outer in range(config.max_outer_iterations):
        if incremental and outer > 0 and not dirty:
            # Confirming round with nothing dirty: every response carries
            # over, the Eq. 18 refresh reproduces the current jitters, and
            # the round converges -- record it without running the sweep.
            note_outer_tasks(0, len(all_keys))
            task_skips += len(all_keys)
            if trace:
                rows.append(
                    IterationRow(
                        index=outer,
                        jitters={
                            (i, j): work.transactions[i].tasks[j].jitter
                            for i in range(n_txn)
                            for j in range(len(work.transactions[i].tasks))
                        },
                        responses=dict(responses),
                        skipped=tuple(all_keys),
                    )
                )
            converged = True
            break
        # Jitter vector the round starts from.  The convergence test below
        # must compare against *this* snapshot: the Gauss-Seidel scheme
        # updates jitters mid-round, and comparing the refresh targets with
        # those already-updated values declared convergence after a single
        # round even though tasks analyzed early in the round never saw the
        # later jitter growth (an unsound under-estimate).
        start_jitters = {
            (i, j): tr.tasks[j].jitter
            for i, tr in enumerate(work.transactions)
            for j in range(1, len(tr.tasks))
        }
        responses, skipped, aborted = compute_round(responses)
        note_outer_tasks(len(responses) - len(skipped), len(skipped))
        if aborted:
            # The short-circuited round left the remaining responses
            # uncomputed; the verdict is final, so report them as
            # UNSCHEDULABLE right away -- trace rows and the result tables
            # below then always carry every task key.
            for key in all_keys:
                responses.setdefault(key, UNSCHEDULABLE)
        if trace:
            rows.append(
                IterationRow(
                    index=outer,
                    jitters={
                        (i, j): work.transactions[i].tasks[j].jitter
                        for i in range(n_txn)
                        for j in range(len(work.transactions[i].tasks))
                    },
                    responses=dict(responses),
                    skipped=tuple(skipped),
                )
            )
        if aborted or any(math.isinf(r) for r in responses.values()):
            diverged = True
            converged = True  # the fixed point is +inf; no point iterating
            break

        # Refresh of the jitters (Eq. 18).  Under Gauss-Seidel the in-round
        # updates already equal these targets (jitters only grow), so the
        # assignment is shared; only the change test needs the snapshot.
        changed = False
        for i, tr in enumerate(work.transactions):
            for j in range(1, len(tr.tasks)):
                new_j = max(0.0, responses[(i, j - 1)] - best[(i, j - 1)])
                if abs(new_j - start_jitters[(i, j)]) > config.tol:
                    changed = True
                if incremental and abs(new_j - dirty_baseline[(i, j)]) > config.tol:
                    # The refresh moved this jitter away from the value the
                    # dependents last solved against -- either lowered below
                    # the in-round value (warm start seeded above the
                    # refresh target) or drifted past the baseline through
                    # accumulated sub-tolerance steps the in-round marking
                    # ignored individually.  Re-solve every observer.
                    dirty_baseline[(i, j)] = new_j
                    next_dirty.update(dependents[(i, j)])
                tr.tasks[j].jitter = new_j
        if not changed:
            converged = True
            break
        if incremental:
            dirty = next_dirty
            next_dirty = set()
        if config.stop_on_miss and any(
            responses[(i, len(tr.tasks) - 1)] > tr.deadline + config.tol
            for i, tr in enumerate(work.transactions)
        ):
            break

    # Propagate divergence down each chain: a successor of an unbounded task
    # is unbounded too.  (A verdict-mode mid-round abort already filled its
    # uncomputed responses with UNSCHEDULABLE above -- verdict mode gives
    # up exact per-task response times once the verdict is decided.)
    if diverged:
        for i, tr in enumerate(work.transactions):
            dead = False
            for j in range(len(tr.tasks)):
                if math.isinf(responses.get((i, j), 0.0)):
                    dead = True
                if dead:
                    responses[(i, j)] = UNSCHEDULABLE

    tasks: dict[tuple[int, int], TaskAnalysis] = {}
    for i, tr in enumerate(work.transactions):
        for j, task in enumerate(tr.tasks):
            tasks[(i, j)] = TaskAnalysis(
                wcrt=responses[(i, j)],
                bcrt=best[(i, j)],
                offset=task.offset,
                jitter=task.jitter,
                name=task.name,
            )

    txn_wcrt = [responses[(i, len(tr.tasks) - 1)] for i, tr in enumerate(work.transactions)]
    txn_dead = [float(tr.deadline) for tr in work.transactions]
    schedulable = all(r <= d + config.tol for r, d in zip(txn_wcrt, txn_dead))

    return SystemAnalysis(
        tasks=tasks,
        transaction_wcrt=txn_wcrt,
        transaction_deadline=txn_dead,
        schedulable=schedulable,
        iterations=rows,
        outer_iterations=outer + 1,
        converged=converged,
        evaluations=evaluations,
        warm_started=warm_used,
        task_solves=task_solves,
        task_skips=task_skips,
    )
