"""The dynamic-offset outer fixed point (paper Sec. 3.2).

Tasks of a transaction are released by the completion of their predecessor,
so their offsets and jitters are not free parameters: Eq. 18 ties them to
the predecessor's best/worst-case response times,

.. math:: \\phi_{i,j} = R^{best}_{i,j-1}, \\qquad
          J_{i,j} = R_{i,j-1} - R^{best}_{i,j-1}.

The "static offset" analyses of Sec. 3.1 are iterated at a higher level:
starting from :math:`J_{i,j} = 0`, each round recomputes every response time
with the current jitters and then refreshes the jitters from the new
responses (a Jacobi iteration -- exactly the scheme whose trace the paper
reports in Table 3).  Monotonicity of response times in the jitters
guarantees convergence to the least fixed point when the busy periods close.
"""

from __future__ import annotations

import math

from repro.analysis.bestcase import best_case_response_times
from repro.analysis.interfaces import (
    AnalysisConfig,
    IterationRow,
    SystemAnalysis,
    TaskAnalysis,
    UNSCHEDULABLE,
)
from repro.analysis.reduced import response_time_reduced
from repro.analysis.static_offsets import response_time_exact
from repro.model.system import TransactionSystem
from repro.model.transaction import Transaction

__all__ = ["holistic_analysis"]


def _clone(system: TransactionSystem) -> TransactionSystem:
    """Deep-copy transactions (tasks included) so the input stays pristine."""
    return TransactionSystem(
        transactions=[
            Transaction(
                period=tr.period,
                deadline=tr.deadline,
                name=tr.name,
                meta=dict(tr.meta),
                tasks=[t.with_updates() for t in tr.tasks],
            )
            for tr in system.transactions
        ],
        platforms=list(system.platforms),
        name=system.name,
        meta=dict(system.meta),
    )


def holistic_analysis(
    system: TransactionSystem,
    *,
    config: AnalysisConfig | None = None,
    trace: bool = True,
    warm_start: dict[tuple[int, int], float] | None = None,
) -> SystemAnalysis:
    """Run the full dynamic-offset analysis on *system*.

    Parameters
    ----------
    system:
        The transaction system.  Offsets/jitters of non-first tasks are
        *derived* (Eq. 18) and any input values for them are ignored; the
        first task of each transaction keeps its input offset and jitter.
    config:
        Analysis knobs; defaults to the reduced method with the paper's
        simple best-case bound.
    trace:
        Record the per-iteration ``(J, R)`` table (Table 3 of the paper).
    warm_start:
        Optional initial jitter vector keyed like
        :meth:`SystemAnalysis.final_jitters`, typically the converged
        jitters of a *nearby* system (the previous cell of an ascending
        utilization sweep, whose jitters are componentwise below the new
        least fixed point).  Entries for first tasks and infinite entries
        are ignored.  The outer Jacobi iteration then resumes from that
        vector instead of ``J = 0`` and converges to the same least fixed
        point in fewer rounds.

    Returns
    -------
    SystemAnalysis
        Final response times, verdict, and (optionally) the iteration trace.
    """
    config = config or AnalysisConfig()
    work = _clone(system)
    n_txn = len(work.transactions)

    best = best_case_response_times(work, method=config.best_case)

    # Initial state: phi_{i,j} = Rbest_{i,j-1}, J = 0 (paper Sec. 3.2),
    # unless a warm-start jitter vector resumes the sweep.
    warm_used = False
    for i, tr in enumerate(work.transactions):
        for j in range(1, len(tr.tasks)):
            tr.tasks[j].offset = best[(i, j - 1)]
            jit = 0.0
            if warm_start is not None:
                guess = warm_start.get((i, j), 0.0)
                if guess > 0.0 and math.isfinite(guess):
                    jit = guess
                    warm_used = True
            tr.tasks[j].jitter = jit

    evaluations = 0

    def compute_one(i: int, j: int) -> float:
        nonlocal evaluations
        if math.isinf(work.transactions[i].tasks[j].jitter):
            return UNSCHEDULABLE
        if config.method == "exact":
            res = response_time_exact(work, i, j, config=config)
        else:
            res = response_time_reduced(work, i, j, config=config)
        evaluations += res.evaluations
        return res.wcrt

    def compute_all() -> dict[tuple[int, int], float]:
        """One outer round.

        Jacobi: plain sweep with the jitters of the previous round.
        Gauss-Seidel: each freshly computed response immediately refreshes
        its successor's jitter before that successor is analyzed -- same
        least fixed point (monotone map), fewer rounds.
        """
        out: dict[tuple[int, int], float] = {}
        for i, tr in enumerate(work.transactions):
            for j in range(len(tr.tasks)):
                out[(i, j)] = compute_one(i, j)
                if (
                    config.update == "gauss_seidel"
                    and j + 1 < len(tr.tasks)
                    and not math.isinf(out[(i, j)])
                ):
                    tr.tasks[j + 1].jitter = max(
                        tr.tasks[j + 1].jitter,
                        out[(i, j)] - best[(i, j)],
                    )
        return out

    rows: list[IterationRow] = []
    responses: dict[tuple[int, int], float] = {}
    converged = False
    outer = 0
    diverged = False

    for outer in range(config.max_outer_iterations):
        # Jitter vector the round starts from.  The convergence test below
        # must compare against *this* snapshot: the Gauss-Seidel scheme
        # updates jitters mid-round, and comparing the refresh targets with
        # those already-updated values declared convergence after a single
        # round even though tasks analyzed early in the round never saw the
        # later jitter growth (an unsound under-estimate).
        start_jitters = {
            (i, j): tr.tasks[j].jitter
            for i, tr in enumerate(work.transactions)
            for j in range(1, len(tr.tasks))
        }
        responses = compute_all()
        if trace:
            rows.append(
                IterationRow(
                    index=outer,
                    jitters={
                        (i, j): work.transactions[i].tasks[j].jitter
                        for i in range(n_txn)
                        for j in range(len(work.transactions[i].tasks))
                    },
                    responses=dict(responses),
                )
            )
        if any(math.isinf(r) for r in responses.values()):
            diverged = True
            converged = True  # the fixed point is +inf; no point iterating
            break

        # Refresh of the jitters (Eq. 18).  Under Gauss-Seidel the in-round
        # updates already equal these targets (jitters only grow), so the
        # assignment is shared; only the change test needs the snapshot.
        changed = False
        for i, tr in enumerate(work.transactions):
            for j in range(1, len(tr.tasks)):
                new_j = max(0.0, responses[(i, j - 1)] - best[(i, j - 1)])
                if abs(new_j - start_jitters[(i, j)]) > config.tol:
                    changed = True
                tr.tasks[j].jitter = new_j
        if not changed:
            converged = True
            break
        if config.stop_on_miss and any(
            responses[(i, len(tr.tasks) - 1)] > tr.deadline + config.tol
            for i, tr in enumerate(work.transactions)
        ):
            break

    # Propagate divergence down each chain: a successor of an unbounded task
    # is unbounded too.
    if diverged:
        for i, tr in enumerate(work.transactions):
            dead = False
            for j in range(len(tr.tasks)):
                if math.isinf(responses.get((i, j), 0.0)):
                    dead = True
                if dead:
                    responses[(i, j)] = UNSCHEDULABLE

    tasks: dict[tuple[int, int], TaskAnalysis] = {}
    for i, tr in enumerate(work.transactions):
        for j, task in enumerate(tr.tasks):
            tasks[(i, j)] = TaskAnalysis(
                wcrt=responses[(i, j)],
                bcrt=best[(i, j)],
                offset=task.offset,
                jitter=task.jitter,
                name=task.name,
            )

    txn_wcrt = [responses[(i, len(tr.tasks) - 1)] for i, tr in enumerate(work.transactions)]
    txn_dead = [float(tr.deadline) for tr in work.transactions]
    schedulable = all(r <= d + config.tol for r, d in zip(txn_wcrt, txn_dead))

    return SystemAnalysis(
        tasks=tasks,
        transaction_wcrt=txn_wcrt,
        transaction_deadline=txn_dead,
        schedulable=schedulable,
        iterations=rows,
        outer_iterations=outer + 1,
        converged=converged,
        evaluations=evaluations,
        warm_started=warm_used,
    )
