"""Interference machinery: phases and W functions (Eqs. 7-11, 15, 17).

Everything here operates on *views*: per analyzed task
:math:`\\tau_{a,b}`, the system is projected onto the task's platform
(Eq. 17 -- only tasks with ``priority >= p(a,b)`` *and* the same platform
interfere) with execution times pre-scaled by the platform rate
:math:`1/\\alpha` (Sec. 3.1).  The projection is done once per response-time
query; the inner fixed-point iterations then touch only small flat lists.

Conventions pinned by hand-verification against the paper's Table 3 (see
DESIGN.md Section 4):

* offsets are reduced modulo the transaction period;
* phases :math:`\\varphi` live in the half-open set ``(0, T]`` -- an exact
  multiple maps to ``T``, not ``0``;
* for ``t >= 0`` the bracket of Eq. 8 is never negative, but it is clamped
  to zero anyway for numerical robustness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.model.system import TransactionSystem
from repro.util.math import EPS, ceil_div, floor_div, fmod_pos, phase_in_period

__all__ = [
    "HPTask",
    "TransactionView",
    "AnalyzedTask",
    "build_views",
    "clear_phase_cache",
    "compile_w_transaction_k",
    "compile_w_transaction_star",
    "phase",
    "phase_cache_stats",
    "set_phase_cache_enabled",
    "w_task",
    "w_transaction_k",
    "w_transaction_star",
]

#: Quantization step of the phase-cache key.  Jitters from successive outer
#: rounds that agree to within this quantum share one cache entry; the
#: quantum sits three orders of magnitude below every tolerance in the
#: library (EPS = 1e-9), so sharing never moves a result past a tolerance.
PHASE_QUANTUM = 1e-12

#: Reset threshold: the cache is dropped wholesale once it holds this many
#: starter vectors (long campaigns would otherwise grow it without bound).
_PHASE_CACHE_MAX = 1 << 14

# Maps (platform, period, starter phi, starter jitter, interferer offsets),
# all quantized, to the tuple of Eq. 10 phases of the view's tasks.  The
# phases depend only on these inputs -- not on the time argument t of the W
# functions -- yet the seed code recomputed them at every evaluation of
# every inner fixed point.
_PHASE_CACHE: dict[tuple, tuple[float, ...]] = {}
_PHASE_HITS = 0
_PHASE_MISSES = 0
_PHASE_CACHE_ENABLED = True


def _q(x: float) -> int:
    """Quantize a time value for cache keying."""
    return round(x / PHASE_QUANTUM)


def set_phase_cache_enabled(enabled: bool) -> bool:
    """Toggle the phase cache (on by default); returns the previous state.

    The off switch exists for benchmarking the memoization itself -- there
    is no correctness reason to disable it.
    """
    global _PHASE_CACHE_ENABLED
    previous = _PHASE_CACHE_ENABLED
    _PHASE_CACHE_ENABLED = enabled
    if not enabled:
        _PHASE_CACHE.clear()
    return previous


def phase_cache_stats() -> tuple[int, int]:
    """``(hits, misses)`` of the per-process phase cache."""
    return _PHASE_HITS, _PHASE_MISSES


def clear_phase_cache() -> None:
    """Drop every cached phase vector and zero the hit/miss counters."""
    global _PHASE_HITS, _PHASE_MISSES
    _PHASE_CACHE.clear()
    _PHASE_HITS = 0
    _PHASE_MISSES = 0


def _phases_for(
    view: TransactionView, s_phi: float, s_jit: float
) -> tuple[float, ...]:
    """Phases of every task in *view* for the given starter, cached.

    The value is computed from the exact (unquantized) inputs of the first
    occupant of the key, so single-computation results are bit-identical to
    the uncached code path; a second starter landing on the same key differs
    from the occupant by less than :data:`PHASE_QUANTUM`, far inside EPS.
    """
    global _PHASE_HITS, _PHASE_MISSES
    if not _PHASE_CACHE_ENABLED:
        return tuple(
            phase(s_phi, s_jit, hp.phi, view.period) for hp in view.tasks
        )
    tag = view.cache_tag
    if len(tag) != 3:
        tag = (
            view.platform,
            _q(view.period),
            tuple(_q(hp.phi) for hp in view.tasks),
        )
    key = (tag, _q(s_phi), _q(s_jit))
    cached = _PHASE_CACHE.get(key)
    if cached is not None:
        _PHASE_HITS += 1
        return cached
    _PHASE_MISSES += 1
    if len(_PHASE_CACHE) >= _PHASE_CACHE_MAX:
        _PHASE_CACHE.clear()
    phases = tuple(
        phase(s_phi, s_jit, hp.phi, view.period) for hp in view.tasks
    )
    _PHASE_CACHE[key] = phases
    return phases


@dataclass(frozen=True)
class HPTask:
    """A higher-priority task projected onto the analyzed platform.

    ``phi`` is the reduced offset, ``jitter`` the current jitter and
    ``cost`` the execution time already scaled by the analyzed platform's
    rate (:math:`C_{i,j}/\\alpha`).
    """

    phi: float
    jitter: float
    cost: float
    index: int  # task index within its transaction, for reporting


@dataclass(frozen=True)
class TransactionView:
    """One transaction as seen from the analyzed task (Eq. 17 projection)."""

    period: float
    tasks: tuple[HPTask, ...]
    index: int  # transaction index within the system, for reporting
    platform: int = -1  # analyzed platform the view was projected onto
    #: Precomputed phase-cache key prefix: (platform, q(period), q(phi)...).
    #: Built once per projection so per-evaluation key construction is a
    #: tuple concatenation; empty for hand-built views (computed lazily).
    cache_tag: tuple = ()


@dataclass(frozen=True)
class AnalyzedTask:
    """The task under analysis with its platform parameters resolved."""

    txn: int
    idx: int
    period: float
    deadline: float
    phi: float  # reduced offset
    jitter: float
    cost: float  # C / alpha
    blocking: float
    delay: float  # platform Delta
    priority: int
    platform: int


def build_views(
    system: TransactionSystem, a: int, b: int
) -> tuple[AnalyzedTask, TransactionView, list[TransactionView]]:
    """Project *system* onto the platform of task ``(a, b)``.

    Returns ``(analyzed, own, others)`` where ``own`` is the view of the
    analyzed task's transaction (the set :math:`hp_a(\\tau_{a,b})`,
    excluding the task itself) and ``others`` the views of every other
    transaction with a non-empty interfering set.
    """
    txn = system.transactions[a]
    task = txn.tasks[b]
    platform = system.platforms[task.platform]
    alpha = platform.rate

    analyzed = AnalyzedTask(
        txn=a,
        idx=b,
        period=txn.period,
        deadline=float(txn.deadline),
        phi=fmod_pos(task.offset, txn.period),
        jitter=task.jitter,
        cost=task.wcet / alpha,
        blocking=task.blocking,
        delay=platform.delay,
        priority=task.priority,
        platform=task.platform,
    )

    def hp_view(i: int) -> TransactionView:
        tr = system.transactions[i]
        hp: list[HPTask] = []
        for j, t in enumerate(tr.tasks):
            if i == a and j == b:
                continue  # the analyzed task's own jobs enter via (p - p0 + 1)C
            if t.platform == task.platform and t.priority >= task.priority:
                hp.append(
                    HPTask(
                        phi=fmod_pos(t.offset, tr.period),
                        jitter=t.jitter,
                        cost=t.wcet / alpha,
                        index=j,
                    )
                )
        hp_tuple = tuple(hp)
        return TransactionView(
            period=tr.period,
            tasks=hp_tuple,
            index=i,
            platform=task.platform,
            cache_tag=(
                task.platform,
                _q(tr.period),
                tuple(_q(t.phi) for t in hp_tuple),
            ),
        )

    own = hp_view(a)
    others = [
        view
        for i in range(len(system.transactions))
        if i != a and (view := hp_view(i)).tasks
    ]
    return analyzed, own, others


def phase(starter_phi: float, starter_jitter: float, phi_j: float, period: float) -> float:
    """Phase :math:`\\varphi^k_{i,j}` of Eq. 10, in ``(0, T]``.

    *starter* is the task :math:`\\tau_{i,k}` whose maximally-delayed
    activation coincides with the start of the busy period; the returned
    phase is the first activation of :math:`\\tau_{i,j}` after that instant.
    """
    return phase_in_period(starter_phi + starter_jitter - phi_j, period)


def w_task(phi_k_j: float, jitter_j: float, cost_j: float, period: float, t: float) -> float:
    """Contribution :math:`W_{i,j}` of one interfering task (Eq. 8).

    ``phi_k_j`` is the task's phase for the current scenario; ``cost_j`` is
    already rate-scaled.  The first term counts jobs whose jittered
    activation collapses onto the busy-period start; the second counts
    periodic arrivals inside ``[0, t)``.
    """
    jobs = floor_div(jitter_j + phi_k_j, period) + ceil_div(t - phi_k_j, period)
    return max(0, jobs) * cost_j


def w_transaction_k(view: TransactionView, starter: HPTask | None, t: float,
                    starter_phi: float | None = None,
                    starter_jitter: float | None = None) -> float:
    """Contribution :math:`W^k_i` of a whole transaction (Eq. 11).

    The busy period is assumed to start with the maximally-delayed
    activation of *starter*.  The starter may be a task that is **not** in
    the view (the analyzed task itself starting its own transaction's
    scenario); pass its reduced offset and jitter explicitly in that case.
    """
    if starter is not None:
        s_phi, s_jit = starter.phi, starter.jitter
    else:
        if starter_phi is None or starter_jitter is None:
            raise ValueError("either starter or (starter_phi, starter_jitter) required")
        s_phi, s_jit = starter_phi, starter_jitter
    phases = _phases_for(view, s_phi, s_jit)
    total = 0.0
    for hp, ph in zip(view.tasks, phases):
        total += w_task(ph, hp.jitter, hp.cost, view.period, t)
    return total


def w_transaction_star(view: TransactionView, t: float) -> float:
    """Tindell's upper bound :math:`W^*_i` (Eq. 15): max over starters.

    Evaluated lazily per *t*; note that the maximizing starter may change
    with *t*, which is exactly why :math:`W^*_i(t)` remains an upper bound
    (it dominates every individual :math:`W^k_i`).
    """
    best = 0.0
    for starter in view.tasks:
        best = max(best, w_transaction_k(view, starter, t))
    return best


def compile_w_transaction_k(
    view: TransactionView,
    starter: HPTask | None,
    starter_phi: float | None = None,
    starter_jitter: float | None = None,
):
    """Precompiled :math:`W^k_i` closure, equal to
    ``lambda t: w_transaction_k(view, starter, t, ...)``.

    The inner fixed points evaluate the W functions hundreds of times per
    scenario with only *t* varying, yet everything except the
    ``ceil((t - phi)/T)`` term is constant per (view, starter): the phases
    (memoized in the phase cache) and the jitter carry
    ``floor((J_j + phi)/T)`` of Eq. 8.  Resolving them once turns each
    evaluation into one guarded ceiling per interfering task.
    """
    if starter is not None:
        s_phi, s_jit = starter.phi, starter.jitter
    else:
        if starter_phi is None or starter_jitter is None:
            raise ValueError("either starter or (starter_phi, starter_jitter) required")
        s_phi, s_jit = starter_phi, starter_jitter
    period = view.period
    phases = _phases_for(view, s_phi, s_jit)
    pre = tuple(
        (ph, floor_div(hp.jitter + ph, period), hp.cost)
        for hp, ph in zip(view.tasks, phases)
    )
    ceil_ = math.ceil

    def w_k(t: float) -> float:
        total = 0.0
        for ph, carry, cost in pre:
            # Inlined ceil_div (epsilon-snapped ceiling, util.math).
            x = (t - ph) / period
            nearest = round(x)
            jobs = carry + (
                int(nearest) if abs(x - nearest) <= EPS else int(ceil_(x))
            )
            if jobs > 0:
                total += jobs * cost
        return total

    return w_k


def compile_w_transaction_star(view: TransactionView):
    """Precompiled :math:`W^*_i` closure, equal to
    ``lambda t: w_transaction_star(view, t)`` (Eq. 15)."""
    fns = tuple(compile_w_transaction_k(view, s) for s in view.tasks)

    def w_star(t: float) -> float:
        best = 0.0
        for fn in fns:
            v = fn(t)
            if v > best:
                best = v
        return best

    return w_star


def starter_phase_of_analyzed(
    analyzed: AnalyzedTask, starter: HPTask | None
) -> float:
    """Phase :math:`\\varphi^{\\nu(a)}_{a,b}` of the analyzed task itself.

    When the analyzed task starts its own busy period (*starter* ``None``)
    its phase is the full period (Eq. 10 with ``k = (a,b)``).
    """
    if starter is None:
        return phase(analyzed.phi, analyzed.jitter, analyzed.phi, analyzed.period)
    return phase(starter.phi, starter.jitter, analyzed.phi, analyzed.period)
