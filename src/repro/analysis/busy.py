"""Interference machinery: phases and W functions (Eqs. 7-11, 15, 17).

Everything here operates on *views*: per analyzed task
:math:`\\tau_{a,b}`, the system is projected onto the task's platform
(Eq. 17 -- only tasks with ``priority >= p(a,b)`` *and* the same platform
interfere) with execution times pre-scaled by the platform rate
:math:`1/\\alpha` (Sec. 3.1).  The projection is done once per response-time
query; the inner fixed-point iterations then touch only small flat lists.

Conventions pinned by hand-verification against the paper's Table 3 (see
DESIGN.md Section 4):

* offsets are reduced modulo the transaction period;
* phases :math:`\\varphi` live in the half-open set ``(0, T]`` -- an exact
  multiple maps to ``T``, not ``0``;
* for ``t >= 0`` the bracket of Eq. 8 is never negative, but it is clamped
  to zero anyway for numerical robustness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.model.system import TransactionSystem
from repro.util.math import EPS, ceil_div, floor_div, fmod_pos, phase_in_period

try:  # The vector kernel is optional: everything falls back to scalar.
    import numpy as _np
except ImportError:  # pragma: no cover - the test image ships numpy
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "HAVE_NUMPY",
    "HPTask",
    "TransactionView",
    "AnalyzedTask",
    "VECTOR_MIN_JOBS",
    "ViewProjector",
    "build_views",
    "clear_phase_cache",
    "compile_w_rows",
    "compile_w_transaction_k",
    "compile_w_transaction_star",
    "phase",
    "scenario_rows",
    "phase_cache_stats",
    "resolve_kernel",
    "set_phase_cache_enabled",
    "w_task",
    "w_transaction_k",
    "w_transaction_star",
]

#: Quantization step of the phase-cache key.  Jitters from successive outer
#: rounds that agree to within this quantum share one cache entry; the
#: quantum sits three orders of magnitude below every tolerance in the
#: library (EPS = 1e-9), so sharing never moves a result past a tolerance.
PHASE_QUANTUM = 1e-12

#: Reset threshold: the cache is dropped wholesale once it holds this many
#: starter vectors (long campaigns would otherwise grow it without bound).
_PHASE_CACHE_MAX = 1 << 14

# Maps (platform, period, starter phi, starter jitter, interferer offsets),
# all quantized, to the tuple of Eq. 10 phases of the view's tasks.  The
# phases depend only on these inputs -- not on the time argument t of the W
# functions -- yet the seed code recomputed them at every evaluation of
# every inner fixed point.
_PHASE_CACHE: dict[tuple, tuple[float, ...]] = {}
_PHASE_HITS = 0
_PHASE_MISSES = 0
_PHASE_CACHE_ENABLED = True


def _q(x: float) -> int:
    """Quantize a time value for cache keying."""
    return round(x / PHASE_QUANTUM)


def set_phase_cache_enabled(enabled: bool) -> bool:
    """Toggle the phase cache (on by default); returns the previous state.

    The off switch exists for benchmarking the memoization itself -- there
    is no correctness reason to disable it.
    """
    global _PHASE_CACHE_ENABLED
    previous = _PHASE_CACHE_ENABLED
    _PHASE_CACHE_ENABLED = enabled
    if not enabled:
        _PHASE_CACHE.clear()
    return previous


def phase_cache_stats() -> tuple[int, int]:
    """``(hits, misses)`` of the per-process phase cache."""
    return _PHASE_HITS, _PHASE_MISSES


def clear_phase_cache() -> None:
    """Drop every cached phase vector and zero the hit/miss counters."""
    global _PHASE_HITS, _PHASE_MISSES
    _PHASE_CACHE.clear()
    _PHASE_HITS = 0
    _PHASE_MISSES = 0


def _phases_for(
    view: TransactionView, s_phi: float, s_jit: float
) -> tuple[float, ...]:
    """Phases of every task in *view* for the given starter, cached.

    The value is computed from the exact (unquantized) inputs of the first
    occupant of the key, so single-computation results are bit-identical to
    the uncached code path; a second starter landing on the same key differs
    from the occupant by less than :data:`PHASE_QUANTUM`, far inside EPS.
    """
    global _PHASE_HITS, _PHASE_MISSES
    # For one- or two-task views computing the phases outright is cheaper
    # than building the cache key; the cache pays off on wide views (and
    # its entries are shared across every task analyzing the same
    # transaction).  Compiled-closure caching upstream already removes the
    # repeated compiles that the cache originally served.  The phase
    # arithmetic (Eq. 10 with the fmod_pos/phase_in_period conventions) is
    # inlined -- this is the innermost compile loop.
    if not _PHASE_CACHE_ENABLED or len(view.tasks) <= 2:
        period = view.period
        fmod = math.fmod
        origin = s_phi + s_jit
        out = []
        for hp in view.tasks:
            r = fmod(origin - hp.phi, period)
            if r < 0:
                r += period
            if (r >= period - EPS or r <= EPS) and (
                abs(r) <= EPS or abs(r - period) <= EPS
            ):
                r = 0.0
            out.append(period - r if r > 0.0 else period)
        return tuple(out)
    tag = view.cache_tag
    if len(tag) != 3:
        tag = (
            view.platform,
            _q(view.period),
            tuple(_q(hp.phi) for hp in view.tasks),
        )
    key = (tag, _q(s_phi), _q(s_jit))
    cached = _PHASE_CACHE.get(key)
    if cached is not None:
        _PHASE_HITS += 1
        return cached
    _PHASE_MISSES += 1
    if len(_PHASE_CACHE) >= _PHASE_CACHE_MAX:
        _PHASE_CACHE.clear()
    phases = tuple(
        phase(s_phi, s_jit, hp.phi, view.period) for hp in view.tasks
    )
    _PHASE_CACHE[key] = phases
    return phases


@dataclass(frozen=True)
class HPTask:
    """A higher-priority task projected onto the analyzed platform.

    ``phi`` is the reduced offset, ``jitter`` the current jitter and
    ``cost`` the execution time already scaled by the analyzed platform's
    rate (:math:`C_{i,j}/\\alpha`).
    """

    phi: float
    jitter: float
    cost: float
    index: int  # task index within its transaction, for reporting


@dataclass(frozen=True)
class TransactionView:
    """One transaction as seen from the analyzed task (Eq. 17 projection)."""

    period: float
    tasks: tuple[HPTask, ...]
    index: int  # transaction index within the system, for reporting
    platform: int = -1  # analyzed platform the view was projected onto
    #: Precomputed phase-cache key prefix: (platform, q(period), q(phi)...).
    #: Built once per projection so per-evaluation key construction is a
    #: tuple concatenation; empty for hand-built views (computed lazily).
    cache_tag: tuple = ()
    #: Memo slot for the contiguous ``(phi, jitter, cost)`` float arrays the
    #: vector kernel reduces over; materialized lazily on the first vector
    #: compile by :func:`_view_arrays` (so the scalar kernel never pays for
    #: them) and excluded from equality so views stay comparable.
    arrays: tuple | None = field(default=None, compare=False, repr=False)


def _make_view_arrays(tasks: tuple[HPTask, ...]) -> tuple | None:
    """``(phi, jitter, cost)`` contiguous arrays for *tasks* (None sans NumPy)."""
    if _np is None:
        return None
    return (
        _np.array([hp.phi for hp in tasks], dtype=float),
        _np.array([hp.jitter for hp in tasks], dtype=float),
        _np.array([hp.cost for hp in tasks], dtype=float),
    )


def _view_arrays(view: TransactionView) -> tuple:
    """The view's flat arrays, materializing them for hand-built views."""
    if view.arrays is not None:
        return view.arrays
    arrays = _make_view_arrays(view.tasks)
    object.__setattr__(view, "arrays", arrays)
    return arrays


@dataclass(frozen=True)
class AnalyzedTask:
    """The task under analysis with its platform parameters resolved."""

    txn: int
    idx: int
    period: float
    deadline: float
    phi: float  # reduced offset
    jitter: float
    cost: float  # C / alpha
    blocking: float
    delay: float  # platform Delta
    priority: int
    platform: int


class ViewProjector:
    """Cached Eq. 17 projection of *system* onto the platform of task ``(a, b)``.

    The platform/priority filtering, the reduced offsets and the rate
    scaling are invariant across the outer rounds of the holistic analysis
    -- only the jitters move (Eq. 18).  The projector computes the static
    skeleton once; :meth:`views` then snapshots the current jitters into
    fresh view objects, skipping the per-round re-filtering that dominated
    ``build_views`` in campaign profiles.

    The projector holds references to the live task objects, so it must be
    rebuilt if the system's *structure* (offsets, priorities, platforms,
    costs) changes -- the holistic driver only ever mutates jitters.

    ``platform_index`` optionally supplies the output of
    :meth:`build_platform_index` so repeated projections of one system (the
    holistic driver projects every task) scan only same-platform tasks.
    """

    def __init__(
        self,
        system: TransactionSystem,
        a: int,
        b: int,
        platform_index: dict | None = None,
    ):
        txn = system.transactions[a]
        task = txn.tasks[b]
        platform = system.platforms[task.platform]
        alpha = platform.rate
        priority = task.priority

        self._task = task
        # Positional AnalyzedTask prefix/suffix around the live jitter
        # (field order of the dataclass); snapshotting runs once per solve.
        self._pre = (
            a, b, txn.period, float(txn.deadline),
            fmod_pos(task.offset, txn.period),
        )
        self._post = (
            task.wcet / alpha, task.blocking, platform.delay,
            priority, task.platform,
        )

        if platform_index is None:
            platform_index = self.build_platform_index(system)
        # Per transaction: qualifying (task, phi, cost, index) rows, in task
        # order (the platform index is (i, j)-sorted).
        buckets: dict[int, list] = {}
        for i, j, t, period, phi in platform_index.get(task.platform, ()):
            if t.priority >= priority and not (i == a and j == b):
                buckets.setdefault(i, []).append((t, phi, t.wcet / alpha, j))

        def skeleton(i: int) -> tuple:
            rows = tuple(buckets.get(i, ()))
            period = system.transactions[i].period
            # The phase cache only engages for views wider than two tasks
            # (see _phases_for); smaller views never read the tag.
            cache_tag = (
                (
                    task.platform,
                    _q(period),
                    tuple(_q(phi) for _t, phi, _c, _j in rows),
                )
                if len(rows) > 2
                else ()
            )
            return period, rows, i, cache_tag

        self._own = skeleton(a)
        self._others = tuple(
            skel
            for i in sorted(buckets)
            if i != a and (skel := skeleton(i))[1]
        )

    @staticmethod
    def build_platform_index(system: TransactionSystem) -> dict:
        """``platform -> [(i, j, task, period, reduced offset), ...]`` in
        ``(i, j)`` order; shareable across every projector of *system*."""
        index: dict[int, list] = {}
        for i, tr in enumerate(system.transactions):
            period = tr.period
            for j, t in enumerate(tr.tasks):
                index.setdefault(t.platform, []).append(
                    (i, j, t, period, fmod_pos(t.offset, period))
                )
        return index

    @staticmethod
    def _snapshot(skel: tuple, platform: int) -> TransactionView:
        period, rows, index, cache_tag = skel
        return TransactionView(
            period=period,
            tasks=tuple(
                HPTask(phi=phi, jitter=src.jitter, cost=cost, index=j)
                for src, phi, cost, j in rows
            ),
            index=index,
            platform=platform,
            cache_tag=cache_tag,
        )

    def views(self) -> tuple[AnalyzedTask, TransactionView, list[TransactionView]]:
        """``(analyzed, own, others)`` with the current jitter values."""
        analyzed = AnalyzedTask(*self._pre, self._task.jitter, *self._post)
        platform = analyzed.platform
        own = self._snapshot(self._own, platform)
        others = [self._snapshot(skel, platform) for skel in self._others]
        return analyzed, own, others


def build_views(
    system: TransactionSystem, a: int, b: int
) -> tuple[AnalyzedTask, TransactionView, list[TransactionView]]:
    """Project *system* onto the platform of task ``(a, b)``.

    Returns ``(analyzed, own, others)`` where ``own`` is the view of the
    analyzed task's transaction (the set :math:`hp_a(\\tau_{a,b})`,
    excluding the task itself) and ``others`` the views of every other
    transaction with a non-empty interfering set.  Repeated projections of
    the same task (the outer holistic rounds) should go through a cached
    :class:`ViewProjector` instead.
    """
    return ViewProjector(system, a, b).views()


def phase(starter_phi: float, starter_jitter: float, phi_j: float, period: float) -> float:
    """Phase :math:`\\varphi^k_{i,j}` of Eq. 10, in ``(0, T]``.

    *starter* is the task :math:`\\tau_{i,k}` whose maximally-delayed
    activation coincides with the start of the busy period; the returned
    phase is the first activation of :math:`\\tau_{i,j}` after that instant.
    """
    return phase_in_period(starter_phi + starter_jitter - phi_j, period)


def w_task(phi_k_j: float, jitter_j: float, cost_j: float, period: float, t: float) -> float:
    """Contribution :math:`W_{i,j}` of one interfering task (Eq. 8).

    ``phi_k_j`` is the task's phase for the current scenario; ``cost_j`` is
    already rate-scaled.  The first term counts jobs whose jittered
    activation collapses onto the busy-period start; the second counts
    periodic arrivals inside ``[0, t)``.
    """
    jobs = floor_div(jitter_j + phi_k_j, period) + ceil_div(t - phi_k_j, period)
    return max(0, jobs) * cost_j


def w_transaction_k(view: TransactionView, starter: HPTask | None, t: float,
                    starter_phi: float | None = None,
                    starter_jitter: float | None = None) -> float:
    """Contribution :math:`W^k_i` of a whole transaction (Eq. 11).

    The busy period is assumed to start with the maximally-delayed
    activation of *starter*.  The starter may be a task that is **not** in
    the view (the analyzed task itself starting its own transaction's
    scenario); pass its reduced offset and jitter explicitly in that case.
    """
    if starter is not None:
        s_phi, s_jit = starter.phi, starter.jitter
    else:
        if starter_phi is None or starter_jitter is None:
            raise ValueError("either starter or (starter_phi, starter_jitter) required")
        s_phi, s_jit = starter_phi, starter_jitter
    phases = _phases_for(view, s_phi, s_jit)
    total = 0.0
    for hp, ph in zip(view.tasks, phases):
        total += w_task(ph, hp.jitter, hp.cost, view.period, t)
    return total


def w_transaction_star(view: TransactionView, t: float) -> float:
    """Tindell's upper bound :math:`W^*_i` (Eq. 15): max over starters.

    Evaluated lazily per *t*; note that the maximizing starter may change
    with *t*, which is exactly why :math:`W^*_i(t)` remains an upper bound
    (it dominates every individual :math:`W^k_i`).
    """
    best = 0.0
    for starter in view.tasks:
        best = max(best, w_transaction_k(view, starter, t))
    return best


#: ``kernel="auto"`` switches a view to the vector kernel once its batched
#: evaluation covers at least this many (starter, task) pairs per call.
#: Below the threshold the Python loop of the scalar closures beats NumPy's
#: per-call dispatch overhead (measured crossover ~20-30 pairs on CPython
#: 3.11/NumPy 2); far above it the vector kernel wins by an order of
#: magnitude.
VECTOR_MIN_JOBS = 24


def resolve_kernel(kernel: str, batch_jobs: int) -> str:
    """Resolve an :class:`AnalysisConfig` kernel name to scalar/vector.

    ``batch_jobs`` is the number of (starter, task) pairs one evaluation of
    the candidate closure touches: ``len(view.tasks)`` for :math:`W^k_i`,
    ``len(view.tasks)**2`` for the starter-batched :math:`W^*_i`.
    """
    if kernel == "scalar" or _np is None:
        return "scalar"
    if kernel == "vector":
        return "vector"
    if kernel == "auto":
        return "vector" if batch_jobs >= VECTOR_MIN_JOBS else "scalar"
    raise ValueError(
        f"kernel must be 'auto', 'vector' or 'scalar', got {kernel!r}"
    )


def _starter_params(
    starter: HPTask | None,
    starter_phi: float | None,
    starter_jitter: float | None,
) -> tuple[float, float]:
    if starter is not None:
        return starter.phi, starter.jitter
    if starter_phi is None or starter_jitter is None:
        raise ValueError("either starter or (starter_phi, starter_jitter) required")
    return starter_phi, starter_jitter


def _snapped_ceil(x):
    """Vectorized :func:`repro.util.math.fceil`: identical snapping rule.

    ``np.rint`` and Python's ``round`` both round half to even, and the
    division feeding *x* uses the same IEEE operation as the scalar path, so
    the job counts are bit-identical between the two kernels.
    """
    nearest = _np.rint(x)
    return _np.where(_np.abs(x - nearest) <= EPS, nearest, _np.ceil(x))


def _carry_for(phases, jitter_arr, period):
    """Vectorized jitter carry ``floor((J_j + phi^k_j)/T)`` of Eq. 8."""
    x = (jitter_arr + phases) / period
    nearest = _np.rint(x)
    return _np.where(_np.abs(x - nearest) <= EPS, nearest, _np.floor(x))


def scenario_rows(
    view: TransactionView,
    starter: HPTask | None,
    starter_phi: float | None = None,
    starter_jitter: float | None = None,
) -> tuple[tuple[float, int, float, float], ...]:
    """Flat ``(phase, carry, cost, period)`` rows of :math:`W^k_i` (Eq. 11).

    One row per interfering job source: the phase for the scenario's
    starter, the jitter carry ``floor((J_j + phi)/T)`` of Eq. 8, the
    rate-scaled cost and the view period.  The carry is kept *outside* the
    per-evaluation ceiling on purpose: folding it (or the :data:`EPS` snap
    guard) into the phase perturbs the snap boundary by a few ulp and
    breaks exact agreement with the interpreted :func:`w_task` at
    boundary-distance-exactly-EPS points.  Rows from different views can
    be concatenated into a single closure (:func:`compile_w_rows`) because
    each row carries its own period.
    """
    s_phi, s_jit = _starter_params(starter, starter_phi, starter_jitter)
    period = view.period
    phases = _phases_for(view, s_phi, s_jit)
    rows = []
    for hp, ph in zip(view.tasks, phases):
        # Inlined floor_div (epsilon-snapped floor, util.math).
        x = (hp.jitter + ph) / period
        nearest = round(x)
        carry = (
            int(nearest) if abs(x - nearest) <= EPS else int(math.floor(x))
        )
        rows.append((ph, carry, hp.cost, period))
    return tuple(rows)


def compile_w_rows(rows: tuple, *, kernel: str = "scalar"):
    """Compile flat W rows into a closure summing every row's Eq. 8 term.

    ``kernel`` selects the backend (see :func:`resolve_kernel`): the vector
    closure evaluates all rows as one NumPy reduction, the scalar one runs
    the reference Python loop (specialized for the very common one-row
    case).
    """
    if not rows:
        return _w_zero
    if resolve_kernel(kernel, len(rows)) == "vector":
        ph = _np.array([r[0] for r in rows], dtype=float)
        carry = _np.array([r[1] for r in rows], dtype=float)
        cost = _np.array([r[2] for r in rows], dtype=float)
        period = _np.array([r[3] for r in rows], dtype=float)
        maximum, zeros = _np.maximum, _np.zeros(len(rows))

        def w_rows_vec(t: float) -> float:
            jobs = carry + _snapped_ceil((t - ph) / period)
            return float(maximum(jobs, zeros) @ cost)

        return w_rows_vec

    ceil_ = math.ceil

    def threshold(row: tuple) -> float:
        # Largest t at which the row is *guaranteed* to contribute zero
        # jobs: jobs <= 0 iff (t - ph)/T <= -carry + EPS.  The margin makes
        # the guard strictly conservative against the fp rounding of the
        # threshold itself -- a row past its guard is still evaluated in
        # full, so the guard can only skip certainly-zero work.
        ph, carry, _cost, period = row
        return ph + (EPS - carry) * period - 1e-7 * period

    if len(rows) == 1:
        ph0, carry0, cost0, period0 = rows[0]
        thr0 = threshold(rows[0])

        def w_row1(t: float) -> float:
            if t <= thr0:
                return 0.0
            # Inlined ceil_div (epsilon-snapped ceiling, util.math).
            x = (t - ph0) / period0
            nearest = round(x)
            jobs = carry0 + (
                int(nearest) if abs(x - nearest) <= EPS else int(ceil_(x))
            )
            return jobs * cost0 if jobs > 0 else 0.0

        return w_row1

    # Ascending activation thresholds: once a threshold exceeds t, every
    # remaining row is zero and the loop breaks.
    ordered = tuple(
        (threshold(row),) + row for row in sorted(rows, key=threshold)
    )

    def w_rows(t: float) -> float:
        total = 0.0
        for thr, ph, carry, cost, period in ordered:
            if t <= thr:
                break
            x = (t - ph) / period
            nearest = round(x)
            jobs = carry + (
                int(nearest) if abs(x - nearest) <= EPS else int(ceil_(x))
            )
            if jobs > 0:
                total += jobs * cost
        return total

    return w_rows


def _w_zero(t: float) -> float:
    """W of an empty interfering set."""
    return 0.0


def compile_w_transaction_k(
    view: TransactionView,
    starter: HPTask | None,
    starter_phi: float | None = None,
    starter_jitter: float | None = None,
    *,
    kernel: str = "scalar",
):
    """Precompiled :math:`W^k_i` closure, equal to
    ``lambda t: w_transaction_k(view, starter, t, ...)``.

    The inner fixed points evaluate the W functions hundreds of times per
    scenario with only *t* varying, yet everything except the
    ``ceil((t - phi)/T)`` term is constant per (view, starter): the phases
    (memoized in the phase cache) and the jitter carry
    ``floor((J_j + phi)/T)`` of Eq. 8.  Resolving them once turns each
    evaluation into one guarded ceiling per interfering task.

    ``kernel`` selects the evaluation backend (see :func:`resolve_kernel`):
    the ``"vector"`` closure reduces over all interfering jobs with one
    NumPy expression; ``"scalar"`` is the reference Python loop.
    """
    return compile_w_rows(
        scenario_rows(view, starter, starter_phi, starter_jitter),
        kernel=kernel,
    )


def compile_w_transaction_star(view: TransactionView, *, kernel: str = "scalar"):
    """Precompiled :math:`W^*_i` closure, equal to
    ``lambda t: w_transaction_star(view, t)`` (Eq. 15).

    Under the vector kernel the maximization over candidate starters is
    batched: one ``(starters, tasks)`` phase/carry matrix is prepared at
    compile time and every evaluation reduces it with a single matrix
    expression -- all of Eq. 15 in one call instead of one closure per
    starter.
    """
    n = len(view.tasks)
    if n and resolve_kernel(kernel, n * n) == "vector":
        _phi_arr, jitter_arr, cost_arr = _view_arrays(view)
        period = view.period
        # Row k: phases of every view task when starter k opens the busy
        # period (phase-cache backed, same entries the scalar path uses).
        ph = _np.array(
            [_phases_for(view, s.phi, s.jitter) for s in view.tasks],
            dtype=float,
        )
        carry = _carry_for(ph, jitter_arr[_np.newaxis, :], period)
        maximum, zeros = _np.maximum, _np.zeros_like(ph)

        def w_star_vec(t: float) -> float:
            jobs = carry + _snapped_ceil((t - ph) / period)
            return float((maximum(jobs, zeros) @ cost_arr).max())

        return w_star_vec

    fns = tuple(compile_w_transaction_k(view, s, kernel=kernel) for s in view.tasks)
    if len(fns) == 1:
        # A single candidate starter: the maximization is the identity
        # (the common shape in generated systems -- skip the wrapper).
        return fns[0]

    def w_star(t: float) -> float:
        best = 0.0
        for fn in fns:
            v = fn(t)
            if v > best:
                best = v
        return best

    return w_star


def starter_phase_of_analyzed(
    analyzed: AnalyzedTask, starter: HPTask | None
) -> float:
    """Phase :math:`\\varphi^{\\nu(a)}_{a,b}` of the analyzed task itself.

    When the analyzed task starts its own busy period (*starter* ``None``)
    its phase is the full period (Eq. 10 with ``k = (a,b)``).
    """
    if starter is None:
        return phase(analyzed.phi, analyzed.jitter, analyzed.phi, analyzed.period)
    return phase(starter.phi, starter.jitter, analyzed.phi, analyzed.period)
