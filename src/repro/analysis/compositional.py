"""Compositional per-component tests -- the prior art the paper extends.

The hierarchical-scheduling line the paper builds on (Shin & Lee's periodic
resource model [12], Lipari & Bini [7], Almeida & Pedreiras [1]) analyzes
each component *in isolation*: a component is schedulable on a platform
:math:`\\Pi` iff its demand never exceeds the guaranteed supply,

* under local **EDF**: :math:`\\forall t:\\ \\mathrm{dbf}(t) \\le Z^{min}(t)`
  (demand-bound function test);
* under local **FP**: for each task, :math:`\\exists t \\le D:\\
  \\mathrm{rbf}_i(t) \\le Z^{min}(t)` (request-bound function test).

These tests are exact for *independent* periodic tasks with
:math:`D \\le T` -- precisely the model the paper calls "a very strong
limitation".  They are provided here as

1. the baseline the reproduction compares against (benchmark E13): for
   components whose threads do not call other components, the per-component
   test and the paper's holistic analysis must agree;
2. the EDF-local capability the paper mentions as an easy extension
   (Sec. 2.1): independent EDF components can be admitted with
   :func:`edf_component_schedulable` even though the transaction analysis
   of Sec. 3 is fixed-priority only.

Check points follow the standard argument: the step functions change only
at activation instants, so testing the (finitely many) steps up to the
hyperperiod bound -- here up to ``max(D)`` for constrained deadlines -- is
exact; the supply side is lower-bounded by the platform's exact ``zmin``
when available, falling back to the linear envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.math import EPS, floor_div
from repro.util.validation import check_positive

__all__ = [
    "LocalTask",
    "dbf",
    "rbf",
    "edf_component_schedulable",
    "fp_component_schedulable",
]


@dataclass(frozen=True)
class LocalTask:
    """An independent periodic task local to one component.

    ``wcet`` is in cycles; ``deadline`` must satisfy ``deadline <= period``
    (constrained deadlines, as in the prior-art tests).  ``priority``
    follows the library convention (greater = higher) and is only used by
    the FP test.
    """

    wcet: float
    period: float
    deadline: float | None = None
    priority: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        check_positive(self.wcet, "wcet")
        check_positive(self.period, "period")
        d = self.period if self.deadline is None else self.deadline
        object.__setattr__(self, "deadline", float(d))
        check_positive(self.deadline, "deadline")
        if self.deadline > self.period + EPS:
            raise ValueError(
                f"LocalTask {self.name!r}: the compositional tests require "
                f"deadline <= period, got D={self.deadline}, T={self.period}"
            )


def dbf(tasks: list[LocalTask], t: float) -> float:
    """EDF demand-bound function: cycles that *must* finish within ``t``.

    :math:`\\mathrm{dbf}(t) = \\sum_i \\max(0,\\ \\lfloor (t - D_i)/T_i
    \\rfloor + 1)\\ C_i`.
    """
    total = 0.0
    for task in tasks:
        if t + EPS >= task.deadline:
            total += (floor_div(t - task.deadline, task.period) + 1) * task.wcet
    return total


def rbf(tasks: list[LocalTask], task: LocalTask, t: float) -> float:
    """FP request-bound function of *task*: own cycles plus hp releases in ``[0, t]``.

    :math:`\\mathrm{rbf}_i(t) = C_i + \\sum_{j \\in hp(i)}
    \\lceil t/T_j \\rceil C_j`.
    """
    from repro.util.math import ceil_div

    total = task.wcet
    for other in tasks:
        if other is task:
            continue
        if other.priority >= task.priority:
            total += ceil_div(t, other.period) * other.wcet
    return total


def _zmin(platform, t: float) -> float:
    zmin = getattr(platform, "zmin", None)
    if zmin is not None:
        return zmin(t)
    return max(0.0, platform.rate * (t - platform.delay))


def _edf_check_points(tasks: list[LocalTask], horizon: float) -> list[float]:
    """Absolute deadlines up to *horizon* -- the dbf step instants."""
    points: set[float] = set()
    for task in tasks:
        d = task.deadline
        while d <= horizon + EPS:
            points.add(d)
            d += task.period
    return sorted(points)


def edf_component_schedulable(tasks: list[LocalTask], platform) -> bool:
    """Exact EDF test on an abstract platform: ``dbf(t) <= zmin(t)`` at steps.

    The horizon is the constrained-deadline bound ``max D + lcm-free
    sufficient window``: since utilization must satisfy
    ``U <= rate`` anyway, testing up to the point where the linear supply
    lower bound outruns the linear demand upper bound is sufficient:
    ``t* = (beta_demand + rate*delay) / (rate - U)`` with
    ``beta_demand = sum C_i`` (the standard busy-window argument).
    """
    if not tasks:
        return True
    util = sum(t.wcet / t.period for t in tasks)
    rate = platform.rate
    if util > rate + EPS:
        return False
    demand_burst = sum(t.wcet for t in tasks)
    if util >= rate - 1e-12:
        # Full-rate utilization: fall back to a few hyper-ish periods.
        horizon = 4.0 * max(t.period for t in tasks) * len(tasks)
    else:
        horizon = (demand_burst + rate * platform.delay) / (rate - util)
    horizon = max(horizon, max(t.deadline for t in tasks))
    for point in _edf_check_points(tasks, horizon):
        if dbf(tasks, point) > _zmin(platform, point) + 1e-9:
            return False
    return True


def _fp_check_points(tasks: list[LocalTask], task: LocalTask) -> list[float]:
    """rbf step instants in ``(0, D_i]``: hp releases plus the deadline."""
    points: set[float] = {task.deadline}
    for other in tasks:
        if other is task or other.priority < task.priority:
            continue
        k = 1
        while k * other.period < task.deadline - EPS:
            points.add(k * other.period)
            k += 1
    return sorted(points)


def fp_component_schedulable(tasks: list[LocalTask], platform) -> bool:
    """Exact FP test: each task meets its deadline on the platform's zmin.

    Task :math:`i` is schedulable iff there is a step point
    :math:`t \\le D_i` with :math:`\\mathrm{rbf}_i(t) \\le Z^{min}(t)`.
    """
    for task in tasks:
        ok = False
        for point in _fp_check_points(tasks, task):
            if rbf(tasks, task, point) <= _zmin(platform, point) + 1e-9:
                ok = True
                break
        if not ok:
            return False
    return True
