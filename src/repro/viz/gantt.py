"""Text Gantt charts of simulation traces.

Renders per-platform execution timelines from the intervals a simulation
records with ``record_intervals=True``.  Each platform becomes one row of
the chart; each column is a time bucket; the glyph identifies the
transaction executing (``1``-``9`` then ``a``-``z``), ``.`` is idle supply
time and `` `` (space) is time without supply.
"""

from __future__ import annotations

from repro.model.system import TransactionSystem
from repro.sim.trace import SimTrace

__all__ = ["render_gantt"]

_GLYPHS = "123456789abcdefghijklmnopqrstuvwxyz"


def render_gantt(
    system: TransactionSystem,
    trace: SimTrace,
    *,
    start: float = 0.0,
    end: float | None = None,
    width: int = 100,
) -> str:
    """Render the recorded execution intervals as a text chart.

    Parameters
    ----------
    system:
        The simulated system (for platform/transaction names).
    trace:
        A trace produced with ``record_intervals=True``.
    start, end:
        The rendered time window; *end* defaults to the trace horizon.
    width:
        Chart width in characters; each character covers
        ``(end - start)/width`` time units and shows the transaction that
        executed the *majority* of that bucket.
    """
    if not trace.intervals:
        raise ValueError(
            "trace has no execution intervals; simulate with "
            "record_intervals=True"
        )
    if end is None:
        end = trace.horizon
    if end <= start:
        raise ValueError(f"empty window [{start!r}, {end!r})")
    bucket = (end - start) / width

    m_count = len(system.platforms)
    # occupancy[m][col][txn] = executed time of txn in that bucket.
    occupancy: list[list[dict[int, float]]] = [
        [dict() for _ in range(width)] for _ in range(m_count)
    ]
    for m, txn, _idx, s, e in trace.intervals:
        s = max(s, start)
        e = min(e, end)
        if e <= s:
            continue
        col0 = int((s - start) / bucket)
        col1 = min(width - 1, int((e - start - 1e-12) / bucket))
        for col in range(col0, col1 + 1):
            b_lo = start + col * bucket
            b_hi = b_lo + bucket
            overlap = min(e, b_hi) - max(s, b_lo)
            if overlap > 0:
                cell = occupancy[m][col]
                cell[txn] = cell.get(txn, 0.0) + overlap

    lines = [f"Gantt [{start:g}, {end:g}) -- one column = {bucket:g} time units"]
    for i, tr in enumerate(system.transactions):
        glyph = _GLYPHS[i % len(_GLYPHS)]
        lines.append(f"  {glyph} = {tr.name or f'Gamma{i + 1}'}")
    for m in range(m_count):
        name = getattr(system.platforms[m], "name", "") or f"Pi{m + 1}"
        row = []
        for col in range(width):
            cell = occupancy[m][col]
            if not cell:
                row.append(" ")
            else:
                winner = max(cell.items(), key=lambda kv: kv[1])[0]
                row.append(_GLYPHS[winner % len(_GLYPHS)])
        lines.append(f"{name:>16} |{''.join(row)}|")
    return "\n".join(lines)
