"""CSV output of benchmark series.

Each figure-reproducing benchmark writes its series next to its printed
output so the exact numbers can be re-plotted outside the sandbox.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["write_csv", "series_to_rows"]


def series_to_rows(
    columns: dict[str, Sequence[float]],
) -> tuple[list[str], list[list[float]]]:
    """Convert a column dict to (header, rows); columns must align in length."""
    header = list(columns.keys())
    lengths = {len(v) for v in columns.values()}
    if len(lengths) > 1:
        raise ValueError(f"columns have inconsistent lengths: {lengths}")
    n = lengths.pop() if lengths else 0
    rows = [[float(columns[h][k]) for h in header] for k in range(n)]
    return header, rows


def write_csv(
    path: str | Path,
    header: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write rows to *path*, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return path
