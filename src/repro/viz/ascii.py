"""ASCII line plots for the terminal.

Renders one or more ``(x, y)`` series on a character canvas.  Good enough to
eyeball the supply-function figures of the paper (Figure 3) and the sweep
benches; exact values go to CSV via :mod:`repro.viz.csvout`.
"""

from __future__ import annotations

from typing import Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    np = None  # ascii_plot/ascii_step_plot raise if called

__all__ = ["ascii_plot", "ascii_step_plot"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "t",
    ylabel: str = "",
) -> str:
    """Plot labelled series on one canvas.

    Parameters
    ----------
    series:
        Sequence of ``(label, xs, ys)`` triples; series are drawn in order,
        later series overwrite earlier ones where they collide.
    width, height:
        Canvas size in characters (axes excluded).
    """
    if np is None:
        raise RuntimeError("NumPy is required for ASCII plotting")
    if not series:
        raise ValueError("ascii_plot needs at least one series")
    xs_all = np.concatenate([np.asarray(s[1], dtype=float) for s in series])
    ys_all = np.concatenate([np.asarray(s[2], dtype=float) for s in series])
    if xs_all.size == 0:
        raise ValueError("series contain no points")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> int:
        # Row 0 is the top of the canvas.
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, height - 1 - int(frac * (height - 1))))

    for k, (_, xs, ys) in enumerate(series):
        marker = _MARKERS[k % len(_MARKERS)]
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        # Densify by resampling on columns so lines look continuous.
        if xs.size >= 2:
            grid = np.linspace(x_lo, x_hi, width * 2)
            inside = (grid >= xs.min()) & (grid <= xs.max())
            gy = np.interp(grid[inside], xs, ys)
            for x, y in zip(grid[inside], gy):
                canvas[to_row(float(y))][to_col(float(x))] = marker
        else:
            for x, y in zip(xs, ys):
                canvas[to_row(float(x))][to_col(float(y))] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[k % len(_MARKERS)]} {label}" for k, (label, _, _) in enumerate(series)
    )
    lines.append(legend)
    top_label = f"{y_hi:.4g}"
    bot_label = f"{y_lo:.4g}"
    pad = max(len(top_label), len(bot_label))
    for r, row in enumerate(canvas):
        if r == 0:
            prefix = top_label.rjust(pad)
        elif r == height - 1:
            prefix = bot_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_lo:.4g}".ljust(width // 2) + f"{xlabel}".center(8)
        + f"{x_hi:.4g}".rjust(width // 2 - 8)
    )
    if ylabel:
        lines.append(f"(y: {ylabel})")
    return "\n".join(lines)


def ascii_step_plot(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    **kwargs,
) -> str:
    """Step-style variant: each series is repeated at midpoints before plotting.

    Approximates piecewise-constant curves (e.g. supply functions sampled at
    corners) better than linear interpolation.
    """
    if np is None:
        raise RuntimeError("NumPy is required for ASCII plotting")
    stepped = []
    for label, xs, ys in series:
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.size < 2:
            stepped.append((label, xs, ys))
            continue
        new_x = np.empty(xs.size * 2 - 1)
        new_y = np.empty(ys.size * 2 - 1)
        new_x[0::2] = xs
        new_y[0::2] = ys
        new_x[1::2] = xs[1:] - 1e-9
        new_y[1::2] = ys[:-1]
        order = np.argsort(new_x)
        stepped.append((label, new_x[order], new_y[order]))
    return ascii_plot(stepped, **kwargs)
