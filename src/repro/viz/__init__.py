"""Text-based visualization: ASCII plots, tables and CSV output.

Matplotlib is not available in the offline environment, so every figure of
the paper is rendered as (a) an ASCII plot for the terminal and (b) a CSV
series for external plotting.  The *shape* comparisons the reproduction
cares about (supply curves vs. linear bounds, crossover points, sweep
trends) survive both renderings.
"""

from repro.viz.ascii import ascii_plot, ascii_step_plot
from repro.viz.tables import format_table
from repro.viz.csvout import write_csv, series_to_rows

try:
    from repro.viz.gantt import render_gantt
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    render_gantt = None  # needs the simulator's trace types (NumPy)

__all__ = [
    "ascii_plot",
    "ascii_step_plot",
    "render_gantt",
    "format_table",
    "write_csv",
    "series_to_rows",
]
