"""Plain-text table formatting used by reports and benchmarks."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    *,
    title: str = "",
    pad: int = 2,
) -> str:
    """Render a left-aligned monospace table.

    All cells must already be strings; column widths adapt to content.
    """
    cols = len(header)
    for r, row in enumerate(rows):
        if len(row) != cols:
            raise ValueError(
                f"row {r} has {len(row)} cells, header has {cols}"
            )
    widths = [len(h) for h in header]
    for row in rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))

    def line(cells: Sequence[str]) -> str:
        return (" " * pad).join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = (" " * pad).join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(header))
    out.append(sep)
    out.extend(line(row) for row in rows)
    return "\n".join(out)
