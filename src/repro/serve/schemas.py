"""Request validation and canonical response payloads for the service.

Hand-rolled on purpose: the API has four endpoints and two request
shapes, and a declarative-validator dependency would be the only
third-party import in the whole subsystem.  Every parser raises
:class:`ValidationError` carrying a list of human-readable problems,
which the app maps onto a ``400`` with the full list in the body --
a client should never have to fix its request one field per round trip.

The module also owns the *canonical result payload*: the bit-stable
subset of a :class:`~repro.batch.campaign.CampaignResult` JSON document.
``GET /campaigns/{id}/result`` must return byte-identical bodies for two
runs of the same spec (and match what ``python -m repro campaign --json``
wrote, modulo wall-clock), so the payload drops every volatile execution
field -- wall seconds, worker counts, store/shm/resume accounting,
per-cell ``time_s`` -- and serializes through
:func:`repro.batch.canonical.canonical_json`.  Non-finite metric floats
(an unschedulable cell's ``max_wcrt_ratio`` is ``inf``, an aborted
verdict probe's is ``nan``) are mapped onto the JSON-safe strings
``"Infinity"``/``"-Infinity"``/``"NaN"`` because canonical JSON rightly
refuses to encode them as bare tokens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.analysis import AnalysisConfig
from repro.batch.campaign import Campaign, CampaignSpec
from repro.batch.canonical import canonical_json
from repro.io import system_from_dict
from repro.model.system import TransactionSystem

__all__ = [
    "AnalyzeRequest",
    "CampaignRequest",
    "ValidationError",
    "canonical_result_json",
    "canonical_result_payload",
]

_METHODS = ("reduced", "exact")
_MODES = ("exact", "verdict")
_BEST_CASES = ("simple", "sound", "iterative")
_BACKENDS = ("pool", "dispatch")


class ValidationError(ValueError):
    """A request that failed validation; ``errors`` lists every problem."""

    def __init__(self, errors: list[str] | str):
        if isinstance(errors, str):
            errors = [errors]
        self.errors = errors
        super().__init__("; ".join(errors))


def _require_object(body: Any, what: str) -> dict:
    if not isinstance(body, dict):
        raise ValidationError(
            f"{what} must be a JSON object, got {type(body).__name__}"
        )
    return body


def _reject_unknown(body: dict, allowed: tuple[str, ...], what: str,
                    errors: list[str]) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        errors.append(
            f"unknown {what} field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}"
        )


def _choice(body: dict, key: str, choices: tuple[str, ...], default: str,
            errors: list[str]) -> str:
    value = body.get(key, default)
    if value not in choices:
        errors.append(
            f"{key} must be one of {', '.join(map(repr, choices))}, "
            f"got {value!r}"
        )
        return default
    return value


@dataclass(frozen=True)
class AnalyzeRequest:
    """Validated body of ``POST /analyze``."""

    system: TransactionSystem
    config: AnalysisConfig
    #: Raw system dict, kept for content hashing without re-serializing.
    system_dict: dict = field(repr=False, default_factory=dict)

    @classmethod
    def parse(cls, body: Any) -> "AnalyzeRequest":
        body = _require_object(body, "analyze request")
        errors: list[str] = []
        _reject_unknown(
            body, ("system", "method", "mode", "best_case"),
            "analyze request", errors,
        )
        method = _choice(body, "method", _METHODS, "reduced", errors)
        mode = _choice(body, "mode", _MODES, "exact", errors)
        best_case = _choice(body, "best_case", _BEST_CASES, "simple", errors)
        system_dict = body.get("system")
        system = None
        if not isinstance(system_dict, dict):
            errors.append(
                "system is required and must be a system JSON object "
                "(as written by `python -m repro example`)"
            )
        else:
            try:
                system = system_from_dict(system_dict)
            except Exception as exc:
                errors.append(f"system does not parse: {exc}")
        if errors:
            raise ValidationError(errors)
        assert system is not None
        return cls(
            system=system,
            config=AnalysisConfig(
                method=method, best_case=best_case, mode=mode
            ),
            system_dict=system_dict,
        )


@dataclass(frozen=True)
class CampaignRequest:
    """Validated body of ``POST /campaigns``."""

    spec: CampaignSpec
    #: ``"pool"`` runs on the persistent in-process worker pool;
    #: ``"dispatch"`` hands the spec to :class:`CampaignDispatcher`
    #: (subprocess shards, work stealing, fault-tolerant relaunch) --
    #: the right backend once a sweep outgrows one process pool.
    backend: str = "pool"

    @classmethod
    def parse(cls, body: Any) -> "CampaignRequest":
        body = _require_object(body, "campaign request")
        errors: list[str] = []
        _reject_unknown(
            body, ("spec", "backend"), "campaign request", errors
        )
        backend = _choice(body, "backend", _BACKENDS, "pool", errors)
        spec_dict = body.get("spec")
        spec = None
        if not isinstance(spec_dict, dict):
            errors.append(
                "spec is required and must be a campaign spec JSON object "
                "(the shape `python -m repro campaign --spec` reads)"
            )
        else:
            try:
                spec = CampaignSpec.from_dict(spec_dict)
                Campaign(spec)  # validates generator and method names
            except (ValueError, KeyError, TypeError) as exc:
                errors.append(f"spec does not validate: {exc}")
        if errors:
            raise ValidationError(errors)
        assert spec is not None
        return cls(spec=spec, backend=backend)


# -- canonical result payload ----------------------------------------------

#: CampaignResult fields that vary run to run without changing what was
#: computed.  ``chain_costs`` are recorded wall seconds; the store/shm/
#: resume counters describe *how* cells were obtained, not their values.
_VOLATILE_RESULT_FIELDS = frozenset(
    {
        "workers",
        "wall_time_s",
        "streamed_cells",
        "reused_cells",
        "reseed_solves",
        "reseed_evaluations",
        "shm_records",
        "shm_overflow",
        "store_hits",
        "store_misses",
        "chain_costs",
    }
)


def _json_safe(obj: Any) -> Any:
    """Replace non-finite floats with their stable string spellings."""
    if isinstance(obj, float):
        if math.isnan(obj):
            return "NaN"
        if math.isinf(obj):
            return "Infinity" if obj > 0 else "-Infinity"
        return obj
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


def canonical_result_payload(result: Any) -> dict:
    """The bit-stable view of a campaign result (object or dict form).

    Two runs of the same spec -- pool-backed, dispatch-backed, CLI,
    store-warmed or cold -- produce identical payloads; see the module
    docstring for what is stripped and why.
    """
    data = result.to_dict() if hasattr(result, "to_dict") else dict(result)
    payload = {
        k: v for k, v in data.items() if k not in _VOLATILE_RESULT_FIELDS
    }
    payload["cells"] = [
        {k: v for k, v in cell.items() if k != "time_s"}
        for cell in data.get("cells", [])
    ]
    return _json_safe(payload)


def canonical_result_json(result: Any) -> bytes:
    """Canonical JSON bytes of :func:`canonical_result_payload`."""
    return canonical_json(canonical_result_payload(result)).encode("utf-8")
