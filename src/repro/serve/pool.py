"""The persistent worker pool and the job runner threads.

Two layers of concurrency, deliberately separate:

* **Runner threads** (``job_runners`` of them) pull jobs off a *bounded*
  queue and execute one campaign each, start to finish.  The queue bound
  is the admission-control surface: ``POST /campaigns`` tries a
  non-blocking put and answers ``429`` on overflow, so a burst degrades
  into rejected submissions instead of unbounded memory.
* **The process pool** (``pool_workers`` processes) is one shared
  :class:`~concurrent.futures.ProcessPoolExecutor` passed into every
  :meth:`Campaign.run` call via its ``executor`` seam.  It is created
  once and *never* torn down between jobs -- worker processes keep their
  driver caches (compiled-W closures, phase memos, projection memos)
  warm, which is the whole point of running a service instead of a CLI
  process per request.  With ``pool_workers == 1`` campaigns run inline
  in the runner thread and the same caches amortize in the server
  process itself.

``backend="dispatch"`` jobs bypass the in-process pool and hand the spec
to :class:`~repro.batch.dispatch.CampaignDispatcher` -- subprocess
shards, work stealing, relaunch-from-checkpoint -- under a per-job work
dir in the service spool.  That is the path for sweeps too large to hold
in one pool; the result folds back through the same registry.
"""

from __future__ import annotations

import queue
import shutil
import tempfile
import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable

from repro.batch.campaign import Campaign, CampaignResult, CampaignSpec
from repro.batch.store import ResultStore
from repro.serve.jobs import Job, JobRegistry
from repro.serve.schemas import canonical_result_json

__all__ = ["WorkerPool"]

_STOP = object()


class WorkerPool:
    """Runs registry jobs on a persistent pool; owns the bounded queue."""

    def __init__(
        self,
        registry: JobRegistry,
        *,
        pool_workers: int = 2,
        job_runners: int = 1,
        max_queue: int = 8,
        store: str | Path | None = None,
        spool_dir: str | Path | None = None,
        dispatch_workers: int = 2,
        dispatch_shards: int | None = None,
        job_gate: Callable[[Job], None] | None = None,
    ):
        if pool_workers < 1:
            raise ValueError("pool_workers must be >= 1")
        if job_runners < 1:
            raise ValueError("job_runners must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.registry = registry
        self.pool_workers = pool_workers
        self.job_runners = job_runners
        self.max_queue = max_queue
        self.dispatch_workers = dispatch_workers
        self.dispatch_shards = dispatch_shards
        #: Test seam: called in the runner thread right before a job
        #: executes.  Lets the admission-control tests hold a runner on a
        #: threading.Event so queue overflow is deterministic, without
        #: faking slow campaigns.
        self.job_gate = job_gate
        self.store = ResultStore(store) if store is not None else None
        self._own_spool = spool_dir is None
        self._spool = Path(
            tempfile.mkdtemp(prefix="repro-serve-")
            if spool_dir is None
            else spool_dir
        )
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._lock = threading.Lock()
        self._busy = 0
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._runner_loop,
                name=f"repro-serve-runner-{i}",
                daemon=True,
            )
            for i in range(job_runners)
        ]
        for thread in self._threads:
            thread.start()

    # -- admission ---------------------------------------------------------

    def try_submit(self, job: Job) -> bool:
        """Queue *job*; False when the bounded queue is full (-> 429)."""
        try:
            self._queue.put_nowait(job)
            return True
        except queue.Full:
            return False

    # -- execution ---------------------------------------------------------

    def _shared_executor(self) -> ProcessPoolExecutor | None:
        """The persistent executor, created on first pool-backed job."""
        if self.pool_workers == 1:
            return None  # inline: caches amortize in the server process
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.pool_workers
                )
            return self._executor

    def _run_pool_job(self, spec: CampaignSpec) -> CampaignResult:
        return Campaign(spec).run(
            workers=self.pool_workers,
            executor=self._shared_executor(),
            store=self.store,
        )

    def _run_dispatch_job(self, job: Job, spec: CampaignSpec) -> CampaignResult:
        from repro.batch.dispatch import CampaignDispatcher

        work_dir = self._spool / job.id
        report = CampaignDispatcher(
            spec,
            workers=self.dispatch_workers,
            shards=self.dispatch_shards,
            work_dir=work_dir,
            store=str(self.store.root) if self.store is not None else None,
        ).run()
        shutil.rmtree(work_dir, ignore_errors=True)
        return report.result

    def _runner_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP or self._closed:
                return
            # Busy from the moment the job leaves the queue: a runner
            # held at the test gate still occupies its slot, which is
            # what admission control (and /stats) must reflect.
            with self._lock:
                self._busy += 1
            try:
                if self.job_gate is not None:
                    self.job_gate(job)
                self.registry.mark_running(job.id)
                spec = CampaignSpec.from_dict(job.spec_dict)
                if job.backend == "dispatch":
                    result = self._run_dispatch_job(job, spec)
                else:
                    result = self._run_pool_job(spec)
                self.registry.mark_done(
                    job.id, result, canonical_result_json(result)
                )
            except Exception as exc:  # a failed job must not kill the runner
                self.registry.mark_failed(
                    job.id, f"{type(exc).__name__}: {exc}"
                )
            finally:
                with self._lock:
                    self._busy -= 1
                self._queue.task_done()

    # -- introspection -----------------------------------------------------

    def occupancy(self) -> dict:
        """The ``pool`` block of ``GET /stats``."""
        with self._lock:
            busy = self._busy
            started = self._executor is not None
        return {
            "pool_workers": self.pool_workers,
            "job_runners": self.job_runners,
            "busy_runners": busy,
            "queue_depth": self._queue.qsize(),
            "max_queue": self.max_queue,
            "executor_started": started,
        }

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Stop the runners and the executor; idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            try:
                # Best-effort: a queue still full of admitted jobs keeps
                # its runners draining; they see _closed after the
                # current job and the threads are daemonic regardless.
                self._queue.put_nowait(_STOP)
            except queue.Full:
                break
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        if self._own_spool:
            shutil.rmtree(self._spool, ignore_errors=True)
