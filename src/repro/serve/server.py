"""Run the ASGI app for real: uvicorn when installed, stdlib otherwise.

The server dependency is guarded exactly like NumPy is in
``repro/__init__``: probe the import, remember the answer, and degrade
to a first-party fallback instead of failing.  Here the fallback is a
``ThreadingHTTPServer`` whose handler funnels every request through the
same :func:`~repro.serve.testclient.call_asgi` bridge the test client
uses -- one code path from the tier-1 suite to production.  uvicorn
(``requirements-ci.txt`` installs it; the no-NumPy leg does not) is
preferred when importable because it brings a production event loop,
keep-alive and graceful-shutdown handling for free.
"""

from __future__ import annotations

import signal
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.app import ReproServeApp
from repro.serve.testclient import call_asgi

# Guarded like NumPy: probe the dependency itself so a genuine
# first-party ImportError inside repro.serve propagates instead of
# masquerading as "uvicorn missing".
try:
    import uvicorn

    _HAVE_UVICORN = True
except ImportError:  # pragma: no cover - exercised where uvicorn is absent
    uvicorn = None  # type: ignore[assignment]
    _HAVE_UVICORN = False

__all__ = ["serve_forever"]


def _make_handler(app: ReproServeApp):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _dispatch(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            response = call_asgi(
                app,
                self.command,
                self.path,
                body=body,
                headers=list(self.headers.items()),
            )
            self.send_response(response.status)
            for name, value in response.headers.items():
                self.send_header(name, value)
            if "content-length" not in response.headers:
                self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            self.wfile.write(response.body)

        do_GET = do_POST = do_PUT = do_DELETE = _dispatch

    return Handler


def _serve_stdlib(app: ReproServeApp, host: str, port: int) -> int:
    server = ThreadingHTTPServer((host, port), _make_handler(app))
    server.daemon_threads = True

    def _graceful(signum, frame):
        raise KeyboardInterrupt

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _graceful)
        except ValueError:  # pragma: no cover - non-main thread embedding
            pass
    print(
        f"repro serve: listening on http://{host}:{server.server_port} "
        "(stdlib http.server bridge; install uvicorn for the ASGI "
        "event loop)"
    )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.server_close()
        app.close()
        print("repro serve: shut down cleanly")
    return 0


def serve_forever(
    app: ReproServeApp,
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    http_impl: str = "auto",
) -> int:
    """Serve *app* until interrupted; returns the process exit status.

    ``http_impl``: ``"uvicorn"`` requires the dependency, ``"stdlib"``
    forces the bundled bridge, ``"auto"`` (default) prefers uvicorn when
    importable.
    """
    if http_impl not in ("auto", "uvicorn", "stdlib"):
        raise ValueError(
            f"http_impl must be auto, uvicorn or stdlib, got {http_impl!r}"
        )
    if http_impl == "uvicorn" and not _HAVE_UVICORN:
        print(
            "error: --http uvicorn requested but uvicorn is not "
            "installed; use --http stdlib or install uvicorn",
            file=sys.stderr,
        )
        return 2
    if http_impl == "stdlib" or not _HAVE_UVICORN:
        return _serve_stdlib(app, host, port)
    # uvicorn drives the lifespan protocol, which calls app.close() on
    # shutdown (see ReproServeApp._lifespan); SIGINT/SIGTERM handling is
    # uvicorn's own graceful path.
    uvicorn.run(app, host=host, port=port, log_level="warning")
    return 0
