"""In-process test client: drive the ASGI app with no server, no socket.

The tier-1 API suite runs through this client -- the same idiom FastAPI
users get from ``TestClient`` -- so the serve CI leg needs no live
process, no free port and no HTTP stack.  The client speaks the ASGI
protocol directly: it builds an http scope, feeds the body through a
one-shot ``receive``, and collects ``http.response.*`` messages.  The
stdlib server bridge (:mod:`repro.serve.server`) reuses
:func:`call_asgi`, so a request travels byte-for-byte the same path in
tests and in production.
"""

from __future__ import annotations

import asyncio
import json as _json
from typing import Any

__all__ = ["Response", "TestClient", "call_asgi"]


class Response:
    """What one request produced: status, headers, body."""

    def __init__(
        self, status: int, headers: list[tuple[str, str]], body: bytes
    ):
        self.status = status
        self.headers = {name.lower(): value for name, value in headers}
        self.body = body

    def json(self) -> Any:
        return _json.loads(self.body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Response(status={self.status}, body={self.body[:120]!r})"


def call_asgi(
    app,
    method: str,
    path: str,
    *,
    body: bytes = b"",
    headers: list[tuple[str, str]] | None = None,
) -> Response:
    """One synchronous request through an ASGI app."""
    query = b""
    if "?" in path:
        path, _, q = path.partition("?")
        query = q.encode("latin-1")
    scope = {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method.upper(),
        "scheme": "http",
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": query,
        "headers": [
            (name.lower().encode("latin-1"), value.encode("latin-1"))
            for name, value in (headers or [])
        ],
        "client": ("testclient", 0),
        "server": ("testserver", 80),
    }
    received = False

    async def receive() -> dict:
        nonlocal received
        if received:
            return {"type": "http.disconnect"}
        received = True
        return {"type": "http.request", "body": body, "more_body": False}

    messages: list[dict] = []

    async def send(message: dict) -> None:
        messages.append(message)

    asyncio.run(app(scope, receive, send))
    status = 500
    out_headers: list[tuple[str, str]] = []
    out_body = b""
    for message in messages:
        if message["type"] == "http.response.start":
            status = message["status"]
            out_headers = [
                (name.decode("latin-1"), value.decode("latin-1"))
                for name, value in message.get("headers", [])
            ]
        elif message["type"] == "http.response.body":
            out_body += message.get("body", b"")
    return Response(status, out_headers, out_body)


class TestClient:
    """Synchronous client over an in-process app; context-managed."""

    __test__ = False  # keep pytest from collecting this as a test class

    def __init__(self, app):
        self.app = app

    def request(
        self,
        method: str,
        path: str,
        *,
        json: Any = None,
        body: bytes | None = None,
        headers: list[tuple[str, str]] | None = None,
    ) -> Response:
        headers = list(headers or [])
        if json is not None:
            body = _json.dumps(json).encode("utf-8")
            headers.append(("content-type", "application/json"))
        return call_asgi(
            self.app, method, path, body=body or b"", headers=headers
        )

    def get(self, path: str, **kwargs) -> Response:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, **kwargs) -> Response:
        return self.request("POST", path, **kwargs)

    def close(self) -> None:
        close = getattr(self.app, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "TestClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
