"""The campaign job registry: async handles for ``POST /campaigns``.

A :class:`Job` is the server-side record of one submitted campaign; the
:class:`JobRegistry` owns the id space and the lifecycle
``queued -> running -> done | failed``.  All mutation goes through the
registry under one lock -- handlers only ever read consistent snapshots
(:meth:`Job.status_payload`), and the runner threads in
:mod:`repro.serve.pool` only ever mark transitions.

Job ids are deterministic (``job-000001``, ...): the service has no
randomness of its own, which keeps API-level tests exact.  Finished jobs
are retained up to a bounded count so the registry cannot grow without
limit under sustained traffic; evicted ids answer ``404`` like unknown
ones (documented in the README -- poll promptly or raise the retention).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.batch.campaign import CampaignResult

__all__ = ["Job", "JobRegistry"]

#: Lifecycle states, in order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class Job:
    """One submitted campaign and everything the API reports about it."""

    id: str
    spec_dict: dict
    backend: str
    n_analyses: int
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: CampaignResult | None = None
    #: Canonical result bytes, frozen at completion -- every
    #: ``GET /campaigns/{id}/result`` returns exactly these.
    result_bytes: bytes | None = None
    store_hits: int = 0
    store_misses: int = 0

    def status_payload(self) -> dict[str, Any]:
        """The ``GET /campaigns/{id}`` body."""
        payload: dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "backend": self.backend,
            "n_analyses": self.n_analyses,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "links": {
                "status": f"/campaigns/{self.id}",
                "result": f"/campaigns/{self.id}/result",
            },
        }
        if self.state in (DONE, FAILED) and self.started_at is not None:
            payload["wall_s"] = (self.finished_at or 0.0) - self.started_at
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["store"] = {
                "hits": self.store_hits,
                "misses": self.store_misses,
            }
            payload["cells"] = len(self.result.cells)
        return payload


class JobRegistry:
    """Thread-safe job table with bounded finished-job retention."""

    def __init__(self, *, max_finished: int = 256):
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._finished_order: list[str] = []
        self._seq = 0
        self._max_finished = max_finished
        # Store totals survive job eviction: /stats reports service-
        # lifetime hits/misses, not just what the retained jobs remember.
        self._total_store_hits = 0
        self._total_store_misses = 0
        self._total_done = 0
        self._total_failed = 0

    # -- lifecycle ---------------------------------------------------------

    def create(self, spec_dict: dict, backend: str, n_analyses: int) -> Job:
        with self._lock:
            self._seq += 1
            job = Job(
                id=f"job-{self._seq:06d}",
                spec_dict=spec_dict,
                backend=backend,
                n_analyses=n_analyses,
            )
            self._jobs[job.id] = job
            return job

    def discard(self, job_id: str) -> None:
        """Forget a job that never made it past admission control."""
        with self._lock:
            self._jobs.pop(job_id, None)

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = RUNNING
            job.started_at = time.time()

    def mark_done(
        self, job_id: str, result: CampaignResult, result_bytes: bytes
    ) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = DONE
            job.finished_at = time.time()
            job.result = result
            job.result_bytes = result_bytes
            job.store_hits = result.store_hits
            job.store_misses = result.store_misses
            self._total_store_hits += result.store_hits
            self._total_store_misses += result.store_misses
            self._total_done += 1
            self._retire(job_id)

    def mark_failed(self, job_id: str, error: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = FAILED
            job.finished_at = time.time()
            job.error = error
            self._total_failed += 1
            self._retire(job_id)

    def _retire(self, job_id: str) -> None:
        """Record completion order; evict beyond the retention bound."""
        self._finished_order.append(job_id)
        while len(self._finished_order) > self._max_finished:
            evicted = self._finished_order.pop(0)
            self._jobs.pop(evicted, None)

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_payload(self) -> list[dict[str, Any]]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.id)
            return [job.status_payload() for job in jobs]

    def counts(self) -> dict[str, int]:
        with self._lock:
            live = list(self._jobs.values())
            return {
                "queued": sum(j.state == QUEUED for j in live),
                "running": sum(j.state == RUNNING for j in live),
                "done": self._total_done,
                "failed": self._total_failed,
            }

    def store_totals(self) -> tuple[int, int]:
        with self._lock:
            return self._total_store_hits, self._total_store_misses
