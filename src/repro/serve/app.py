"""The ASGI application: routing, admission control, JSON plumbing.

Hand-rolled ASGI rather than FastAPI: the framework would be the only
third-party dependency of the subsystem, and the protocol surface we
need -- http scope, one body read, one response send, lifespan no-ops --
is ~60 lines.  The app runs unchanged under uvicorn (when installed),
under the stdlib bridge in :mod:`repro.serve.server`, and under the
in-process :class:`~repro.serve.testclient.TestClient`.

Endpoint map (all bodies JSON):

====== ============================ =========================================
POST   ``/analyze``                 sync single-system analysis
POST   ``/campaigns``               submit a campaign -> async job handle
GET    ``/campaigns``               list known jobs
GET    ``/campaigns/{id}``          job status + accounting
GET    ``/campaigns/{id}/result``   canonical merged result (when done)
GET    ``/healthz``                 liveness
GET    ``/stats``                   uptime, pool occupancy, store totals
====== ============================ =========================================

Admission control: a campaign whose spec plans more than
``max_cells_per_job`` analyses is refused outright with ``413`` (no job
is created), and when the bounded job queue is full the submission gets
``429`` with a ``Retry-After`` header while already-admitted jobs keep
running -- the service degrades by shedding load, never by falling over.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Awaitable, Callable

from repro import __version__
from repro.analysis import analyze
from repro.batch.canonical import analysis_config_hash, system_hash
from repro.batch.store import StoreKey
from repro.serve.jobs import DONE, FAILED, Job, JobRegistry
from repro.serve.pool import WorkerPool
from repro.serve.schemas import (
    AnalyzeRequest,
    CampaignRequest,
    ValidationError,
)

__all__ = ["ReproServeApp", "ServeConfig", "create_app"]

_JOB_PATH = re.compile(r"^/campaigns/([A-Za-z0-9_-]+)$")
_JOB_RESULT_PATH = re.compile(r"^/campaigns/([A-Za-z0-9_-]+)/result$")


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    #: Content-addressed result store root (``--store``); None disables
    #: cross-request/cross-process result caching.
    store: str | Path | None = None
    #: Persistent process-pool size for campaign jobs; 1 runs campaigns
    #: inline in the runner thread (caches amortize in-process).
    pool_workers: int = 2
    #: Concurrent campaign jobs (runner threads).
    job_runners: int = 1
    #: Bounded job-queue length; overflow answers 429 + Retry-After.
    max_queue: int = 8
    #: Per-request ceiling on planned analyses (spec cells x methods);
    #: larger submissions answer 413.
    max_cells_per_job: int = 20_000
    #: Seconds advertised in the 429 Retry-After header.
    retry_after_s: float = 2.0
    #: Finished jobs retained for status/result polling.
    max_finished_jobs: int = 256
    #: ``backend="dispatch"`` jobs: subprocess slots and shard count
    #: (None lets the dispatcher default to 4x workers).
    dispatch_workers: int = 2
    dispatch_shards: int | None = None
    #: Work-dir spool for dispatch jobs (None: private temp dir).
    spool_dir: str | Path | None = None
    #: Test seam, forwarded to :class:`WorkerPool` (see its docstring).
    job_gate: Callable[[Job], None] | None = None


class ReproServeApp:
    """The ASGI callable plus the service state it closes over."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.registry = JobRegistry(
            max_finished=self.config.max_finished_jobs
        )
        self.pool = WorkerPool(
            self.registry,
            pool_workers=self.config.pool_workers,
            job_runners=self.config.job_runners,
            max_queue=self.config.max_queue,
            store=self.config.store,
            spool_dir=self.config.spool_dir,
            dispatch_workers=self.config.dispatch_workers,
            dispatch_shards=self.config.dispatch_shards,
            job_gate=self.config.job_gate,
        )
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._analyze_requests = 0
        self._analyze_store_hits = 0

    # -- ASGI protocol -----------------------------------------------------

    async def __call__(
        self,
        scope: dict,
        receive: Callable[[], Awaitable[dict]],
        send: Callable[[dict], Awaitable[None]],
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            return
        body = b""
        while True:
            message = await receive()
            if message["type"] == "http.request":
                body += message.get("body", b"")
                if not message.get("more_body"):
                    break
            elif message["type"] == "http.disconnect":
                return
        status, payload, headers = self._dispatch(
            scope.get("method", "GET"), scope.get("path", "/"), body
        )
        await send(
            {
                "type": "http.response.start",
                "status": status,
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in headers
                ],
            }
        )
        await send({"type": "http.response.body", "body": payload})

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- dispatch ----------------------------------------------------------

    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes, list[tuple[str, str]]]:
        """Route one request; returns ``(status, body, headers)``."""
        with self._lock:
            key = f"{method} {path.split('?', 1)[0]}"
            self._requests[key] = self._requests.get(key, 0) + 1
        try:
            return self._route(method, path.split("?", 1)[0], body)
        except ValidationError as exc:
            return _json(400, {"error": "invalid request",
                               "detail": exc.errors})
        except Exception as exc:  # never let a handler kill the server
            return _json(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

    def _route(self, method, path, body):
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed("GET")
            return _json(200, {"status": "ok", "version": __version__})
        if path == "/stats":
            if method != "GET":
                return _method_not_allowed("GET")
            return _json(200, self._stats_payload())
        if path == "/analyze":
            if method != "POST":
                return _method_not_allowed("POST")
            return self._handle_analyze(_parse_body(body))
        if path == "/campaigns":
            if method == "POST":
                return self._handle_submit(_parse_body(body))
            if method == "GET":
                return _json(200, {"jobs": self.registry.list_payload()})
            return _method_not_allowed("GET, POST")
        match = _JOB_PATH.match(path)
        if match:
            if method != "GET":
                return _method_not_allowed("GET")
            return self._handle_status(match.group(1))
        match = _JOB_RESULT_PATH.match(path)
        if match:
            if method != "GET":
                return _method_not_allowed("GET")
            return self._handle_result(match.group(1))
        return _json(404, {"error": f"no route for {path}"})

    # -- handlers ----------------------------------------------------------

    def _handle_analyze(self, body: Any):
        request = AnalyzeRequest.parse(body)
        store = self.pool.store
        served = None
        key = None
        if store is not None:
            # The same key `python -m repro analyze --store` uses, so the
            # CLI and the service share one cache population.
            key = StoreKey(
                system_hash(request.system),
                analysis_config_hash(request.config),
                None,
                "analyze",
            )
            served = store.get(key)
            if served is not None and (
                not isinstance(served.get("transaction_wcrt"), list)
                or len(served["transaction_wcrt"])
                != len(request.system.transactions)
            ):
                served = None  # malformed/foreign entry: analyze fresh
        with self._lock:
            self._analyze_requests += 1
            if served is not None:
                self._analyze_store_hits += 1
        if served is not None:
            schedulable = bool(served["schedulable"])
            converged = bool(served["converged"])
            wcrts = [float(w) for w in served["transaction_wcrt"]]
            store_state = "hit"
        else:
            result = analyze(request.system, config=request.config)
            schedulable = result.schedulable
            converged = result.converged
            wcrts = [
                result.transaction_wcrt[i]
                for i in range(len(request.system.transactions))
            ]
            if store is not None and key is not None:
                store.put(
                    key,
                    {
                        "schedulable": bool(schedulable),
                        "converged": bool(converged),
                        "transaction_wcrt": [float(w) for w in wcrts],
                    },
                )
                store_state = "miss"
            else:
                store_state = "off"
        deadlines = [
            float(tr.deadline) for tr in request.system.transactions
        ]
        return _json(
            200,
            {
                "schedulable": schedulable,
                "converged": converged,
                "method": request.config.method,
                "mode": request.config.mode,
                "store": store_state,
                "transactions": [
                    {
                        "wcrt": _finite(w),
                        "deadline": d,
                        "slack": _finite(d - w),
                        "meets": w <= d + 1e-9,
                    }
                    for w, d in zip(wcrts, deadlines)
                ],
            },
        )

    def _handle_submit(self, body: Any):
        request = CampaignRequest.parse(body)
        n_analyses = request.spec.n_analyses()
        if n_analyses > self.config.max_cells_per_job:
            return _json(
                413,
                {
                    "error": "campaign exceeds the per-request cell "
                    "ceiling; shard it into smaller submissions",
                    "n_analyses": n_analyses,
                    "max_cells_per_job": self.config.max_cells_per_job,
                },
            )
        job = self.registry.create(
            request.spec.to_dict(), request.backend, n_analyses
        )
        if not self.pool.try_submit(job):
            self.registry.discard(job.id)
            retry_after = max(1, round(self.config.retry_after_s))
            return _json(
                429,
                {
                    "error": "job queue is full; retry later",
                    "max_queue": self.config.max_queue,
                    "retry_after_s": retry_after,
                },
                extra_headers=[("retry-after", str(retry_after))],
            )
        return _json(202, job.status_payload())

    def _handle_status(self, job_id: str):
        job = self.registry.get(job_id)
        if job is None:
            return _json(404, {"error": f"unknown job {job_id!r}"})
        return _json(200, job.status_payload())

    def _handle_result(self, job_id: str):
        job = self.registry.get(job_id)
        if job is None:
            return _json(404, {"error": f"unknown job {job_id!r}"})
        if job.state == FAILED:
            return _json(
                410, {"error": f"job {job_id} failed: {job.error}"}
            )
        if job.state != DONE or job.result_bytes is None:
            return _json(
                409,
                {
                    "error": f"job {job_id} is {job.state}; poll "
                    f"/campaigns/{job_id} until it is done",
                    "state": job.state,
                },
            )
        return (
            200,
            job.result_bytes,
            [
                ("content-type", "application/json"),
                ("content-length", str(len(job.result_bytes))),
            ],
        )

    def _stats_payload(self) -> dict[str, Any]:
        with self._lock:
            requests = dict(sorted(self._requests.items()))
            analyze_requests = self._analyze_requests
            analyze_hits = self._analyze_store_hits
        hits, misses = self.registry.store_totals()
        store_block: dict[str, Any] | None = None
        if self.pool.store is not None:
            disk = self.pool.store.stats()
            store_block = {
                "root": str(self.pool.store.root),
                "hits": hits + analyze_hits,
                "misses": misses,
                "entries": disk.entries,
                "bytes": disk.bytes,
            }
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": requests,
            "jobs": self.registry.counts(),
            "pool": self.pool.occupancy(),
            "store": store_block,
            "analyze": {
                "requests": analyze_requests,
                "store_hits": analyze_hits,
            },
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.pool.close()


def create_app(config: ServeConfig | None = None) -> ReproServeApp:
    """Build the service (the conventional app-factory entry point)."""
    return ReproServeApp(config)


# -- response plumbing -----------------------------------------------------


def _finite(value: float) -> float | str:
    """JSON-safe float: non-finite WCRTs become their string spellings."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _parse_body(body: bytes) -> Any:
    if not body:
        raise ValidationError("request body is empty; expected JSON")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"request body is not valid JSON: {exc}")


def _json(
    status: int,
    payload: dict,
    *,
    extra_headers: list[tuple[str, str]] | None = None,
) -> tuple[int, bytes, list[tuple[str, str]]]:
    body = json.dumps(payload, allow_nan=False).encode("utf-8")
    headers = [
        ("content-type", "application/json"),
        ("content-length", str(len(body))),
    ]
    if extra_headers:
        headers.extend(extra_headers)
    return status, body, headers


def _method_not_allowed(allow: str):
    return _json(
        405,
        {"error": f"method not allowed; use {allow}"},
        extra_headers=[("allow", allow)],
    )
