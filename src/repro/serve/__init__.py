"""Analysis-as-a-service: the long-running server in front of the engine.

``python -m repro serve`` keeps one process (and one persistent worker
pool) alive across requests, so everything a cold CLI invocation pays
for on every run -- compiled-W closures, projection memos, phase-cache
state, warm-start jitters, the content-addressed result store's page
cache -- amortizes across calls:

* ``POST /analyze`` -- synchronous single-system analysis (exact or
  verdict mode), optionally served from the result store;
* ``POST /campaigns`` -- a campaign spec JSON becomes an async job
  handle, executed on the persistent in-process pool (or handed to
  :class:`~repro.batch.dispatch.CampaignDispatcher` for large sweeps);
* ``GET /campaigns/{id}`` / ``GET /campaigns/{id}/result`` -- job
  status/accounting and the canonical merged result;
* ``GET /healthz`` / ``GET /stats`` -- liveness, store hit/miss totals,
  pool occupancy, uptime.

The HTTP surface is a plain ASGI application (:func:`create_app`), so it
runs under any ASGI server.  Nothing here *requires* one: the bundled
:mod:`repro.serve.server` bridge serves the app on the stdlib
``http.server`` when ``uvicorn`` is not installed (the import is guarded
exactly like NumPy's), and :class:`repro.serve.testclient.TestClient`
drives the app in-process for tests without any server at all.

Admission control keeps the service degradable instead of crashable: a
bounded job queue answers overflow with ``429`` + ``Retry-After`` while
in-flight jobs keep running, and a per-request cell-count ceiling bounds
the largest job a single POST can submit.
"""

from repro.serve.app import ReproServeApp, ServeConfig, create_app
from repro.serve.jobs import Job, JobRegistry
from repro.serve.pool import WorkerPool
from repro.serve.schemas import (
    ValidationError,
    canonical_result_json,
    canonical_result_payload,
)

__all__ = [
    "Job",
    "JobRegistry",
    "ReproServeApp",
    "ServeConfig",
    "ValidationError",
    "WorkerPool",
    "canonical_result_json",
    "canonical_result_payload",
    "create_app",
]
