"""The transaction model :math:`\\Gamma_i` of Section 2.4.

A transaction is a chain of tasks with precedence constraints: task
:math:`\\tau_{i,j}` cannot start before :math:`\\tau_{i,j-1}` completes.  The
chain is released periodically (period :math:`T_i`) and the *last* task must
finish within the end-to-end relative deadline :math:`D_i`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.model.task import Task
from repro.util.math import fmod_pos
from repro.util.validation import check_positive

__all__ = ["Transaction"]


@dataclass
class Transaction:
    """A precedence chain of tasks released periodically.

    Parameters
    ----------
    period:
        Activation period :math:`T_i` (the paper treats sporadic threads
        identically through the minimum inter-arrival time).
    tasks:
        The ordered task chain :math:`(\\tau_{i,1}, \\dots, \\tau_{i,n_i})`.
    deadline:
        End-to-end relative deadline :math:`D_i`; defaults to the period.
    name:
        Optional label used in reports (e.g. ``"Gamma1"``).
    """

    period: float
    tasks: list[Task]
    deadline: float | None = None
    name: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.period, "period")
        if self.deadline is None:
            self.deadline = float(self.period)
        check_positive(self.deadline, "deadline")
        if not isinstance(self.tasks, Sequence) or isinstance(self.tasks, (str, bytes)):
            raise TypeError("tasks must be a sequence of Task objects")
        self.tasks = list(self.tasks)
        if not self.tasks:
            raise ValueError("a transaction must contain at least one task")
        for k, t in enumerate(self.tasks):
            if not isinstance(t, Task):
                raise TypeError(f"tasks[{k}] is not a Task: {t!r}")
        self.period = float(self.period)
        self.deadline = float(self.deadline)

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> Task:
        return self.tasks[index]

    # -- derived quantities -------------------------------------------------------

    @property
    def last(self) -> Task:
        """The final task; its response time decides schedulability."""
        return self.tasks[-1]

    def reduced_offset(self, index: int) -> float:
        """Offset of task *index* reduced modulo the period (:math:`\\bar\\phi`)."""
        return fmod_pos(self.tasks[index].offset, self.period)

    def total_wcet(self) -> float:
        """Sum of worst-case execution times over the chain (in cycles)."""
        return sum(t.wcet for t in self.tasks)

    def total_bcet(self) -> float:
        """Sum of best-case execution times over the chain (in cycles)."""
        return sum(t.bcet for t in self.tasks)

    def utilization_on(self, platform: int, rate: float) -> float:
        """Processor utilization this transaction induces on *platform*.

        The cycles of every task mapped to *platform* are converted to time
        by the platform rate and normalized by the period.
        """
        demand = sum(t.wcet for t in self.tasks if t.platform == platform)
        return demand / rate / self.period

    def platforms_used(self) -> set[int]:
        """Set of platform indices this transaction's tasks execute on."""
        return {t.platform for t in self.tasks}

    def validate_chain(self) -> None:
        """Check precedence-consistency of static offsets.

        For a hand-specified (static offset) system the offsets along the
        chain must be non-decreasing -- a task cannot be released before its
        predecessor.  Derived systems manage offsets through the analysis and
        always satisfy this by construction.
        """
        for j in range(1, len(self.tasks)):
            if self.tasks[j].offset + 1e-12 < self.tasks[j - 1].offset:
                raise ValueError(
                    f"{self.name or 'transaction'}: offset of task {j} "
                    f"({self.tasks[j].offset}) precedes offset of task {j - 1} "
                    f"({self.tasks[j - 1].offset})"
                )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "Gamma"
        inner = ", ".join(str(t) for t in self.tasks)
        return f"{label}(T={self.period}, D={self.deadline}; {inner})"
