"""Task, transaction and system data model.

These are the objects Section 2.4 of the paper derives from the component
specification and on which Section 3 runs its analysis:

* :class:`repro.model.task.Task` -- one task :math:`\\tau_{i,j}` with
  worst/best-case execution time, offset, jitter, priority and the index of
  the abstract platform it is mapped to.
* :class:`repro.model.transaction.Transaction` -- a precedence chain
  :math:`\\Gamma_i = (\\tau_{i,1} \\dots \\tau_{i,n_i})` with a period and an
  end-to-end deadline.
* :class:`repro.model.system.TransactionSystem` -- the full analyzable
  system: transactions plus the list of abstract platforms.
* :mod:`repro.model.priorities` -- priority-assignment policies (the paper
  takes priorities from the component threads; rate/deadline-monotonic
  assignment is provided for generated workloads).
"""

from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.model.system import TransactionSystem
from repro.model.priorities import (
    assign_deadline_monotonic,
    assign_rate_monotonic,
    normalize_priorities,
)

__all__ = [
    "Task",
    "Transaction",
    "TransactionSystem",
    "assign_deadline_monotonic",
    "assign_rate_monotonic",
    "normalize_priorities",
]
