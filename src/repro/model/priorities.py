"""Priority-assignment policies.

In the paper, task priorities come directly from the component threads
(Section 2.4): they are fixed by the designer, local to each component, and
the analysis compares them only between tasks mapped to the same platform.
For *generated* workloads (:mod:`repro.gen`) we provide the two classical
fixed-priority policies.  Priorities follow the paper's convention: **greater
number = higher priority**.
"""

from __future__ import annotations

from repro.model.system import TransactionSystem

__all__ = [
    "assign_rate_monotonic",
    "assign_deadline_monotonic",
    "normalize_priorities",
]


def _assign_by_key(system: TransactionSystem, key_is_period: bool) -> None:
    """Assign per-platform priorities ordered by period or deadline.

    Tasks on each platform are ranked by their transaction's period
    (rate-monotonic) or end-to-end deadline (deadline-monotonic): the
    smallest value receives the highest priority.  Ties are broken by
    transaction index, then task index, deterministically.
    """
    for m in range(len(system.platforms)):
        entries = system.tasks_on(m)
        if not entries:
            continue

        def sort_key(entry: tuple[int, int, object]) -> tuple[float, int, int]:
            i, j, _ = entry
            tr = system.transactions[i]
            val = tr.period if key_is_period else float(tr.deadline)
            return (val, i, j)

        ordered = sorted(entries, key=sort_key)
        # Highest priority (largest number) to the smallest period/deadline.
        n = len(ordered)
        for rank, (i, j, _) in enumerate(ordered):
            system.transactions[i].tasks[j].priority = n - rank


def assign_rate_monotonic(system: TransactionSystem) -> TransactionSystem:
    """Rate-monotonic priorities per platform (in place; returns *system*).

    Each platform gets an independent priority space (priorities are local,
    as in the paper); the task whose transaction has the shortest period gets
    the numerically greatest priority on that platform.
    """
    _assign_by_key(system, key_is_period=True)
    return system


def assign_deadline_monotonic(system: TransactionSystem) -> TransactionSystem:
    """Deadline-monotonic priorities per platform (in place; returns *system*)."""
    _assign_by_key(system, key_is_period=False)
    return system


def normalize_priorities(system: TransactionSystem) -> TransactionSystem:
    """Re-map priorities on each platform to the dense range ``1..n``.

    Preserves the relative order (including ties) of the existing
    priorities.  Useful after composing systems whose components used
    arbitrary local priority values.
    """
    for m in range(len(system.platforms)):
        entries = system.tasks_on(m)
        if not entries:
            continue
        distinct = sorted({t.priority for _, _, t in entries})
        remap = {p: rank + 1 for rank, p in enumerate(distinct)}
        for i, j, t in entries:
            system.transactions[i].tasks[j].priority = remap[t.priority]
    return system
