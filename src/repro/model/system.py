"""The analyzable system: transactions + abstract platforms.

:class:`TransactionSystem` is the object consumed by every analysis in
:mod:`repro.analysis` and by the simulator in :mod:`repro.sim`.  It couples
the transaction set of Section 2.4 with the list of abstract computing
platforms of Section 2.3 (anything exposing ``rate``/``delay``/``burstiness``
is accepted -- see :class:`PlatformLike`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

from repro.model.task import Task
from repro.model.transaction import Transaction

__all__ = ["PlatformLike", "TransactionSystem"]


@runtime_checkable
class PlatformLike(Protocol):
    """Structural type of an abstract computing platform.

    The analysis only needs the linear supply-bound triple
    :math:`(\\alpha, \\Delta, \\beta)` of Definitions 3-5 in the paper.
    Concrete platforms in :mod:`repro.platforms` additionally expose the
    exact supply functions ``zmin``/``zmax``.
    """

    @property
    def rate(self) -> float: ...  # noqa: E704  (protocol stub)

    @property
    def delay(self) -> float: ...  # noqa: E704

    @property
    def burstiness(self) -> float: ...  # noqa: E704


@dataclass
class TransactionSystem:
    """A set of transactions scheduled over a set of abstract platforms.

    Parameters
    ----------
    transactions:
        The transaction set :math:`\\{\\Gamma_1, \\dots\\}`.
    platforms:
        The platform list :math:`\\{\\Pi_1, \\dots, \\Pi_M\\}`; every task's
        ``platform`` index must address this list.
    name:
        Optional label used in reports.
    """

    transactions: list[Transaction]
    platforms: list[PlatformLike]
    name: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.transactions, Sequence):
            raise TypeError("transactions must be a sequence of Transaction")
        if not isinstance(self.platforms, Sequence):
            raise TypeError("platforms must be a sequence of platforms")
        self.transactions = list(self.transactions)
        self.platforms = list(self.platforms)
        for i, tr in enumerate(self.transactions):
            if not isinstance(tr, Transaction):
                raise TypeError(f"transactions[{i}] is not a Transaction: {tr!r}")
        for j, p in enumerate(self.platforms):
            for attr in ("rate", "delay", "burstiness"):
                if not hasattr(p, attr):
                    raise TypeError(
                        f"platforms[{j}] ({p!r}) lacks required attribute {attr!r}"
                    )
        self.validate()

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check platform indices and per-platform utilization sanity.

        Raises :class:`ValueError` when a task addresses a platform outside
        the platform list.  Over-utilized platforms are legal (the analysis
        will simply find the system unschedulable) so only a structural check
        is performed here.
        """
        m = len(self.platforms)
        for tr in self.transactions:
            for k, task in enumerate(tr.tasks):
                if task.platform >= m:
                    raise ValueError(
                        f"{tr.name or 'transaction'} task {k} maps to platform "
                        f"{task.platform} but only {m} platforms are defined"
                    )

    # -- container conveniences ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    # -- derived quantities ---------------------------------------------------------

    def tasks_on(self, platform: int) -> list[tuple[int, int, Task]]:
        """All tasks mapped to *platform* as ``(txn_index, task_index, task)``."""
        out: list[tuple[int, int, Task]] = []
        for i, tr in enumerate(self.transactions):
            for j, task in enumerate(tr.tasks):
                if task.platform == platform:
                    out.append((i, j, task))
        return out

    def utilization(self, platform: int) -> float:
        """Utilization of *platform*: demanded time over period, normalized.

        The demand of each task in cycles is converted to time through the
        platform rate; a value above 1.0 means the platform cannot sustain
        the long-run load and the system is certainly unschedulable.
        """
        rate = self.platforms[platform].rate
        return sum(
            tr.utilization_on(platform, rate) for tr in self.transactions
        )

    def utilizations(self) -> list[float]:
        """Per-platform utilizations, index-aligned with ``platforms``."""
        return [self.utilization(m) for m in range(len(self.platforms))]

    def total_tasks(self) -> int:
        """Total number of tasks across all transactions."""
        return sum(len(tr) for tr in self.transactions)

    def hyperperiod_hint(self) -> float:
        """Product-free upper bound used to size simulations.

        Computing the true hyperperiod of arbitrary float periods is
        ill-posed; simulations instead run for a multiple of the largest
        period times the number of transactions, which this helper returns.
        """
        if not self.transactions:
            return 0.0
        return max(tr.period for tr in self.transactions) * max(
            4, len(self.transactions)
        )

    def copy_with_jitters_reset(self) -> "TransactionSystem":
        """Deep-copy with all offsets/jitters zeroed (analysis start state)."""
        new_txns = [
            Transaction(
                period=tr.period,
                deadline=tr.deadline,
                name=tr.name,
                meta=dict(tr.meta),
                tasks=[t.with_updates(offset=0.0, jitter=0.0) for t in tr.tasks],
            )
            for tr in self.transactions
        ]
        return TransactionSystem(
            transactions=new_txns,
            platforms=list(self.platforms),
            name=self.name,
            meta=dict(self.meta),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransactionSystem({self.name or 'unnamed'}: "
            f"{len(self.transactions)} transactions, "
            f"{len(self.platforms)} platforms, {self.total_tasks()} tasks)"
        )
