"""The task model :math:`\\tau_{i,j}` of Section 2.4.

A task is a piece of sequential code belonging to a transaction.  Its
parameters are the classical holistic-analysis parameters (Tindell & Clark
1994; Palencia & Gonzalez Harbour 1998) extended with the *mapping variable*
``platform`` selecting the abstract computing platform the task executes on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.util.validation import check_non_negative, check_positive

__all__ = ["Task"]


@dataclass
class Task:
    """One task :math:`\\tau_{i,j}` of a transaction.

    Parameters
    ----------
    wcet:
        Worst-case execution time :math:`C_{i,j}` in *cycles* (platform-
        independent work; the platform rate :math:`\\alpha` converts cycles
        to time).
    platform:
        Index :math:`s_{i,j}` of the abstract platform in the owning
        :class:`~repro.model.system.TransactionSystem`.
    priority:
        Fixed priority :math:`p_{i,j}`; **greater value means higher
        priority**, as in the paper.
    bcet:
        Best-case execution time :math:`C^{best}_{i,j}`; defaults to
        ``wcet`` (no best-case information).
    offset:
        Static offset :math:`\\phi_{i,j}` from the transaction activation.
        May exceed the transaction period; analyses reduce it modulo the
        period.  For derived (dynamic-offset) systems this field is managed
        by the analysis and equals the best-case response time of the
        predecessor.
    jitter:
        Activation jitter :math:`J_{i,j}`: the task is released anywhere in
        ``[offset, offset + jitter]`` after the transaction activation.  May
        exceed the period.
    blocking:
        Blocking term :math:`B_{i,j}` from lower-priority non-preemptable
        sections, in *time* units (i.e. already scaled by the platform
        rate -- it enters Eq. 13 additively next to :math:`\\Delta`).  The
        paper carries the term without computing it;
        :mod:`repro.analysis.blocking` fills it from a resource
        specification under SRP/PCP or non-preemptive protocols.
    name:
        Optional human-readable label used in reports.
    meta:
        Free-form metadata (the component transform records the originating
        component/thread/method here).
    """

    wcet: float
    platform: int
    priority: int
    bcet: float | None = None
    offset: float = 0.0
    jitter: float = 0.0
    blocking: float = 0.0
    name: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.wcet, "wcet")
        if self.bcet is None:
            self.bcet = float(self.wcet)
        check_non_negative(self.bcet, "bcet")
        if self.bcet > self.wcet + 1e-12:
            raise ValueError(
                f"bcet ({self.bcet!r}) must not exceed wcet ({self.wcet!r})"
            )
        if not isinstance(self.platform, int) or isinstance(self.platform, bool):
            raise TypeError(f"platform must be an int index, got {self.platform!r}")
        if self.platform < 0:
            raise ValueError(f"platform index must be >= 0, got {self.platform!r}")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise TypeError(f"priority must be an int, got {self.priority!r}")
        check_non_negative(self.offset, "offset")
        check_non_negative(self.jitter, "jitter")
        check_non_negative(self.blocking, "blocking")
        self.wcet = float(self.wcet)
        self.bcet = float(self.bcet)
        self.offset = float(self.offset)
        self.jitter = float(self.jitter)
        self.blocking = float(self.blocking)

    def with_updates(self, **changes: Any) -> "Task":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    @classmethod
    def unchecked(
        cls,
        *,
        wcet: float,
        platform: int,
        priority: int,
        bcet: float,
        offset: float = 0.0,
        jitter: float = 0.0,
        blocking: float = 0.0,
        name: str = "",
    ) -> "Task":
        """Construct without ``__post_init__`` validation.

        For generators that produce values valid by construction and build
        tasks by the hundred thousand; every field must already be of its
        final type (floats coerced, ``bcet`` resolved).
        """
        new = object.__new__(cls)
        new.wcet = wcet
        new.platform = platform
        new.priority = priority
        new.bcet = bcet
        new.offset = offset
        new.jitter = jitter
        new.blocking = blocking
        new.name = name
        new.meta = {}
        return new

    def unvalidated_copy(self) -> "Task":
        """Field-for-field copy that skips ``__post_init__`` validation.

        For hot paths cloning a system that was already validated on
        construction (the holistic driver clones every input system to keep
        it pristine); the copy owns its ``meta`` dict.
        """
        new = object.__new__(Task)
        new.__dict__.update(self.__dict__)
        new.meta = dict(self.meta)
        return new

    def scaled_wcet(self, rate: float) -> float:
        """Execution time on a platform of rate *rate*: :math:`C/\\alpha`."""
        if rate <= 0:
            raise ValueError(f"platform rate must be positive, got {rate!r}")
        return self.wcet / rate

    def scaled_bcet(
        self, rate: float, burstiness: float = 0.0, *, sound: bool = False
    ) -> float:
        """Best-case execution time on an abstract platform.

        With ``sound=False`` (default) this is the *published* term
        :math:`\\max(0, C^{best}/\\alpha - \\beta)` -- the formula the
        paper's Table 1 offsets are computed with.

        With ``sound=True`` it is the bound implied by the supply envelope
        :math:`Z^{max}(t) \\le \\beta + \\alpha t`: completion no earlier
        than :math:`\\max(0, (C^{best} - \\beta)/\\alpha)`.  Since
        :math:`\\beta/\\alpha \\ge \\beta` for :math:`\\alpha \\le 1`, the
        published formula can *overestimate* the best case (and is therefore
        not a valid lower bound against compliant supply patterns); see
        EXPERIMENTS.md for the discussion and a demonstrating simulation.
        """
        if rate <= 0:
            raise ValueError(f"platform rate must be positive, got {rate!r}")
        if burstiness < 0:
            raise ValueError(f"burstiness must be >= 0, got {burstiness!r}")
        if sound:
            return max(0.0, (self.bcet - burstiness) / rate)
        return max(0.0, self.bcet / rate - burstiness)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "task"
        return (
            f"{label}(C={self.wcet}, Cb={self.bcet}, phi={self.offset}, "
            f"J={self.jitter}, p={self.priority}, Pi={self.platform})"
        )
