"""Serialization of transaction systems to/from plain dictionaries and JSON.

Systems survive a round trip exactly (up to float representation); platform
objects are serialized by mechanism so a loaded system analyzes *and*
simulates identically.
"""

from repro.io.spec import (
    system_from_dict,
    system_to_dict,
    load_system,
    save_system,
)
from repro.io.components_spec import (
    assembly_from_dict,
    assembly_to_dict,
    component_from_dict,
    component_to_dict,
    load_assembly,
    save_assembly,
)

__all__ = [
    "system_to_dict",
    "system_from_dict",
    "save_system",
    "load_system",
    "component_to_dict",
    "component_from_dict",
    "assembly_to_dict",
    "assembly_from_dict",
    "save_assembly",
    "load_assembly",
]
