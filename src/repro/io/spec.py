"""Dictionary/JSON codecs for transaction systems.

The schema is versioned (``"version": 1``) and intentionally flat::

    {
      "version": 1,
      "name": "...",
      "platforms": [{"kind": "linear", "rate": 0.4, ...}, ...],
      "transactions": [
        {"period": 50.0, "deadline": 50.0, "name": "Gamma1",
         "tasks": [{"wcet": 1.0, "bcet": 0.8, "platform": 2,
                    "priority": 2, "offset": 0.0, "jitter": 0.0,
                    "blocking": 0.0, "name": "init"}, ...]},
        ...
      ]
    }

Platform kinds: ``linear``, ``dedicated``, ``periodic_server``,
``partition``, ``pfair``, ``reservation`` (with a ``policy``), ``network``.
Unknown kinds raise with the offending value in the message.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.model.system import TransactionSystem
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.platforms.base import AbstractPlatform
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform
from repro.platforms.network import NetworkLinkPlatform
from repro.platforms.partition import StaticPartitionPlatform
from repro.platforms.periodic_server import PeriodicServer
from repro.platforms.pfair import PFairPlatform
from repro.platforms.servers import ReservationServer

__all__ = ["system_to_dict", "system_from_dict", "save_system", "load_system"]

SCHEMA_VERSION = 1


def _platform_to_dict(p: AbstractPlatform) -> dict[str, Any]:
    name = getattr(p, "name", "")
    if isinstance(p, ReservationServer):
        return {
            "kind": "reservation",
            "budget": p.budget,
            "period": p.period,
            "policy": p.policy,
            "name": name,
        }
    if isinstance(p, PeriodicServer):
        return {"kind": "periodic_server", "budget": p.budget, "period": p.period, "name": name}
    if isinstance(p, StaticPartitionPlatform):
        return {
            "kind": "partition",
            "slots": [[s, l] for s, l in p.slots],
            "cycle": p.cycle,
            "name": name,
        }
    if isinstance(p, PFairPlatform):
        return {"kind": "pfair", "weight": p.weight, "quantum": p.quantum, "name": name}
    if isinstance(p, NetworkLinkPlatform):
        return {
            "kind": "network",
            "bandwidth": p.bandwidth,
            "share": p.share,
            "delay": p.delay,
            "burstiness": p.burstiness,
            "frame_overhead": p.frame_overhead,
            "name": name,
        }
    if isinstance(p, DedicatedPlatform):
        return {"kind": "dedicated", "speed": p.rate, "name": name}
    if isinstance(p, LinearSupplyPlatform):
        return {
            "kind": "linear",
            "rate": p.rate,
            "delay": p.delay,
            "burstiness": p.burstiness,
            "name": name,
        }
    raise TypeError(f"cannot serialize platform of type {type(p).__name__}")


def _platform_from_dict(d: dict[str, Any]) -> AbstractPlatform:
    kind = d.get("kind")
    name = d.get("name", "")
    if kind == "linear":
        return LinearSupplyPlatform(
            rate=d["rate"],
            delay=d.get("delay", 0.0),
            burstiness=d.get("burstiness", 0.0),
            name=name,
            allow_superunit=True,
        )
    if kind == "dedicated":
        return DedicatedPlatform(speed=d.get("speed", 1.0), name=name)
    if kind == "periodic_server":
        return PeriodicServer(budget=d["budget"], period=d["period"], name=name)
    if kind == "reservation":
        from repro.platforms.servers import CBSServer, DeferrableServer, PollingServer

        cls = {
            "polling": PollingServer,
            "deferrable": DeferrableServer,
            "cbs": CBSServer,
        }.get(d["policy"])
        if cls is None:
            return ReservationServer(
                budget=d["budget"], period=d["period"], policy=d["policy"], name=name
            )
        return cls(budget=d["budget"], period=d["period"], name=name)
    if kind == "partition":
        return StaticPartitionPlatform(
            slots=[(s, l) for s, l in d["slots"]], cycle=d["cycle"], name=name
        )
    if kind == "pfair":
        return PFairPlatform(weight=d["weight"], quantum=d.get("quantum", 1.0), name=name)
    if kind == "network":
        link = NetworkLinkPlatform(
            bandwidth=d["bandwidth"],
            share=d.get("share", 1.0),
            arbitration_delay=d.get("delay", 0.0),
            burst_credit=d.get("burstiness", 0.0),
            frame_overhead=d.get("frame_overhead", 0.0),
            name=name,
        )
        return link
    raise ValueError(f"unknown platform kind {kind!r}")


def system_to_dict(system: TransactionSystem) -> dict[str, Any]:
    """Serialize *system* to a JSON-compatible dictionary."""
    return {
        "version": SCHEMA_VERSION,
        "name": system.name,
        "platforms": [_platform_to_dict(p) for p in system.platforms],
        "transactions": [
            {
                "period": tr.period,
                "deadline": tr.deadline,
                "name": tr.name,
                "tasks": [
                    {
                        "wcet": t.wcet,
                        "bcet": t.bcet,
                        "platform": t.platform,
                        "priority": t.priority,
                        "offset": t.offset,
                        "jitter": t.jitter,
                        "blocking": t.blocking,
                        "name": t.name,
                    }
                    for t in tr.tasks
                ],
            }
            for tr in system.transactions
        ],
    }


def system_from_dict(data: dict[str, Any]) -> TransactionSystem:
    """Rebuild a system from :func:`system_to_dict` output."""
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    platforms = [_platform_from_dict(p) for p in data["platforms"]]
    transactions = []
    for tr in data["transactions"]:
        tasks = [
            Task(
                wcet=t["wcet"],
                bcet=t.get("bcet"),
                platform=t["platform"],
                priority=t["priority"],
                offset=t.get("offset", 0.0),
                jitter=t.get("jitter", 0.0),
                blocking=t.get("blocking", 0.0),
                name=t.get("name", ""),
            )
            for t in tr["tasks"]
        ]
        transactions.append(
            Transaction(
                period=tr["period"],
                deadline=tr.get("deadline"),
                name=tr.get("name", ""),
                tasks=tasks,
            )
        )
    return TransactionSystem(
        transactions=transactions, platforms=platforms, name=data.get("name", "")
    )


def save_system(system: TransactionSystem, path: str | Path) -> Path:
    """Write *system* as JSON to *path* (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(system_to_dict(system), indent=2))
    return path


def load_system(path: str | Path) -> TransactionSystem:
    """Load a system previously written by :func:`save_system`."""
    return system_from_dict(json.loads(Path(path).read_text()))
