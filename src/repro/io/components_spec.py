"""Dictionary/JSON codecs for components and assemblies.

Lets a complete component-based design live in one JSON document -- the
component classes (Figures 1-2 style), the instances/bindings/placements of
Section 2.2.1 and the platforms -- from which the CLI's ``derive`` command
produces an analyzable transaction-system file.

Schema sketch (``"version": 1``)::

    {
      "version": 1,
      "name": "...",
      "components": {
        "SensorReading": {
          "provided": [{"name": "read", "mit": 50.0}],
          "required": [],
          "scheduler": "fixed_priority",
          "threads": [
            {"kind": "periodic", "name": "poll", "period": 15.0,
             "deadline": 15.0, "priority": 2,
             "body": [{"kind": "task", "name": "acquire",
                        "wcet": 1.0, "bcet": 0.25}]},
            {"kind": "event", "name": "serve", "realizes": "read",
             "priority": 1,
             "body": [{"kind": "task", "name": "serve_read", "wcet": 1.0}]}
          ]
        }
      },
      "instances": {"Sensor1": "SensorReading", ...},
      "platforms": [...same as the system schema...],
      "placements": {"Sensor1": "Pi1", ...},
      "bindings": [
        {"caller": "Integrator", "required": "readSensor1",
         "callee": "Sensor1", "provided": "read",
         "request": {"payload": 2.0, "priority": 2},   # optional
         "reply": {"payload": 6.0, "priority": 2},     # optional
         "network": "bus"}                             # optional
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.components.assembly import SystemAssembly
from repro.components.component import Component
from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.scheduler import (
    EDFScheduler,
    FixedPriorityScheduler,
    LocalScheduler,
)
from repro.components.threads import CallStep, EventThread, PeriodicThread, TaskStep
from repro.io.spec import _platform_from_dict, _platform_to_dict
from repro.platforms.network import Message

__all__ = [
    "component_to_dict",
    "component_from_dict",
    "assembly_to_dict",
    "assembly_from_dict",
    "save_assembly",
    "load_assembly",
]

SCHEMA_VERSION = 1


def _step_to_dict(step) -> dict[str, Any]:
    if isinstance(step, TaskStep):
        out: dict[str, Any] = {"kind": "task", "name": step.name, "wcet": step.wcet}
        if step.bcet is not None:
            out["bcet"] = step.bcet
        if step.priority is not None:
            out["priority"] = step.priority
        return out
    if isinstance(step, CallStep):
        return {"kind": "call", "method": step.method}
    raise TypeError(f"unknown step type {type(step).__name__}")


def _step_from_dict(d: dict[str, Any]):
    kind = d.get("kind")
    if kind == "task":
        return TaskStep(
            name=d["name"],
            wcet=d["wcet"],
            bcet=d.get("bcet"),
            priority=d.get("priority"),
        )
    if kind == "call":
        return CallStep(method=d["method"])
    raise ValueError(f"unknown step kind {kind!r}")


def _thread_to_dict(thread) -> dict[str, Any]:
    base = {
        "name": thread.name,
        "priority": thread.priority,
        "body": [_step_to_dict(s) for s in thread.body],
    }
    if isinstance(thread, PeriodicThread):
        return {"kind": "periodic", "period": thread.period,
                "deadline": thread.deadline, **base}
    if isinstance(thread, EventThread):
        return {"kind": "event", "realizes": thread.realizes, **base}
    raise TypeError(f"unknown thread type {type(thread).__name__}")


def _thread_from_dict(d: dict[str, Any]):
    kind = d.get("kind")
    body = tuple(_step_from_dict(s) for s in d.get("body", []))
    if kind == "periodic":
        return PeriodicThread(
            name=d["name"], priority=d["priority"], period=d["period"],
            deadline=d.get("deadline"), body=body,
        )
    if kind == "event":
        return EventThread(
            name=d["name"], priority=d["priority"], realizes=d["realizes"],
            body=body,
        )
    raise ValueError(f"unknown thread kind {kind!r}")


def _scheduler_to_str(s: LocalScheduler) -> str:
    return s.policy


def _scheduler_from_str(policy: str) -> LocalScheduler:
    if policy == "fixed_priority":
        return FixedPriorityScheduler()
    if policy == "edf":
        return EDFScheduler()
    raise ValueError(f"unknown scheduler policy {policy!r}")


def component_to_dict(component: Component) -> dict[str, Any]:
    """Serialize one component class."""
    return {
        "provided": [
            {"name": m.name, "mit": m.mit, "parameters": list(m.parameters)}
            for m in component.provided
        ],
        "required": [
            {"name": m.name, "mit": m.mit, "parameters": list(m.parameters)}
            for m in component.required
        ],
        "scheduler": _scheduler_to_str(component.scheduler),
        "threads": [_thread_to_dict(t) for t in component.threads],
    }


def component_from_dict(name: str, d: dict[str, Any]) -> Component:
    """Rebuild a component class from :func:`component_to_dict` output."""
    return Component(
        name=name,
        provided=[
            ProvidedMethod(m["name"], mit=m["mit"],
                           parameters=tuple(m.get("parameters", ())))
            for m in d.get("provided", [])
        ],
        required=[
            RequiredMethod(m["name"], mit=m["mit"],
                           parameters=tuple(m.get("parameters", ())))
            for m in d.get("required", [])
        ],
        scheduler=_scheduler_from_str(d.get("scheduler", "fixed_priority")),
        threads=[_thread_from_dict(t) for t in d.get("threads", [])],
    )


def _message_to_dict(m: Message | None) -> dict[str, Any] | None:
    if m is None:
        return None
    return {
        "payload": m.payload,
        "payload_best": m.payload_best,
        "priority": m.priority,
        "name": m.name,
    }


def _message_from_dict(d: dict[str, Any] | None) -> Message | None:
    if d is None:
        return None
    return Message(
        payload=d["payload"],
        payload_best=d.get("payload_best"),
        priority=d.get("priority", 1),
        name=d.get("name", ""),
    )


def assembly_to_dict(assembly: SystemAssembly) -> dict[str, Any]:
    """Serialize a full assembly (deduplicating shared component classes)."""
    classes: dict[str, dict[str, Any]] = {}
    instances: dict[str, str] = {}
    for iname, comp in assembly.instances.items():
        serialized = component_to_dict(comp)
        cname = comp.name
        if cname in classes and classes[cname] != serialized:
            # Same class name, different content: qualify by instance.
            cname = f"{comp.name}@{iname}"
        classes[cname] = serialized
        instances[iname] = cname
    return {
        "version": SCHEMA_VERSION,
        "name": assembly.name,
        "components": classes,
        "instances": instances,
        "platforms": [
            {"platform_name": n, **_platform_to_dict(assembly._platforms[n])}
            for n in assembly.platform_names
        ],
        "placements": dict(assembly.placements),
        "bindings": [
            {
                "caller": b.caller,
                "required": b.required,
                "callee": b.callee,
                "provided": b.provided,
                "request": _message_to_dict(b.request),
                "reply": _message_to_dict(b.reply),
                "network": b.network,
            }
            for b in assembly.bindings.values()
        ],
    }


def assembly_from_dict(data: dict[str, Any]) -> SystemAssembly:
    """Rebuild an assembly from :func:`assembly_to_dict` output."""
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported assembly schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    assembly = SystemAssembly(name=data.get("name", ""))
    classes = {
        cname: component_from_dict(cname.split("@")[0], cdict)
        for cname, cdict in data.get("components", {}).items()
    }
    for iname, cname in data.get("instances", {}).items():
        if cname not in classes:
            raise ValueError(f"instance {iname!r} references unknown class {cname!r}")
        assembly.add_instance(iname, classes[cname])
    for p in data.get("platforms", []):
        assembly.add_platform(p["platform_name"], _platform_from_dict(p))
    for iname, pname in data.get("placements", {}).items():
        assembly.place(iname, platform=pname)
    for b in data.get("bindings", []):
        assembly.bind(
            b["caller"], b["required"], b["callee"], b["provided"],
            request=_message_from_dict(b.get("request")),
            reply=_message_from_dict(b.get("reply")),
            network=b.get("network"),
        )
    return assembly


def save_assembly(assembly: SystemAssembly, path: str | Path) -> Path:
    """Write *assembly* as JSON to *path* (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(assembly_to_dict(assembly), indent=2))
    return path


def load_assembly(path: str | Path) -> SystemAssembly:
    """Load an assembly previously written by :func:`save_assembly`."""
    return assembly_from_dict(json.loads(Path(path).read_text()))
