"""repro -- hierarchical scheduling for component-based real-time systems.

A complete, from-scratch reproduction of

    J.L. Lorente, G. Lipari, E. Bini,
    "A Hierarchical Scheduling Model for Component-Based Real-Time Systems",
    IPDPS/WPDRTS 2006.

The library provides the paper's component model, abstract computing
platforms with supply-function algebra, the component-to-transaction
transform, the generalized holistic schedulability analysis (exact and
reduced), a discrete-event simulator for validation, workload generators,
and the platform-parameter optimization sketched as future work.

Quickstart
----------
>>> import repro
>>> system = repro.paper.sensor_fusion_system()
>>> result = repro.analyze(system, trace=True)
>>> result.schedulable
True
>>> round(result.wcrt(0, 3), 3)   # end-to-end response of Gamma_1
31.0
"""

from repro import analysis, components, io, model, opt, platforms, util, viz
from repro import paper
from repro.analysis import AnalysisConfig, SystemAnalysis, analyze, is_schedulable
from repro.components import Component, SystemAssembly
from repro.model import Task, Transaction, TransactionSystem
from repro.platforms import (
    DedicatedPlatform,
    LinearSupplyPlatform,
    PeriodicServer,
)

# The analysis core runs NumPy-free (the interference kernel degrades to
# its scalar reference closures); the simulator, the random-system
# generators and the campaign engine genuinely need NumPy (RNG streams,
# SeedSequence cell seeds).  Gating them keeps `import repro` -- and the
# whole analysis surface -- usable on minimal installs, which the no-NumPy
# CI leg pins.  The gate probes NumPy itself rather than wrapping the
# subpackage imports in try/except: a genuine first-party ImportError
# inside batch/gen/sim must propagate, not masquerade as "NumPy missing".
try:
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    _HAVE_NUMPY = False

if _HAVE_NUMPY:
    from repro import batch, gen, sim
    from repro.sim import simulate, validate_against_analysis
else:  # pragma: no cover - exercised by the no-NumPy CI leg
    batch = gen = sim = None  # type: ignore[assignment]
    simulate = validate_against_analysis = None  # type: ignore[assignment]

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "batch",
    "components",
    "gen",
    "io",
    "model",
    "opt",
    "platforms",
    "sim",
    "util",
    "viz",
    "paper",
    "Component",
    "SystemAssembly",
    "simulate",
    "validate_against_analysis",
    "AnalysisConfig",
    "SystemAnalysis",
    "analyze",
    "is_schedulable",
    "Task",
    "Transaction",
    "TransactionSystem",
    "DedicatedPlatform",
    "LinearSupplyPlatform",
    "PeriodicServer",
    "__version__",
]
