"""repro -- hierarchical scheduling for component-based real-time systems.

A complete, from-scratch reproduction of

    J.L. Lorente, G. Lipari, E. Bini,
    "A Hierarchical Scheduling Model for Component-Based Real-Time Systems",
    IPDPS/WPDRTS 2006.

The library provides the paper's component model, abstract computing
platforms with supply-function algebra, the component-to-transaction
transform, the generalized holistic schedulability analysis (exact and
reduced), a discrete-event simulator for validation, workload generators,
and the platform-parameter optimization sketched as future work.

Quickstart
----------
>>> import repro
>>> system = repro.paper.sensor_fusion_system()
>>> result = repro.analyze(system, trace=True)
>>> result.schedulable
True
>>> round(result.wcrt(0, 3), 3)   # end-to-end response of Gamma_1
31.0
"""

from repro import analysis, batch, components, gen, io, model, opt, platforms, sim, util, viz
from repro import paper
from repro.analysis import AnalysisConfig, SystemAnalysis, analyze, is_schedulable
from repro.components import Component, SystemAssembly
from repro.model import Task, Transaction, TransactionSystem
from repro.platforms import (
    DedicatedPlatform,
    LinearSupplyPlatform,
    PeriodicServer,
)
from repro.sim import simulate, validate_against_analysis

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "batch",
    "components",
    "gen",
    "io",
    "model",
    "opt",
    "platforms",
    "sim",
    "util",
    "viz",
    "paper",
    "Component",
    "SystemAssembly",
    "simulate",
    "validate_against_analysis",
    "AnalysisConfig",
    "SystemAnalysis",
    "analyze",
    "is_schedulable",
    "Task",
    "Transaction",
    "TransactionSystem",
    "DedicatedPlatform",
    "LinearSupplyPlatform",
    "PeriodicServer",
    "__version__",
]
