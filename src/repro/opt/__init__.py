"""Platform-parameter optimization -- the paper's stated future work.

Section 5: "the parameters of the abstract computing platform ... could be
computed depending on the actual requirement of a component.  This requires
an optimization method to assign the parameters (alpha, beta, Delta) to each
abstract platform.  The search for the optimal platform parameters would
allow a better utilization of the resources."

This package implements that search:

* :mod:`repro.opt.platform_design` -- coordinate-descent minimization of
  total reserved bandwidth (sum of rates) subject to schedulability.
* :mod:`repro.opt.server_params` -- the mapping between linear triples and
  concrete periodic-server parameters :math:`(Q, P)`.
* :mod:`repro.opt.pareto` -- rate/delay trade-off frontiers.
"""

from repro.opt.interfaces import (
    ComponentInterface,
    Composition,
    InterfacePoint,
    component_interface,
    compose_interfaces,
)
from repro.opt.platform_design import DesignResult, minimize_bandwidth
from repro.opt.server_params import (
    server_for_triple,
    triple_for_server,
)
from repro.opt.pareto import pareto_front, rate_delay_frontier

__all__ = [
    "ComponentInterface",
    "Composition",
    "InterfacePoint",
    "component_interface",
    "compose_interfaces",
    "DesignResult",
    "minimize_bandwidth",
    "server_for_triple",
    "triple_for_server",
    "pareto_front",
    "rate_delay_frontier",
]
