"""Component interface generation and composition (Lipari & Bini style).

The methodology the paper builds on ([7]: "A methodology for designing
hierarchical scheduling systems") abstracts each component by the region of
platform parameters :math:`(\\alpha, \\Delta)` under which its local task
set is schedulable -- the component's *temporal interface*.  Components are
then composed by picking one operating point per component such that the
points are jointly realizable on the physical resource.

This module computes

* :func:`component_interface` -- the boundary of the feasible region of one
  component (minimum rate as a function of the tolerated delay), using the
  per-component tests of :mod:`repro.analysis.compositional`;
* :func:`compose_interfaces` -- a feasibility check + operating-point
  selection for several components sharing one physical processor, under
  the periodic-server realization (each point :math:`(\\alpha, \\Delta)`
  costs bandwidth :math:`\\alpha`; points are realizable iff
  :math:`\\sum \\alpha \\le 1` and every selected server keeps its delay).

The full-system search of :mod:`repro.opt.platform_design` subsumes this
when transactions *interact*; interface generation is the modular
alternative the component market story needs: a component vendor publishes
the curve, an integrator composes curves without seeing task internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.compositional import (
    LocalTask,
    edf_component_schedulable,
    fp_component_schedulable,
)
from repro.analysis.sensitivity import bisect_monotone
from repro.platforms.linear import LinearSupplyPlatform

__all__ = ["InterfacePoint", "ComponentInterface", "component_interface",
           "compose_interfaces"]


@dataclass(frozen=True)
class InterfacePoint:
    """One operating point of a component's temporal interface."""

    delay: float
    rate: float

    @property
    def feasible(self) -> bool:
        return self.rate <= 1.0


@dataclass
class ComponentInterface:
    """The feasible (rate, delay) boundary of one component.

    ``points`` are sorted by delay; a point with ``rate = inf`` marks a
    delay no rate ``<= 1`` can compensate.
    """

    name: str
    points: list[InterfacePoint]
    utilization: float

    def min_rate_at(self, delay: float) -> float:
        """Minimum feasible rate at *delay* (conservative interpolation).

        Between computed points the *larger* neighbouring rate is returned
        (the curve is non-decreasing in delay, so rounding toward the next
        computed point is safe).
        """
        eligible = [p for p in self.points if p.delay >= delay]
        if not eligible:
            return float("inf")
        return min(p.rate for p in eligible)


def component_interface(
    tasks: Sequence[LocalTask],
    delays: Sequence[float],
    *,
    scheduler: str = "fp",
    name: str = "",
    rate_tol: float = 1e-3,
) -> ComponentInterface:
    """Compute the minimum feasible rate of a component per tolerated delay.

    Parameters
    ----------
    tasks:
        The component's local (independent) task set.
    delays:
        Delay grid to evaluate; the curve is non-decreasing in delay.
    scheduler:
        Local scheduler: ``"fp"`` (fixed priority, the paper's choice) or
        ``"edf"`` (the extension the paper mentions).
    """
    if scheduler not in ("fp", "edf"):
        raise ValueError(f"scheduler must be 'fp' or 'edf', got {scheduler!r}")
    test = fp_component_schedulable if scheduler == "fp" else edf_component_schedulable
    task_list = list(tasks)
    util = sum(t.wcet / t.period for t in task_list)

    points: list[InterfacePoint] = []
    for delay in sorted(delays):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")

        def ok(rate: float, delay=delay) -> bool:
            platform = LinearSupplyPlatform(rate, delay, 0.0)
            return test(task_list, platform)

        if not ok(1.0):
            points.append(InterfacePoint(delay=float(delay), rate=float("inf")))
            continue
        lo = max(util, 1e-6)
        flip = bisect_monotone(
            lambda y: ok(1.0 + lo - y), lo, 1.0, tol=rate_tol
        )
        points.append(InterfacePoint(delay=float(delay), rate=1.0 + lo - flip))
    return ComponentInterface(name=name, points=points, utilization=util)


@dataclass
class Composition:
    """Outcome of composing interfaces on one physical processor."""

    feasible: bool
    #: Selected operating point per component (index-aligned); empty when
    #: infeasible.
    selection: list[InterfacePoint]
    total_bandwidth: float


def compose_interfaces(
    interfaces: Sequence[ComponentInterface],
    *,
    delays: Sequence[float] | None = None,
) -> Composition:
    """Select one operating point per component with total bandwidth <= 1.

    Strategy: for each component independently take the cheapest feasible
    point (largest tolerable delay with finite rate gives the minimum rate
    since the curve is non-decreasing... in *rate* as delay shrinks); then
    check the bandwidth budget.  Because each component's bandwidth demand
    is independent of the others' choices under the reservation model, the
    component-wise minimum is globally optimal -- no search needed.
    """
    selection: list[InterfacePoint] = []
    for iface in interfaces:
        finite = [p for p in iface.points if p.rate != float("inf")]
        if delays is not None:
            finite = [p for p in finite if p.delay in set(delays)]
        if not finite:
            return Composition(feasible=False, selection=[], total_bandwidth=float("inf"))
        best = min(finite, key=lambda p: (p.rate, -p.delay))
        selection.append(best)
    total = sum(p.rate for p in selection)
    return Composition(
        feasible=total <= 1.0 + 1e-9,
        selection=selection if total <= 1.0 + 1e-9 else selection,
        total_bandwidth=total,
    )
