"""Mapping between linear triples and periodic-server parameters.

A periodic server :math:`(Q, P)` has the triple
:math:`(\\alpha, \\Delta, \\beta) = (Q/P,\\ 2(P-Q),\\ 2Q(P-Q)/P)`
(:mod:`repro.platforms.periodic_server`).  Inverting the first two gives the
server realizing a requested rate/delay pair:

.. math:: P = \\frac{\\Delta}{2(1 - \\alpha)}, \\qquad Q = \\alpha P .

The burstiness is then determined -- a designer cannot pick all three
independently with this mechanism, which is why
:func:`server_for_triple` only consumes ``rate`` and ``delay``.
"""

from __future__ import annotations

from repro.platforms.periodic_server import PeriodicServer

__all__ = ["server_for_triple", "triple_for_server"]


def server_for_triple(rate: float, delay: float, *, name: str = "") -> PeriodicServer:
    """The periodic server whose rate/delay equal the requested pair.

    Raises :class:`ValueError` for ``rate >= 1`` (a share of a single
    processor must be fractional for the blackout to be positive) or
    non-positive delay (no finite period realizes an instantaneous share --
    use a dedicated processor instead).
    """
    if not (0.0 < rate < 1.0):
        raise ValueError(f"rate must lie in (0, 1), got {rate!r}")
    if delay <= 0.0:
        raise ValueError(
            f"delay must be positive to synthesize a server, got {delay!r}"
        )
    period = delay / (2.0 * (1.0 - rate))
    return PeriodicServer(budget=rate * period, period=period, name=name)


def triple_for_server(server: PeriodicServer) -> tuple[float, float, float]:
    """The linear triple of a periodic server (delegates to the platform)."""
    return server.triple()
