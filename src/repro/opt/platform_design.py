"""Bandwidth-minimal platform assignment (the paper's future work, Sec. 5).

Given a transaction system and a *delay budget* per platform, find the
per-platform rates minimizing the total reserved bandwidth
:math:`\\sum_m \\alpha_m` subject to schedulability.  Response times are
monotone in every rate, so per-coordinate feasibility is bisectable; the
coupling between platforms (through the Eq. 18 jitters) is handled by
cyclic coordinate descent, which converges because the objective is bounded
below and every sweep is non-increasing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interfaces import AnalysisConfig
from repro.analysis.schedulability import analyze
from repro.analysis.sensitivity import bisect_monotone
from repro.model.system import TransactionSystem
from repro.platforms.linear import LinearSupplyPlatform

__all__ = ["DesignResult", "minimize_bandwidth"]


@dataclass
class DesignResult:
    """Outcome of :func:`minimize_bandwidth`."""

    #: Designed platforms (linear triples), index-aligned with the system.
    platforms: list[LinearSupplyPlatform]
    #: Total reserved bandwidth (sum of rates) of the design.
    total_bandwidth: float
    #: Bandwidth of the starting design, for the savings headline.
    initial_bandwidth: float
    #: Whether the designed system is schedulable (it is unless infeasible).
    feasible: bool
    #: Number of full coordinate sweeps performed.
    sweeps: int

    @property
    def savings(self) -> float:
        """Relative bandwidth saved versus the starting design."""
        if self.initial_bandwidth == 0:
            return 0.0
        return 1.0 - self.total_bandwidth / self.initial_bandwidth

    def designed_system(self, system: TransactionSystem) -> TransactionSystem:
        """The input system re-hosted on the designed platforms."""
        return TransactionSystem(
            transactions=system.transactions,
            platforms=list(self.platforms),
            name=(system.name + "-designed") if system.name else "designed",
        )


def minimize_bandwidth(
    system: TransactionSystem,
    *,
    delays: list[float] | None = None,
    bursts: list[float] | None = None,
    config: AnalysisConfig | None = None,
    rate_tol: float = 1e-3,
    max_sweeps: int = 10,
) -> DesignResult:
    """Minimize total reserved bandwidth subject to schedulability.

    Parameters
    ----------
    system:
        The workload.  Its current platforms provide the starting rates;
        utilization lower-bounds prune the search.
    delays, bursts:
        Per-platform delay/burstiness to design for; default to the current
        platforms' values.
    rate_tol:
        Bisection tolerance on each rate.
    max_sweeps:
        Cap on coordinate-descent sweeps; convergence is typically 2-3.

    Returns
    -------
    DesignResult
        ``feasible=False`` (with the starting platforms) when even the
        starting design is unschedulable -- rates are never *increased*
        beyond their starting values.
    """
    m = len(system.platforms)
    delays = delays if delays is not None else [p.delay for p in system.platforms]
    bursts = bursts if bursts is not None else [p.burstiness for p in system.platforms]
    if len(delays) != m or len(bursts) != m:
        raise ValueError("delays/bursts must have one entry per platform")

    def make(rates: list[float]) -> list[LinearSupplyPlatform]:
        return [
            LinearSupplyPlatform(
                rate=r, delay=d, burstiness=b, name=f"Pi{k + 1}", allow_superunit=True
            )
            for k, (r, d, b) in enumerate(zip(rates, delays, bursts))
        ]

    def schedulable(rates: list[float]) -> bool:
        candidate = TransactionSystem(
            transactions=system.transactions,
            platforms=make(rates),
            name=system.name,
        )
        return analyze(candidate, config=config).schedulable

    rates = [p.rate for p in system.platforms]
    initial_bw = sum(rates)
    if not schedulable(rates):
        return DesignResult(
            platforms=make(rates),
            total_bandwidth=initial_bw,
            initial_bandwidth=initial_bw,
            feasible=False,
            sweeps=0,
        )

    # Utilization lower bound per platform: below it the long-run demand
    # alone exceeds the supply, so the bisection can start there.
    def util_floor(k: int) -> float:
        demand = sum(
            t.wcet / tr.period
            for tr in system.transactions
            for t in tr.tasks
            if t.platform == k
        )
        return demand

    sweeps = 0
    for sweep in range(max_sweeps):
        sweeps = sweep + 1
        improved = False
        for k in range(m):
            hi = rates[k]
            lo = max(util_floor(k), 1e-6)
            if hi - lo <= rate_tol:
                continue

            def feasible_at(x: float, k=k) -> bool:
                trial = list(rates)
                trial[k] = x
                return schedulable(trial)

            # predicate true near hi, false near lo: bisect on the flipped
            # axis to find the smallest feasible rate.
            best_flip = bisect_monotone(
                lambda y, k=k: feasible_at(hi + lo - y), lo, hi, tol=rate_tol
            )
            new_rate = hi + lo - best_flip
            if new_rate < rates[k] - rate_tol / 2:
                rates[k] = new_rate
                improved = True
        if not improved:
            break

    return DesignResult(
        platforms=make(rates),
        total_bandwidth=sum(rates),
        initial_bandwidth=initial_bw,
        feasible=True,
        sweeps=sweeps,
    )
