"""Rate/delay trade-off frontiers.

For a single platform, a longer supply delay (cheaper to implement -- larger
server period, fewer context switches) must be compensated by a higher rate
to keep the system schedulable.  :func:`rate_delay_frontier` traces that
curve; :func:`pareto_front` is the generic non-dominated filter.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.interfaces import AnalysisConfig
from repro.analysis.schedulability import analyze
from repro.analysis.sensitivity import bisect_monotone
from repro.model.system import TransactionSystem
from repro.platforms.linear import LinearSupplyPlatform

__all__ = ["pareto_front", "rate_delay_frontier"]


def pareto_front(
    points: Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Non-dominated subset of *points*, minimizing both coordinates.

    Returned sorted by the first coordinate.  A point dominates another when
    it is no larger in both coordinates and strictly smaller in one.
    """
    ordered = sorted(points)
    front: list[tuple[float, float]] = []
    best_y = float("inf")
    for x, y in ordered:
        if y < best_y - 1e-15:
            front.append((x, y))
            best_y = y
    return front


def rate_delay_frontier(
    system: TransactionSystem,
    platform_index: int,
    delays: Sequence[float],
    *,
    config: AnalysisConfig | None = None,
    rate_tol: float = 1e-3,
) -> list[tuple[float, float]]:
    """Minimum feasible rate of one platform as a function of its delay.

    Other platforms stay fixed.  Entries whose delay admits no feasible rate
    ``<= 1`` are reported with rate ``inf``.
    """
    base = system.platforms[platform_index]

    def schedulable(rate: float, delay: float) -> bool:
        platforms = list(system.platforms)
        platforms[platform_index] = LinearSupplyPlatform(
            rate=rate,
            delay=delay,
            burstiness=base.burstiness,
            allow_superunit=True,
        )
        candidate = TransactionSystem(
            transactions=system.transactions, platforms=platforms, name=system.name
        )
        return analyze(candidate, config=config).schedulable

    frontier: list[tuple[float, float]] = []
    for delay in delays:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        if not schedulable(1.0, delay):
            frontier.append((float(delay), float("inf")))
            continue
        lo = 1e-6
        flip = bisect_monotone(
            lambda y, d=delay: schedulable(1.0 + lo - y, d), lo, 1.0, tol=rate_tol
        )
        frontier.append((float(delay), 1.0 + lo - flip))
    return frontier
