"""Networks modeled as abstract computing platforms.

Section 2.2.1 of the paper: "we assume that the network is similar to a
computational node and messages are scheduled according to the network
scheduling policy", and Section 2.4: "messages can simply be modeled by
considering additional tasks that have to be executed on an abstract
computing platform that models the network".

:class:`NetworkLinkPlatform` maps a (possibly shared) link to the linear
supply model: the *cycles* of a message task are its bytes on the wire, the
*rate* is the bandwidth share granted to the traffic class, the *delay*
aggregates arbitration blackout plus propagation, and the *burstiness*
captures any credit-based head start.  :func:`message_to_task` converts a
:class:`Message` into a :class:`~repro.model.task.Task` ready to be spliced
into a transaction by the component transform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.model.task import Task
from repro.platforms.linear import LinearSupplyPlatform
from repro.util.validation import check_non_negative, check_positive

__all__ = ["NetworkLinkPlatform", "Message", "message_to_task"]


class NetworkLinkPlatform(LinearSupplyPlatform):
    """A network link (or a TDM share of one) as an abstract platform.

    Parameters
    ----------
    bandwidth:
        Raw link bandwidth in bytes per time unit.
    share:
        Fraction of the bandwidth reserved for this traffic class
        (``(0, 1]``); e.g. the FTT-CAN synchronous window share.
    arbitration_delay:
        Worst-case time a ready frame waits for the medium (blackout of the
        TDM window plus the longest lower-priority frame in transit).
    propagation_delay:
        Physical propagation plus stack latency, added to the supply delay.
    burst_credit:
        Bytes of head start a back-logged class may receive (credit-based
        shapers); ``0`` for plain TDM.
    frame_overhead:
        Protocol overhead in bytes added to every message's payload when
        converting messages to tasks.
    """

    def __init__(
        self,
        bandwidth: float,
        *,
        share: float = 1.0,
        arbitration_delay: float = 0.0,
        propagation_delay: float = 0.0,
        burst_credit: float = 0.0,
        frame_overhead: float = 0.0,
        name: str = "",
    ) -> None:
        check_positive(bandwidth, "bandwidth")
        if not (0.0 < share <= 1.0):
            raise ValueError(f"share must lie in (0, 1], got {share!r}")
        check_non_negative(arbitration_delay, "arbitration_delay")
        check_non_negative(propagation_delay, "propagation_delay")
        check_non_negative(burst_credit, "burst_credit")
        check_non_negative(frame_overhead, "frame_overhead")
        super().__init__(
            rate=bandwidth * share,
            delay=arbitration_delay + propagation_delay,
            burstiness=burst_credit,
            name=name,
            allow_superunit=True,
        )
        self.bandwidth = float(bandwidth)
        self.share = float(share)
        self.frame_overhead = float(frame_overhead)

    def wire_cycles(self, payload_bytes: float) -> float:
        """Cycles (bytes on the wire) a message of *payload_bytes* demands."""
        check_non_negative(payload_bytes, "payload_bytes")
        return payload_bytes + self.frame_overhead

    def transmission_time(self, payload_bytes: float) -> float:
        """Guaranteed-bound transmission time of one message (no queueing)."""
        return self.min_service_time(self.wire_cycles(payload_bytes))


@dataclass
class Message:
    """A message exchanged between components over a network platform.

    Parameters
    ----------
    payload:
        Payload size in bytes (worst case).
    payload_best:
        Best-case payload size; defaults to ``payload``.
    priority:
        Network-scheduler priority of the message stream (greater = higher,
        as everywhere in the library).
    name:
        Optional label (e.g. ``"readSensor1.request"``).
    """

    payload: float
    priority: int = 1
    payload_best: float | None = None
    name: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive(self.payload, "payload")
        if self.payload_best is None:
            self.payload_best = float(self.payload)
        check_positive(self.payload_best, "payload_best")
        if self.payload_best > self.payload:
            raise ValueError(
                f"payload_best ({self.payload_best!r}) must not exceed "
                f"payload ({self.payload!r})"
            )


def message_to_task(
    message: Message,
    link: NetworkLinkPlatform,
    platform_index: int,
) -> Task:
    """Convert *message* into a schedulable task on the network platform.

    The resulting task's cycles are the bytes on the wire (payload plus the
    link's frame overhead); the analysis then treats the link exactly like a
    processor, as prescribed by Section 2.4 of the paper.
    """
    return Task(
        wcet=link.wire_cycles(message.payload),
        bcet=link.wire_cycles(message.payload_best),
        platform=platform_index,
        priority=message.priority,
        name=message.name or "msg",
        meta={"kind": "message", **message.meta},
    )
