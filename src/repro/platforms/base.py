"""Common interface of abstract computing platforms.

Definitions 1-5 of the paper: a platform is fully described by its minimum
and maximum supply functions; the analysis consumes the linear abstraction
:math:`Z^{min}(t) \\ge \\alpha(t - \\Delta)` and
:math:`Z^{max}(t) \\le \\beta + \\alpha t`.

Note on Definitions 4-5.  The paper defines :math:`\\Delta` as
``max{d >= 0 : exists t >= 0, Zmin(t) <= alpha (t - d)}`` -- read literally
this is unbounded (take ``t = 0``).  The intended (and standard, cf. network
calculus rate-latency curves) semantics, which the paper's Figure 3
illustrates, is the *tightest safe* linear bound:

.. math::  \\Delta = \\min\\{d : \\forall t,\\ Z^{min}(t) \\ge \\alpha(t-d)\\}
           = \\sup_t\\,(t - Z^{min}(t)/\\alpha)

and dually :math:`\\beta = \\sup_t\\,(Z^{max}(t) - \\alpha t)`.  All concrete
platforms implement these semantics (analytically where closed forms exist,
numerically via :mod:`repro.platforms.algebra` otherwise).
"""

from __future__ import annotations

import abc
from typing import Iterable

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    np = None  # sample_zmin/sample_zmax raise if called

__all__ = ["AbstractPlatform"]


class AbstractPlatform(abc.ABC):
    """An abstract computing platform :math:`\\Pi` (paper Sec. 2.3).

    Subclasses must implement the exact supply functions and the linear
    triple.  Supply functions are expressed in *cycles provided* as a
    function of interval length ``t``; both are ``0`` for ``t <= 0`` except
    that ``zmax`` may jump to ``burstiness`` immediately after ``0``.
    """

    # -- exact supply -----------------------------------------------------------

    @abc.abstractmethod
    def zmin(self, t: float) -> float:
        """Minimum cycles provided in any interval of length *t* (Def. 1)."""

    @abc.abstractmethod
    def zmax(self, t: float) -> float:
        """Maximum cycles provided in any interval of length *t* (Def. 2)."""

    # -- linear abstraction -------------------------------------------------------

    @property
    @abc.abstractmethod
    def rate(self) -> float:
        """Long-run rate :math:`\\alpha` (Def. 3); in ``(0, 1]`` for a CPU share."""

    @property
    @abc.abstractmethod
    def delay(self) -> float:
        """Delay :math:`\\Delta` of the linear lower bound (Def. 4, see module note)."""

    @property
    @abc.abstractmethod
    def burstiness(self) -> float:
        """Burstiness :math:`\\beta` of the linear upper bound (Def. 5)."""

    # -- derived helpers (shared implementations) ----------------------------------

    def linear_lower(self, t: float) -> float:
        """The lower envelope :math:`\\max(0, \\alpha(t - \\Delta))`."""
        return max(0.0, self.rate * (t - self.delay))

    def linear_upper(self, t: float) -> float:
        """The upper envelope :math:`\\beta + \\alpha t` (``0`` for ``t <= 0``)."""
        if t <= 0.0:
            return 0.0
        return self.burstiness + self.rate * t

    def triple(self) -> tuple[float, float, float]:
        """The characterizing triple :math:`(\\alpha, \\Delta, \\beta)`."""
        return (self.rate, self.delay, self.burstiness)

    # -- vectorized sampling (for plots, verification and sweeps) -------------------

    def sample_zmin(self, ts: Iterable[float] | np.ndarray) -> np.ndarray:
        """``zmin`` evaluated over an array of interval lengths."""
        if np is None:
            raise RuntimeError("NumPy is required for vectorized sampling")
        arr = np.asarray(list(ts) if not isinstance(ts, np.ndarray) else ts, dtype=float)
        return np.array([self.zmin(float(t)) for t in arr.ravel()]).reshape(arr.shape)

    def sample_zmax(self, ts: Iterable[float] | np.ndarray) -> np.ndarray:
        """``zmax`` evaluated over an array of interval lengths."""
        if np is None:
            raise RuntimeError("NumPy is required for vectorized sampling")
        arr = np.asarray(list(ts) if not isinstance(ts, np.ndarray) else ts, dtype=float)
        return np.array([self.zmax(float(t)) for t in arr.ravel()]).reshape(arr.shape)

    # -- service-time inversion ------------------------------------------------------

    def min_service_time(self, cycles: float) -> float:
        """Time to *guarantee* `cycles` using the linear lower bound.

        Inverts :math:`\\alpha(t - \\Delta) = cycles`, i.e.
        :math:`t = \\Delta + cycles/\\alpha` -- the term the analysis uses for
        the task under analysis (Eq. 13: the :math:`\\Delta + C/\\alpha`
        contribution).
        """
        if cycles <= 0.0:
            return 0.0
        return self.delay + cycles / self.rate

    def best_service_time(self, cycles: float) -> float:
        """Shortest conceivable time to obtain *cycles* per the paper's best case.

        The paper's best-case term is :math:`\\max(0, cycles/\\alpha - \\beta)`
        (see :meth:`repro.model.task.Task.scaled_bcet` for the discussion of
        the published form).
        """
        if cycles <= 0.0:
            return 0.0
        return max(0.0, cycles / self.rate - self.burstiness)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        a, d, b = self.triple()
        return f"{type(self).__name__}(alpha={a:g}, delta={d:g}, beta={b:g})"
