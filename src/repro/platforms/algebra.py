"""Numeric extraction and verification of linear supply bounds.

Concrete platforms implement closed-form triples; this module provides the
generic numeric counterparts used to

* extract :math:`(\\alpha, \\Delta, \\beta)` from *any* supply curve
  (:func:`extract_linear_bounds`) -- e.g. a measured or composed one,
* verify that a platform's advertised triple really bounds its exact supply
  functions (:func:`verify_linear_bounds`) -- used by the property tests,
* sanity-check supply functions themselves (:func:`verify_supply_sanity`),
* flatten any platform to a :class:`~repro.platforms.linear.LinearSupplyPlatform`
  (:func:`as_linear`), which is what the analysis ultimately consumes.

Sampling is vectorized with NumPy; curves are sampled at a caller-chosen
resolution over a horizon that should cover several periods/cycles of the
underlying mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    np = None  # numeric bound extraction raises if called

from repro.platforms.base import AbstractPlatform
from repro.platforms.linear import LinearSupplyPlatform
from repro.util.validation import check_positive

__all__ = [
    "LinearBounds",
    "extract_linear_bounds",
    "verify_linear_bounds",
    "verify_supply_sanity",
    "as_linear",
]


@dataclass(frozen=True)
class LinearBounds:
    """A numerically extracted :math:`(\\alpha, \\Delta, \\beta)` triple."""

    rate: float
    delay: float
    burstiness: float

    def as_platform(self, *, name: str = "") -> LinearSupplyPlatform:
        """Materialize the triple as a linear platform."""
        return LinearSupplyPlatform(
            rate=self.rate,
            delay=self.delay,
            burstiness=self.burstiness,
            name=name,
            allow_superunit=True,
        )


def _grid(horizon: float, samples: int) -> np.ndarray:
    if np is None:
        raise RuntimeError(
            "NumPy is required for numeric supply-bound extraction; "
            "concrete platforms expose closed-form triples without it"
        )
    check_positive(horizon, "horizon")
    if samples < 16:
        raise ValueError(f"samples must be >= 16, got {samples!r}")
    return np.linspace(horizon / samples, horizon, samples)


def extract_linear_bounds(
    platform: AbstractPlatform,
    horizon: float,
    *,
    samples: int = 4096,
    rate: float | None = None,
) -> LinearBounds:
    """Estimate the tight linear envelopes of *platform* numerically.

    Parameters
    ----------
    platform:
        Any object with ``zmin``/``zmax`` supply functions.
    horizon:
        Largest interval length sampled.  Must cover several repetitions of
        the supply pattern or the rate estimate will be biased; 10 periods
        is a good default for server-based platforms.
    samples:
        Grid resolution.  For piecewise-linear supplies whose corners do not
        fall on the grid the extracted ``delay``/``burstiness`` are lower
        bounds within one grid step of the true suprema.
    rate:
        Use this rate instead of estimating it as ``zmin(horizon)/horizon``.
        Passing the platform's exact rate removes the horizon bias.
    """
    ts = _grid(horizon, samples)
    zmin = platform.sample_zmin(ts)
    zmax = platform.sample_zmax(ts)
    if rate is None:
        # Long-run slope; average the endpoint estimates of both curves to
        # halve the finite-horizon bias (zmin underestimates, zmax
        # overestimates by at most a constant / horizon).
        rate = float((zmin[-1] + zmax[-1]) / (2.0 * ts[-1]))
    if rate <= 0:
        raise ValueError(
            f"estimated rate is non-positive ({rate!r}); "
            "increase the horizon or pass the exact rate"
        )
    delay = float(np.max(ts - zmin / rate))
    burst = float(np.max(zmax - rate * ts))
    return LinearBounds(rate=rate, delay=max(0.0, delay), burstiness=max(0.0, burst))


def verify_linear_bounds(
    platform: AbstractPlatform,
    horizon: float,
    *,
    samples: int = 4096,
    tol: float = 1e-9,
) -> bool:
    """Check that the advertised triple truly envelopes the exact supply.

    Returns ``True`` when, over the sampled grid,
    ``zmin(t) >= rate*(t - delay) - tol`` and
    ``zmax(t) <= burstiness + rate*t + tol`` everywhere.
    """
    ts = _grid(horizon, samples)
    zmin = platform.sample_zmin(ts)
    zmax = platform.sample_zmax(ts)
    lower = np.maximum(0.0, platform.rate * (ts - platform.delay))
    upper = platform.burstiness + platform.rate * ts
    return bool(np.all(zmin >= lower - tol) and np.all(zmax <= upper + tol))


def verify_supply_sanity(
    platform: AbstractPlatform,
    horizon: float,
    *,
    samples: int = 2048,
    unit_speed: bool = False,
    tol: float = 1e-9,
) -> bool:
    """Structural checks every supply-function pair must satisfy.

    * ``zmin`` and ``zmax`` are non-decreasing;
    * ``zmin <= zmax`` pointwise;
    * both vanish at ``t <= 0``;
    * with ``unit_speed=True``, neither exceeds the wall-clock time
      (a single processor cannot provide more than ``t`` cycles in ``t``).
    """
    ts = _grid(horizon, samples)
    zmin = platform.sample_zmin(ts)
    zmax = platform.sample_zmax(ts)
    if platform.zmin(0.0) > tol or platform.zmax(0.0) > tol:
        return False
    if platform.zmin(-1.0) > tol or platform.zmax(-1.0) > tol:
        return False
    if np.any(np.diff(zmin) < -tol) or np.any(np.diff(zmax) < -tol):
        return False
    if np.any(zmin > zmax + tol):
        return False
    if unit_speed and (np.any(zmin > ts + tol) or np.any(zmax > ts + tol)):
        return False
    return True


def as_linear(platform: AbstractPlatform, *, name: str = "") -> LinearSupplyPlatform:
    """Flatten *platform* to a linear platform with its advertised triple.

    This is the "pessimism of the linear estimate" step the paper mentions
    at the end of Section 2.3: the analysis only ever sees the triple.
    """
    a, d, b = platform.triple()
    return LinearSupplyPlatform(
        rate=a,
        delay=d,
        burstiness=b,
        name=name or getattr(platform, "name", ""),
        allow_superunit=True,
    )
