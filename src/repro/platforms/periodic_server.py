"""The periodic server platform of Figure 3: :math:`Q` cycles every :math:`P`.

This is the reference reservation mechanism of the paper (and of the
periodic resource model of Shih & Lee).  The exact supply functions are
piecewise linear:

* **Worst case** (``zmin``): an interval begins right after a quantum ended,
  and the next quantum is delayed as much as possible -- a blackout of
  :math:`2(P-Q)` followed by alternating full-rate quanta
  ``[Q service | P-Q gap]``.  The tight linear lower bound has
  :math:`\\Delta = 2(P-Q)` and slope :math:`\\alpha = Q/P`.
* **Best case** (``zmax``): the interval begins exactly when a quantum
  placed at the *end* of its period starts, immediately followed by the next
  period's quantum at its *start* -- a double hit of :math:`2Q` back-to-back,
  then quanta at every subsequent period start.  The tight linear upper
  bound has :math:`\\beta = 2Q(P-Q)/P`.

Both closed forms are verified against brute-force sliding-window
computation in the test suite.
"""

from __future__ import annotations

from repro.platforms.base import AbstractPlatform
from repro.util.validation import check_positive

__all__ = ["PeriodicServer"]


class PeriodicServer(AbstractPlatform):
    """A reservation of *budget* cycles every *period* time units.

    Parameters
    ----------
    budget:
        The guaranteed service :math:`Q` per period (cycles; the server is
        assumed to run on a unit-speed processor so cycles equal time while
        the server executes).
    period:
        The replenishment period :math:`P`; must satisfy ``budget <= period``.
    """

    def __init__(self, budget: float, period: float, *, name: str = "") -> None:
        check_positive(budget, "budget")
        check_positive(period, "period")
        if budget > period:
            raise ValueError(
                f"budget ({budget!r}) must not exceed period ({period!r})"
            )
        self.budget = float(budget)
        self.period = float(period)
        self.name = name

    # -- exact supply --------------------------------------------------------------

    def zmin(self, t: float) -> float:
        """Worst-case supply: blackout :math:`2(P-Q)`, then ``[Q | P-Q]`` pattern."""
        q, p = self.budget, self.period
        gap = p - q
        u = t - 2.0 * gap
        if u <= 0.0:
            return 0.0
        k = int(u // p)
        rem = u - k * p
        return k * q + min(rem, q)

    def zmax(self, t: float) -> float:
        """Best-case supply: double hit of :math:`2Q`, then period-start quanta."""
        q, p = self.budget, self.period
        if t <= 0.0:
            return 0.0
        if t <= q:
            return t
        # After the first quantum (delivered at the end of its period), every
        # following period delivers its quantum at the period start: the v-th
        # time unit past the first quantum sees early-supply(v).
        v = t - q
        k = int(v // p)
        rem = v - k * p
        return q + k * q + min(rem, q)

    # -- linear abstraction ----------------------------------------------------------

    @property
    def rate(self) -> float:
        """:math:`\\alpha = Q/P`."""
        return self.budget / self.period

    @property
    def delay(self) -> float:
        """:math:`\\Delta = 2(P - Q)` -- the maximal blackout."""
        return 2.0 * (self.period - self.budget)

    @property
    def burstiness(self) -> float:
        """:math:`\\beta = 2Q(P-Q)/P` -- slack of the double hit over the rate line."""
        return 2.0 * self.budget * (self.period - self.budget) / self.period

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"PeriodicServer{label}(Q={self.budget:g}, P={self.period:g}; "
            f"alpha={self.rate:g}, delta={self.delay:g}, beta={self.burstiness:g})"
        )
