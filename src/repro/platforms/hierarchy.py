"""Multi-level hierarchical platforms: reservations inside reservations.

The paper's model is two-level (global scheduler realizes one abstract
platform per component).  Deeper hierarchies -- a subsystem reserved inside
another subsystem's reservation -- compose naturally at the supply-function
level: if the *outer* platform guarantees :math:`Z^{min}_o(t)` units of
processor time in any window of length :math:`t`, and the *inner* mechanism
guarantees :math:`Z^{min}_i(s)` cycles out of any :math:`s` units of the
time it is given, then the composition guarantees

.. math::  Z^{min}(t) = Z^{min}_i(Z^{min}_o(t)), \\qquad
           Z^{max}(t) = Z^{max}_i(Z^{max}_o(t)).

For the linear abstractions this yields the closed triple

.. math::  \\alpha = \\alpha_i\\,\\alpha_o, \\qquad
           \\Delta = \\Delta_o + \\Delta_i/\\alpha_o, \\qquad
           \\beta  = \\beta_i + \\alpha_i\\,\\beta_o,

i.e. the inner delay is *stretched* by the outer rate (waiting
:math:`\\Delta_i` units of inner time takes :math:`\\Delta_i/\\alpha_o`
wall-clock time in the worst case), and rates multiply.  The closed triple
is itself a valid (generally slightly pessimistic) envelope of the exact
composed curves; both are exposed.
"""

from __future__ import annotations

from repro.platforms.base import AbstractPlatform

__all__ = ["NestedPlatform", "nest"]


class NestedPlatform(AbstractPlatform):
    """An inner reservation scheduled inside an outer platform's supply.

    Parameters
    ----------
    outer:
        The platform providing raw processor time (e.g. a periodic server
        on the physical CPU).
    inner:
        The mechanism subdividing the outer supply (e.g. another periodic
        server, expressed in the *inner* timeline: its parameters count
        units of time actually received from the outer platform).
    """

    def __init__(
        self,
        outer: AbstractPlatform,
        inner: AbstractPlatform,
        *,
        name: str = "",
    ) -> None:
        for which, p in (("outer", outer), ("inner", inner)):
            for attr in ("zmin", "zmax", "rate", "delay", "burstiness"):
                if not hasattr(p, attr):
                    raise TypeError(f"{which} platform {p!r} lacks {attr!r}")
        self.outer = outer
        self.inner = inner
        self.name = name

    # -- exact composed supply -----------------------------------------------------

    def zmin(self, t: float) -> float:
        return self.inner.zmin(self.outer.zmin(t))

    def zmax(self, t: float) -> float:
        return self.inner.zmax(self.outer.zmax(t))

    # -- closed-form triple -----------------------------------------------------------

    @property
    def rate(self) -> float:
        return self.inner.rate * self.outer.rate

    @property
    def delay(self) -> float:
        return self.outer.delay + self.inner.delay / self.outer.rate

    @property
    def burstiness(self) -> float:
        return self.inner.burstiness + self.inner.rate * self.outer.burstiness

    def depth(self) -> int:
        """Nesting depth (a flat platform is depth 1)."""
        inner_depth = (
            self.inner.depth() if isinstance(self.inner, NestedPlatform) else 1
        )
        outer_depth = (
            self.outer.depth() if isinstance(self.outer, NestedPlatform) else 1
        )
        return 1 + max(inner_depth, outer_depth)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"NestedPlatform{label}({self.inner!r} inside {self.outer!r}; "
            f"alpha={self.rate:g}, delta={self.delay:g}, beta={self.burstiness:g})"
        )


def nest(*platforms: AbstractPlatform, name: str = "") -> AbstractPlatform:
    """Compose a chain of platforms, outermost first.

    ``nest(cpu_share, subsystem_share, component_share)`` reserves
    ``component_share`` inside ``subsystem_share`` inside ``cpu_share``.
    With a single argument the platform is returned unchanged.
    """
    if not platforms:
        raise ValueError("nest() needs at least one platform")
    current = platforms[0]
    for inner in platforms[1:]:
        current = NestedPlatform(current, inner)
    if name and isinstance(current, NestedPlatform):
        current.name = name
    return current
