"""Budget/period reservation servers: polling, deferrable, CBS.

The paper names "an aperiodic server algorithm like Polling Server, CBS or
similar" as the canonical realization of an abstract platform.  At the level
of *guaranteed supply bounds* -- which is all the analysis of Section 3
consumes -- every budget/period reservation shares the periodic-server
envelope: :math:`Q` cycles guaranteed per period :math:`P`, worst-case
blackout :math:`2(P-Q)`, best-case double hit :math:`2Q`.  The policies
differ in *average-case* behavior and in how they interfere with the rest of
the physical platform, which is modeled by the simulator
(:mod:`repro.sim.platform_runtime`), not by the supply abstraction.

:class:`ReservationServer` therefore extends
:class:`~repro.platforms.periodic_server.PeriodicServer` with a ``policy``
tag consumed by the simulator, and the three concrete classes pin the tag.
"""

from __future__ import annotations

from repro.platforms.periodic_server import PeriodicServer

__all__ = ["ReservationServer", "PollingServer", "DeferrableServer", "CBSServer"]


class ReservationServer(PeriodicServer):
    """A budget/period reservation with an explicit replenishment policy.

    Parameters
    ----------
    budget, period:
        The reservation :math:`(Q, P)`, as for
        :class:`~repro.platforms.periodic_server.PeriodicServer`.
    policy:
        One of ``"polling"``, ``"deferrable"``, ``"cbs"`` (extensible).  The
        supply bounds are policy-independent; the simulator dispatches on
        this tag to reproduce each policy's budget dynamics.
    """

    KNOWN_POLICIES = ("polling", "deferrable", "cbs")

    def __init__(
        self, budget: float, period: float, policy: str, *, name: str = ""
    ) -> None:
        if policy not in self.KNOWN_POLICIES:
            raise ValueError(
                f"unknown reservation policy {policy!r}; "
                f"expected one of {self.KNOWN_POLICIES}"
            )
        super().__init__(budget, period, name=name)
        self.policy = policy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"{type(self).__name__}{label}(Q={self.budget:g}, P={self.period:g}, "
            f"policy={self.policy!r})"
        )


class PollingServer(ReservationServer):
    """Polling server: unused budget is lost at each polling point.

    The simulator replenishes the budget at every period start and discards
    whatever remains when the server has no pending work.
    """

    def __init__(self, budget: float, period: float, *, name: str = "") -> None:
        super().__init__(budget, period, "polling", name=name)


class DeferrableServer(ReservationServer):
    """Deferrable server: budget is preserved across idle intervals.

    Work arriving mid-period can still consume the remaining budget, which
    produces the classical back-to-back (double hit) pattern -- exactly the
    :math:`2Q` burst the ``zmax`` envelope accounts for.
    """

    def __init__(self, budget: float, period: float, *, name: str = "") -> None:
        super().__init__(budget, period, "deferrable", name=name)


class CBSServer(ReservationServer):
    """Constant Bandwidth Server (hard reservation variant).

    Budget is replenished to :math:`Q` and the deadline postponed by
    :math:`P` whenever the budget is exhausted; the hard variant also caps
    the service to :math:`Q` per period, matching the periodic envelope.
    """

    def __init__(self, budget: float, period: float, *, name: str = "") -> None:
        super().__init__(budget, period, "cbs", name=name)
