"""P-fair scheduling as an abstract platform.

The paper cites p-fair schedulers (Srinivasan & Anderson) as one possible
global scheduling mechanism.  A p-fair task of weight :math:`w` receives an
allocation whose *lag* with respect to the fluid schedule :math:`w\\,t` is
strictly bounded by one quantum: :math:`|S(t) - w\\,t| < q`.  Taken as a
supply model this yields

.. math::  Z^{min}(t) = \\max(0,\\ w\\,t - q), \\qquad
           Z^{max}(t) = \\min(t,\\ w\\,t + q)

so the linear triple is :math:`(\\alpha, \\Delta, \\beta) = (w,\\ q/w,\\ q)`.
The paper's Figure 3 commentary ("if Pi is implemented by a pfair task the
min/max supply functions will be quite different") is exactly this shape:
no blackout longer than :math:`q/w`, and a much smaller burst than a
periodic server of equal bandwidth.
"""

from __future__ import annotations

from repro.platforms.base import AbstractPlatform
from repro.util.validation import check_in_range, check_positive

__all__ = ["PFairPlatform"]


class PFairPlatform(AbstractPlatform):
    """A p-fair share of a (multi)processor.

    Parameters
    ----------
    weight:
        Fluid rate :math:`w \\in (0, 1]` of the share.
    quantum:
        Lag bound :math:`q` (the scheduling quantum), default 1 time unit.
    """

    def __init__(self, weight: float, quantum: float = 1.0, *, name: str = "") -> None:
        check_in_range(weight, 0.0, 1.0, "weight", low_open=True)
        check_positive(quantum, "quantum")
        self.weight = float(weight)
        self.quantum = float(quantum)
        self.name = name

    def zmin(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return max(0.0, self.weight * t - self.quantum)

    def zmax(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return min(t, self.weight * t + self.quantum)

    @property
    def rate(self) -> float:
        return self.weight

    @property
    def delay(self) -> float:
        """:math:`\\Delta = q/w`: the lag bound divided by the fluid rate."""
        return self.quantum / self.weight

    @property
    def burstiness(self) -> float:
        return self.quantum

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"PFairPlatform{label}(w={self.weight:g}, q={self.quantum:g}; "
            f"delta={self.delay:g})"
        )
