"""Abstract computing platforms and their supply functions (paper Sec. 2.3).

An *abstract computing platform* :math:`\\Pi` is characterized by the number
of cycles it is guaranteed to provide in any time interval.  The paper
bounds the provided cycles between a minimum and a maximum supply function
(Definitions 1-2) and abstracts both by linear envelopes described by the
triple :math:`(\\alpha, \\Delta, \\beta)` -- rate, delay and burstiness
(Definitions 3-5), in direct analogy with network calculus.

This sub-package provides:

* :class:`~repro.platforms.base.AbstractPlatform` -- the common interface:
  exact supply functions ``zmin``/``zmax`` plus the linear triple.
* :class:`~repro.platforms.linear.LinearSupplyPlatform` -- a platform given
  directly by its triple (what the paper's example uses, Table 2), and
  :class:`~repro.platforms.linear.DedicatedPlatform` -- the classical
  processor :math:`(1, 0, 0)`.
* :class:`~repro.platforms.periodic_server.PeriodicServer` -- the
  :math:`Q` - every - :math:`P` reservation of Figure 3 with exact
  piecewise supply functions.
* :class:`~repro.platforms.partition.StaticPartitionPlatform` -- table-driven
  TDM slot partitions.
* :class:`~repro.platforms.pfair.PFairPlatform` -- p-fair weighted fair
  scheduling (lag-1 bound).
* :mod:`~repro.platforms.servers` -- polling/deferrable/CBS reservation
  variants sharing the budget/period supply envelope.
* :class:`~repro.platforms.network.NetworkLinkPlatform` -- a network modeled
  as a platform (Sec. 2.2.1: "the network is similar to a computational
  node"), plus message-to-task conversion helpers.
* :mod:`~repro.platforms.algebra` -- numeric extraction and verification of
  :math:`(\\alpha, \\Delta, \\beta)` from arbitrary supply curves.
"""

from repro.platforms.base import AbstractPlatform
from repro.platforms.linear import DedicatedPlatform, LinearSupplyPlatform
from repro.platforms.periodic_server import PeriodicServer
from repro.platforms.partition import StaticPartitionPlatform
from repro.platforms.pfair import PFairPlatform
from repro.platforms.servers import (
    CBSServer,
    DeferrableServer,
    PollingServer,
    ReservationServer,
)
from repro.platforms.hierarchy import NestedPlatform, nest
from repro.platforms.network import Message, NetworkLinkPlatform, message_to_task
from repro.platforms.algebra import (
    LinearBounds,
    as_linear,
    extract_linear_bounds,
    verify_linear_bounds,
    verify_supply_sanity,
)

__all__ = [
    "AbstractPlatform",
    "LinearSupplyPlatform",
    "DedicatedPlatform",
    "PeriodicServer",
    "StaticPartitionPlatform",
    "PFairPlatform",
    "ReservationServer",
    "PollingServer",
    "DeferrableServer",
    "CBSServer",
    "NestedPlatform",
    "nest",
    "NetworkLinkPlatform",
    "Message",
    "message_to_task",
    "LinearBounds",
    "as_linear",
    "extract_linear_bounds",
    "verify_linear_bounds",
    "verify_supply_sanity",
]
