"""Platforms specified directly by their linear triple.

The paper's example (Table 2) specifies platforms as bare
:math:`(\\alpha, \\Delta, \\beta)` triples; :class:`LinearSupplyPlatform`
realizes exactly that, taking the linear envelopes *as* the supply
functions.  :class:`DedicatedPlatform` is the classical full-speed processor
:math:`(1, 0, 0)` the paper singles out: with it, the whole analysis reduces
to the classical holistic analysis (benchmark E9 verifies this).
"""

from __future__ import annotations

from repro.platforms.base import AbstractPlatform
from repro.util.validation import check_in_range, check_non_negative

__all__ = ["LinearSupplyPlatform", "DedicatedPlatform"]


class LinearSupplyPlatform(AbstractPlatform):
    """A platform whose supply functions *are* the linear envelopes.

    Parameters
    ----------
    rate:
        :math:`\\alpha \\in (0, 1]` -- fraction of a unit-speed processor.
        Rates above 1 are permitted (e.g. a network link measured in bytes
        per time unit) by passing ``allow_superunit=True``.
    delay:
        :math:`\\Delta \\ge 0` -- worst-case initial service delay.
    burstiness:
        :math:`\\beta \\ge 0` -- best-case head start.
    name:
        Optional label used in reports (e.g. ``"Pi1"``).
    """

    def __init__(
        self,
        rate: float,
        delay: float = 0.0,
        burstiness: float = 0.0,
        *,
        name: str = "",
        allow_superunit: bool = False,
    ) -> None:
        if allow_superunit:
            check_in_range(rate, 0.0, float("inf"), "rate", low_open=True)
        else:
            check_in_range(rate, 0.0, 1.0, "rate", low_open=True)
        check_non_negative(delay, "delay")
        check_non_negative(burstiness, "burstiness")
        self._rate = float(rate)
        self._delay = float(delay)
        self._burstiness = float(burstiness)
        self.name = name

    # -- supply -----------------------------------------------------------------

    def zmin(self, t: float) -> float:
        return max(0.0, self._rate * (t - self._delay))

    def zmax(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return self._burstiness + self._rate * t

    # -- triple -----------------------------------------------------------------

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def delay(self) -> float:
        return self._delay

    @property
    def burstiness(self) -> float:
        return self._burstiness

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"LinearSupplyPlatform{label}(alpha={self._rate:g}, "
            f"delta={self._delay:g}, beta={self._burstiness:g})"
        )


class DedicatedPlatform(LinearSupplyPlatform):
    """The classical dedicated processor: :math:`(\\alpha,\\Delta,\\beta)=(1,0,0)`.

    A convenience subclass so call sites read
    ``DedicatedPlatform()`` instead of ``LinearSupplyPlatform(1, 0, 0)``.
    An optional *speed* lets heterogeneous multiprocessors be modeled
    (a processor of speed 0.5 provides half the cycles per unit time).
    """

    def __init__(self, speed: float = 1.0, *, name: str = "") -> None:
        super().__init__(rate=speed, delay=0.0, burstiness=0.0, name=name)
