"""Static time-partition (TDM table) platforms.

The paper lists "static partitioning of the resource" (Feng & Mok) among the
global scheduling strategies that realize abstract platforms.  A partition
is a cyclically repeating table of time slots during which the component
owns the processor.  The exact supply functions are computed by sliding a
window over the periodic slot pattern; the linear triple is extracted
exactly from the piecewise-linear corners.
"""

from __future__ import annotations

from typing import Sequence

from repro.platforms.base import AbstractPlatform
from repro.util.math import EPS, fmod_pos
from repro.util.validation import check_positive

__all__ = ["StaticPartitionPlatform"]


class StaticPartitionPlatform(AbstractPlatform):
    """A platform defined by a cyclic table of exclusive time slots.

    Parameters
    ----------
    slots:
        Sequence of ``(start, length)`` pairs within ``[0, cycle)`` during
        which the partition owns the (unit-speed) processor.  Slots must not
        overlap; they may touch.
    cycle:
        The major cycle after which the table repeats.

    Example
    -------
    ``StaticPartitionPlatform([(0, 2), (5, 1)], cycle=10)`` provides 3 cycles
    every 10 time units (:math:`\\alpha = 0.3`) with the worst-case window
    starting just after the slot at 5 ends.
    """

    def __init__(
        self,
        slots: Sequence[tuple[float, float]],
        cycle: float,
        *,
        name: str = "",
    ) -> None:
        check_positive(cycle, "cycle")
        self.cycle = float(cycle)
        self.name = name
        cleaned: list[tuple[float, float]] = []
        for k, (start, length) in enumerate(slots):
            if length <= 0:
                raise ValueError(f"slots[{k}] has non-positive length {length!r}")
            if start < 0 or start + length > cycle + EPS:
                raise ValueError(
                    f"slots[{k}] = ({start!r}, {length!r}) does not fit in "
                    f"[0, {cycle!r})"
                )
            cleaned.append((float(start), float(length)))
        cleaned.sort()
        for (s0, l0), (s1, _) in zip(cleaned, cleaned[1:]):
            if s0 + l0 > s1 + EPS:
                raise ValueError(
                    f"slots ({s0}, {l0}) and starting at {s1} overlap"
                )
        if not cleaned:
            raise ValueError("a partition needs at least one slot")
        self.slots = cleaned
        self._supply_per_cycle = sum(l for _, l in cleaned)
        # Pre-compute cumulative supply at slot boundaries for fast lookup.
        self._boundaries: list[float] = []
        self._cumulative: list[float] = []
        acc = 0.0
        for start, length in cleaned:
            self._boundaries.append(start)
            self._cumulative.append(acc)
            acc += length
            self._boundaries.append(start + length)
            self._cumulative.append(acc)
        self._delay, self._burstiness = self._extract_bounds()

    # -- cumulative supply -----------------------------------------------------------

    def _partial(self, x: float) -> float:
        """Supply accumulated in ``[0, x)`` within a single cycle, ``x in [0, cycle]``."""
        acc = 0.0
        for start, length in self.slots:
            if x <= start:
                break
            acc += min(length, x - start)
        return acc

    def cumulative_supply(self, x: float) -> float:
        """Total supply in ``[0, x)`` for any ``x >= 0`` (pattern repeats)."""
        if x <= 0.0:
            return 0.0
        k = int(x // self.cycle)
        rem = x - k * self.cycle
        return k * self._supply_per_cycle + self._partial(rem)

    # -- exact supply functions ---------------------------------------------------------

    def _window_candidates(self, t: float) -> list[float]:
        """Window-start candidates where ``S(t0+t) - S(t0)`` can attain extrema.

        The sliding-window supply is piecewise linear in the window start
        ``t0`` with breakpoints where either edge of the window crosses a
        slot boundary; the extrema are attained at these breakpoints.
        """
        cands: set[float] = set()
        for b in self._boundaries:
            cands.add(fmod_pos(b, self.cycle))
            cands.add(fmod_pos(b - t, self.cycle))
        return sorted(cands)

    def zmin(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        best = float("inf")
        for t0 in self._window_candidates(t):
            s = self.cumulative_supply(t0 + t) - self.cumulative_supply(t0)
            best = min(best, s)
        return max(0.0, best)

    def zmax(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        best = 0.0
        for t0 in self._window_candidates(t):
            s = self.cumulative_supply(t0 + t) - self.cumulative_supply(t0)
            best = max(best, s)
        return best

    # -- linear triple ---------------------------------------------------------------

    def _extract_bounds(self) -> tuple[float, float]:
        """Exact :math:`(\\Delta, \\beta)` from the piecewise-linear corners.

        ``t - zmin(t)/alpha`` and ``zmax(t) - alpha t`` are periodic in ``t``
        with period ``cycle`` (one extra cycle covers the initial blackout),
        and their extrema lie at window lengths equal to differences of slot
        boundaries.  Enumerating boundary pairs across two cycles is exact.
        """
        alpha = self.rate
        bounds2: list[float] = []
        for k in (0, 1, 2):
            bounds2.extend(b + k * self.cycle for b in self._boundaries)
        lengths: set[float] = set()
        for b1 in self._boundaries:
            for b2 in bounds2:
                if b2 - b1 > EPS:
                    lengths.add(b2 - b1)
        delay = 0.0
        burst = 0.0
        for t in lengths:
            zmn = self.zmin(t)
            zmx = self.zmax(t)
            delay = max(delay, t - zmn / alpha)
            burst = max(burst, zmx - alpha * t)
        return delay, burst

    @property
    def rate(self) -> float:
        return self._supply_per_cycle / self.cycle

    @property
    def delay(self) -> float:
        return self._delay

    @property
    def burstiness(self) -> float:
        return self._burstiness

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"StaticPartitionPlatform{label}({len(self.slots)} slots / "
            f"{self.cycle:g}; alpha={self.rate:g}, delta={self.delay:g}, "
            f"beta={self.burstiness:g})"
        )
