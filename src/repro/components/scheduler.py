"""Local schedulers (paper Sec. 2.1).

Each component schedules its own threads with a *local* scheduler; the paper
analyses fixed priorities and notes the methodology "can be easily extended
to other local schedulers like EDF".  We mirror that split:

* :class:`FixedPriorityScheduler` -- fully supported by the analysis.
* :class:`EDFScheduler` -- supported by the simulator
  (:mod:`repro.sim`), rejected by the analytic transform with a clear error
  (the offset-based EDF analysis is out of the paper's scope).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LocalScheduler", "FixedPriorityScheduler", "EDFScheduler"]


@dataclass(frozen=True)
class LocalScheduler:
    """Base marker for local scheduling policies."""

    #: Policy identifier used by the simulator dispatch.
    policy: str = "fixed_priority"

    @property
    def analyzable(self) -> bool:
        """Whether :mod:`repro.analysis` supports this policy."""
        return self.policy == "fixed_priority"


@dataclass(frozen=True)
class FixedPriorityScheduler(LocalScheduler):
    """Preemptive fixed priorities; greater number = higher priority."""

    policy: str = "fixed_priority"


@dataclass(frozen=True)
class EDFScheduler(LocalScheduler):
    """Preemptive earliest-deadline-first on thread-relative deadlines.

    Simulation-only: the transform refuses to derive an analyzable
    transaction system from EDF components, but
    :mod:`repro.sim` can execute them (useful to prototype the extension the
    paper suggests).
    """

    policy: str = "edf"
