"""The component class (paper Sec. 2.1): interfaces + implementation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.scheduler import FixedPriorityScheduler, LocalScheduler
from repro.components.threads import CallStep, EventThread, PeriodicThread, ThreadSpec

__all__ = ["Component"]


@dataclass
class Component:
    """A reusable component: provided/required interfaces and threads.

    Parameters
    ----------
    name:
        Class name of the component (instances get their own names in the
        assembly).
    provided:
        The provided interface -- methods offered to other components.
    required:
        The required interface -- methods this component invokes.
    threads:
        The implementation: periodic and event-triggered threads.
    scheduler:
        The local scheduler; fixed priority by default (the only policy the
        paper analyses).

    Construction validates internal consistency: every event thread must
    realize a *distinct* provided method, and every :class:`CallStep` must
    name a required method.
    """

    name: str
    provided: Sequence[ProvidedMethod] = field(default_factory=list)
    required: Sequence[RequiredMethod] = field(default_factory=list)
    threads: Sequence[ThreadSpec] = field(default_factory=list)
    scheduler: LocalScheduler = field(default_factory=FixedPriorityScheduler)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        self.provided = list(self.provided)
        self.required = list(self.required)
        self.threads = list(self.threads)

        prov_names = [m.name for m in self.provided]
        req_names = [m.name for m in self.required]
        if len(set(prov_names)) != len(prov_names):
            raise ValueError(f"component {self.name!r}: duplicate provided method names")
        if len(set(req_names)) != len(req_names):
            raise ValueError(f"component {self.name!r}: duplicate required method names")
        overlap = set(prov_names) & set(req_names)
        if overlap:
            raise ValueError(
                f"component {self.name!r}: methods both provided and required: {sorted(overlap)}"
            )
        thread_names = [t.name for t in self.threads]
        if len(set(thread_names)) != len(thread_names):
            raise ValueError(f"component {self.name!r}: duplicate thread names")

        realized: set[str] = set()
        for t in self.threads:
            if isinstance(t, EventThread):
                if t.realizes not in set(prov_names):
                    raise ValueError(
                        f"component {self.name!r}: thread {t.name!r} realizes "
                        f"unknown provided method {t.realizes!r}"
                    )
                if t.realizes in realized:
                    raise ValueError(
                        f"component {self.name!r}: provided method {t.realizes!r} "
                        "is realized by more than one thread"
                    )
                realized.add(t.realizes)
            for step in t.body:
                if isinstance(step, CallStep) and step.method not in set(req_names):
                    raise ValueError(
                        f"component {self.name!r}: thread {t.name!r} calls "
                        f"{step.method!r} which is not in the required interface"
                    )

    # -- lookups ------------------------------------------------------------------

    def provided_method(self, name: str) -> ProvidedMethod:
        """The provided method called *name* (raises ``KeyError`` if absent)."""
        for m in self.provided:
            if m.name == name:
                return m
        raise KeyError(f"component {self.name!r} does not provide {name!r}")

    def required_method(self, name: str) -> RequiredMethod:
        """The required method called *name* (raises ``KeyError`` if absent)."""
        for m in self.required:
            if m.name == name:
                return m
        raise KeyError(f"component {self.name!r} does not require {name!r}")

    def realizer_of(self, provided_name: str) -> EventThread:
        """The event thread realizing *provided_name*.

        Raises :class:`KeyError` when no thread realizes the method (a
        provided method nobody implements is an assembly error surfaced by
        :func:`repro.components.validation.validate_assembly`).
        """
        for t in self.threads:
            if isinstance(t, EventThread) and t.realizes == provided_name:
                return t
        raise KeyError(
            f"component {self.name!r}: no thread realizes provided method "
            f"{provided_name!r}"
        )

    def periodic_threads(self) -> list[PeriodicThread]:
        """The time-triggered threads (transaction roots)."""
        return [t for t in self.threads if isinstance(t, PeriodicThread)]

    def event_threads(self) -> list[EventThread]:
        """The event-triggered threads."""
        return [t for t in self.threads if isinstance(t, EventThread)]
