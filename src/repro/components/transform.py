"""Component-to-transaction transform (paper Sec. 2.4).

Every periodic thread roots one transaction.  Walking its body in order:

* a :class:`~repro.components.threads.TaskStep` becomes a task on the
  platform of the *owning* instance, at the step's (or thread's) priority;
* a :class:`~repro.components.threads.CallStep` is resolved through the
  assembly's bindings to the event thread realizing the target provided
  method, whose body is spliced in **recursively** (the callee may itself
  call further components) -- tasks created there live on the *callee's*
  platform at the event thread's priorities;
* when the binding declares request/reply messages, message tasks are
  inserted on the named network platform before/after the callee's tasks
  ("messages can simply be modeled by considering additional tasks...").

The expansion carries a call stack for cycle detection: recursive RPC loops
(A calls B calls A) are a specification error, reported with the full cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.components.assembly import SystemAssembly
from repro.components.threads import CallStep, EventThread, PeriodicThread, TaskStep
from repro.components.validation import AssemblyError, validate_assembly
from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.model.system import TransactionSystem
from repro.platforms.network import NetworkLinkPlatform, message_to_task

__all__ = ["derive_transactions"]


@dataclass
class _ExpandContext:
    assembly: SystemAssembly
    tasks: list[Task]
    stack: list[tuple[str, str]]  # (instance, provided-method) call stack
    root: str  # transaction label for error messages


def _expand_thread(
    ctx: _ExpandContext,
    instance: str,
    thread: PeriodicThread | EventThread,
) -> None:
    """Append the tasks of *thread* (owned by *instance*) to the context."""
    asm = ctx.assembly
    platform = asm.platform_of(instance)
    for step in thread.body:
        if isinstance(step, TaskStep):
            ctx.tasks.append(
                Task(
                    wcet=step.wcet,
                    bcet=step.bcet if step.bcet is not None else step.wcet,
                    platform=platform,
                    priority=step.priority if step.priority is not None else thread.priority,
                    name=f"{instance}.{thread.name}.{step.name}",
                    meta={
                        "instance": instance,
                        "thread": thread.name,
                        "step": step.name,
                        "kind": "code",
                    },
                )
            )
        else:  # CallStep
            _expand_call(ctx, instance, step)


def _expand_call(ctx: _ExpandContext, caller: str, step: CallStep) -> None:
    asm = ctx.assembly
    binding = asm.binding_for(caller, step.method)
    callee_component = asm.instances[binding.callee]
    key = (binding.callee, binding.provided)
    if key in ctx.stack:
        cycle = " -> ".join(f"{i}.{m}" for i, m in ctx.stack + [key])
        raise AssemblyError(
            f"transaction {ctx.root!r}: recursive RPC cycle detected: {cycle}"
        )

    def emit_message(message, direction: str) -> None:
        net_index = asm.platform_index(binding.network)
        link = asm.platform_list()[net_index]
        if not isinstance(link, NetworkLinkPlatform):
            raise AssemblyError(
                f"binding {binding.caller}.{binding.required}: network platform "
                f"{binding.network!r} is not a NetworkLinkPlatform"
            )
        task = message_to_task(message, link, net_index)
        task.name = (
            f"{binding.caller}.{binding.required}.{direction}"
            if not message.name
            else message.name
        )
        task.meta.update(
            {
                "instance": binding.caller,
                "direction": direction,
                "kind": "message",
            }
        )
        ctx.tasks.append(task)

    if binding.request is not None:
        emit_message(binding.request, "request")

    realizer = callee_component.realizer_of(binding.provided)
    ctx.stack.append(key)
    _expand_thread(ctx, binding.callee, realizer)
    ctx.stack.pop()

    if binding.reply is not None:
        emit_message(binding.reply, "reply")


def derive_transactions(
    assembly: SystemAssembly,
    *,
    validate: bool = True,
    require_analyzable: bool = True,
) -> TransactionSystem:
    """Transform *assembly* into an analyzable transaction system.

    Parameters
    ----------
    assembly:
        The wired and placed component assembly.
    validate:
        Run :func:`repro.components.validation.validate_assembly` first and
        raise on hard errors (MIT violations raise; see that module for the
        error taxonomy).
    require_analyzable:
        Refuse components whose local scheduler the analysis does not
        support (EDF); set to ``False`` when deriving only for simulation.

    Returns
    -------
    TransactionSystem
        One transaction per periodic thread, in (instance, thread) insertion
        order, over the assembly's platforms in registration order.
    """
    if validate:
        problems = validate_assembly(assembly)
        hard = [p for p in problems if p.fatal]
        if hard:
            raise AssemblyError(
                "assembly validation failed:\n  "
                + "\n  ".join(str(p) for p in hard)
            )

    if require_analyzable:
        for iname, comp in assembly.instances.items():
            if not comp.scheduler.analyzable:
                raise AssemblyError(
                    f"instance {iname!r} uses local scheduler "
                    f"{comp.scheduler.policy!r}, which the analysis does not "
                    "support; derive with require_analyzable=False for "
                    "simulation-only use"
                )

    transactions: list[Transaction] = []
    for iname, comp in assembly.instances.items():
        for thread in comp.periodic_threads():
            root = f"{iname}.{thread.name}"
            ctx = _ExpandContext(assembly=assembly, tasks=[], stack=[], root=root)
            _expand_thread(ctx, iname, thread)
            if not ctx.tasks:
                raise AssemblyError(
                    f"periodic thread {root!r} produced no tasks"
                )
            transactions.append(
                Transaction(
                    period=thread.period,
                    deadline=thread.deadline,
                    name=root,
                    tasks=ctx.tasks,
                    meta={"instance": iname, "thread": thread.name},
                )
            )

    return TransactionSystem(
        transactions=transactions,
        platforms=assembly.platform_list(),
        name=assembly.name,
    )
