"""Threads and thread bodies (paper Sec. 2.1).

A thread is implemented by a *sequence of tasks and method calls*:

* :class:`TaskStep` -- a piece of code executed by the component itself,
  with its own worst/best-case execution time;
* :class:`CallStep` -- a synchronous invocation of a method of the
  component's required interface (the thread suspends until it returns).

Threads are activated either periodically (:class:`PeriodicThread`) or by a
call to a provided method they *realize* (:class:`EventThread`); the latter
inherit their activation pattern from the method's MIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.util.validation import check_positive

__all__ = ["TaskStep", "CallStep", "Step", "ThreadSpec", "PeriodicThread", "EventThread"]


@dataclass(frozen=True)
class TaskStep:
    """A unit of component code inside a thread body.

    Parameters
    ----------
    name:
        Label of the task (becomes part of the derived task's name).
    wcet, bcet:
        Worst/best-case execution demand in cycles; ``bcet`` defaults to
        ``wcet``.
    priority:
        Optional per-task priority override.  The paper's example needs it:
        its ``compute`` task runs at priority 3 although its thread has
        priority 2.  Defaults to the owning thread's priority.
    """

    name: str
    wcet: float
    bcet: float | None = None
    priority: int | None = None

    def __post_init__(self) -> None:
        check_positive(self.wcet, f"step {self.name!r} wcet")
        if self.bcet is not None:
            if self.bcet < 0 or self.bcet > self.wcet:
                raise ValueError(
                    f"step {self.name!r}: bcet ({self.bcet!r}) must lie in [0, wcet]"
                )


@dataclass(frozen=True)
class CallStep:
    """A synchronous invocation of a required-interface method."""

    method: str

    def __post_init__(self) -> None:
        if not self.method or not isinstance(self.method, str):
            raise ValueError(f"CallStep method must be a non-empty string, got {self.method!r}")


Step = Union[TaskStep, CallStep]


@dataclass(frozen=True)
class ThreadSpec:
    """Common thread attributes; use the concrete subclasses."""

    name: str
    priority: int
    body: tuple[Step, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("thread name must be non-empty")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise TypeError(f"thread {self.name!r}: priority must be int")
        object.__setattr__(self, "body", tuple(self.body))
        for k, step in enumerate(self.body):
            if not isinstance(step, (TaskStep, CallStep)):
                raise TypeError(
                    f"thread {self.name!r} body[{k}] is neither TaskStep nor "
                    f"CallStep: {step!r}"
                )

    def task_steps(self) -> list[TaskStep]:
        """The :class:`TaskStep` entries of the body, in order."""
        return [s for s in self.body if isinstance(s, TaskStep)]

    def call_steps(self) -> list[CallStep]:
        """The :class:`CallStep` entries of the body, in order."""
        return [s for s in self.body if isinstance(s, CallStep)]


@dataclass(frozen=True)
class PeriodicThread(ThreadSpec):
    """A time-triggered thread: released every *period*, due after *deadline*.

    Each periodic thread roots one transaction in the Sec. 2.4 transform.
    """

    period: float = 0.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive(self.period, f"thread {self.name!r} period")
        if self.deadline is None:
            object.__setattr__(self, "deadline", float(self.period))
        check_positive(self.deadline, f"thread {self.name!r} deadline")
        if not self.body:
            raise ValueError(f"periodic thread {self.name!r} has an empty body")


@dataclass(frozen=True)
class EventThread(ThreadSpec):
    """An event-triggered thread realizing a provided method.

    Its activation pattern (the MIT) comes from the provided method it is
    attached to; its body is spliced into the caller's transaction by the
    transform.
    """

    realizes: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.realizes:
            raise ValueError(f"event thread {self.name!r} must realize a provided method")
        if not self.body:
            raise ValueError(f"event thread {self.name!r} has an empty body")
