"""Component interfaces: provided and required methods (paper Sec. 2.1).

Each method is characterized by its signature (here: a name and an optional
parameter list kept as documentation) and a *worst-case activation pattern*,
restricted -- as in the paper -- to a single value: the minimum inter-arrival
time (MIT) between two consecutive calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive

__all__ = ["ProvidedMethod", "RequiredMethod"]


@dataclass(frozen=True)
class ProvidedMethod:
    """A method a component offers to the rest of the system.

    Parameters
    ----------
    name:
        The method name (``A.provided.read`` in the paper's dot notation is
        spelled ``component.provided_method("read")`` here).
    mit:
        Minimum inter-arrival time the component is able to sustain between
        two consecutive invocations (``A.provided.read.T``).
    parameters:
        Optional signature documentation; not interpreted.
    """

    name: str
    mit: float
    parameters: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"method name must be a non-empty string, got {self.name!r}")
        check_positive(self.mit, f"provided method {self.name!r} mit")


@dataclass(frozen=True)
class RequiredMethod:
    """A method a component needs from its environment.

    ``mit`` declares the fastest rate at which the component will *issue*
    calls; assembly validation checks it against both the callers' actual
    invocation rates and the callee's sustainable MIT.
    """

    name: str
    mit: float
    parameters: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"method name must be a non-empty string, got {self.name!r}")
        check_positive(self.mit, f"required method {self.name!r} mit")
