"""System assembly: instantiating, wiring and placing components (Sec. 2.2.1).

An assembly holds named component *instances*, the *bindings* connecting
required to provided methods, the abstract *platforms*, and the *placement*
of each instance on a platform.  Cross-node RPCs may attach request/reply
messages to a binding; the transform then inserts message tasks on the named
network platform, exactly as Section 2.4 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.component import Component
from repro.model.system import PlatformLike
from repro.platforms.network import Message

__all__ = ["Binding", "Placement", "SystemAssembly"]


@dataclass(frozen=True)
class Binding:
    """One wire: ``caller.required -> callee.provided``.

    ``request``/``reply`` are optional messages carried over the *network*
    platform (by name); when absent the call is a local function call with
    no transmission delay, as in the paper.
    """

    caller: str
    required: str
    callee: str
    provided: str
    request: Message | None = None
    reply: Message | None = None
    network: str | None = None

    def __post_init__(self) -> None:
        if (self.request or self.reply) and not self.network:
            raise ValueError(
                f"binding {self.caller}.{self.required} -> "
                f"{self.callee}.{self.provided}: messages declared without a "
                "network platform"
            )


@dataclass(frozen=True)
class Placement:
    """Placement of an instance on a platform (by platform name)."""

    instance: str
    platform: str


class SystemAssembly:
    """A concrete system: instances + bindings + platforms + placements.

    Typical construction order (any order is accepted; consistency is
    checked at :meth:`derive_transactions` / ``validate`` time)::

        asm = SystemAssembly(name="sensor-fusion")
        asm.add_instance("Sensor1", sensor_reading_component())
        asm.add_platform("Pi1", LinearSupplyPlatform(0.4, 1, 1))
        asm.place("Sensor1", platform="Pi1")
        asm.bind("Integrator", "readSensor1", "Sensor1", "read")
        system = asm.derive_transactions()
    """

    def __init__(self, *, name: str = "") -> None:
        self.name = name
        self.instances: dict[str, Component] = {}
        self.bindings: dict[tuple[str, str], Binding] = {}
        self._platform_names: list[str] = []
        self._platforms: dict[str, PlatformLike] = {}
        self.placements: dict[str, str] = {}

    # -- construction -------------------------------------------------------------

    def add_instance(self, instance_name: str, component: Component) -> None:
        """Register a component instance under *instance_name*."""
        if not instance_name:
            raise ValueError("instance name must be non-empty")
        if instance_name in self.instances:
            raise ValueError(f"instance {instance_name!r} already exists")
        if not isinstance(component, Component):
            raise TypeError(f"{component!r} is not a Component")
        self.instances[instance_name] = component

    def add_platform(self, platform_name: str, platform: PlatformLike) -> None:
        """Register an abstract platform; insertion order fixes its index."""
        if not platform_name:
            raise ValueError("platform name must be non-empty")
        if platform_name in self._platforms:
            raise ValueError(f"platform {platform_name!r} already exists")
        for attr in ("rate", "delay", "burstiness"):
            if not hasattr(platform, attr):
                raise TypeError(f"platform {platform_name!r} lacks {attr!r}")
        self._platform_names.append(platform_name)
        self._platforms[platform_name] = platform

    def place(self, instance_name: str, *, platform: str) -> None:
        """Map *instance_name* onto the platform named *platform*.

        The paper dedicates one abstract platform per component; placing two
        instances on the same platform is allowed (they then share the
        priority space, e.g. the paper's Integrator and Background on Pi3).
        """
        self.placements[instance_name] = platform

    def bind(
        self,
        caller: str,
        required: str,
        callee: str,
        provided: str,
        *,
        request: Message | None = None,
        reply: Message | None = None,
        network: str | None = None,
    ) -> None:
        """Wire ``caller.required`` to ``callee.provided``.

        Pass *request*/*reply* messages plus a *network* platform name to
        model a remote procedure call across nodes.
        """
        key = (caller, required)
        if key in self.bindings:
            raise ValueError(f"{caller}.{required} is already bound")
        self.bindings[key] = Binding(
            caller=caller,
            required=required,
            callee=callee,
            provided=provided,
            request=request,
            reply=reply,
            network=network,
        )

    # -- lookups ------------------------------------------------------------------

    @property
    def platform_names(self) -> list[str]:
        """Platform names in index order."""
        return list(self._platform_names)

    def platform_index(self, platform_name: str) -> int:
        """Index of *platform_name* in the derived system's platform list."""
        try:
            return self._platform_names.index(platform_name)
        except ValueError:
            raise KeyError(f"unknown platform {platform_name!r}") from None

    def platform_list(self) -> list[PlatformLike]:
        """Platform objects in index order."""
        return [self._platforms[n] for n in self._platform_names]

    def platform_of(self, instance_name: str) -> int:
        """Platform index an instance is placed on."""
        try:
            pname = self.placements[instance_name]
        except KeyError:
            raise KeyError(f"instance {instance_name!r} has no placement") from None
        return self.platform_index(pname)

    def binding_for(self, caller: str, required: str) -> Binding:
        """The binding of ``caller.required`` (raises ``KeyError`` if unbound)."""
        try:
            return self.bindings[(caller, required)]
        except KeyError:
            raise KeyError(f"{caller}.{required} is not bound") from None

    # -- derivation ---------------------------------------------------------------

    def derive_transactions(self, **kwargs):
        """Run the Sec. 2.4 transform; see :func:`repro.components.transform.derive_transactions`."""
        from repro.components.transform import derive_transactions

        return derive_transactions(self, **kwargs)

    def validate(self) -> list:
        """Run assembly validation; see :func:`repro.components.validation.validate_assembly`."""
        from repro.components.validation import validate_assembly

        return validate_assembly(self)
