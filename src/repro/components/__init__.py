"""The component model of the paper (Sections 2.1-2.2) and its transform.

A *component* consists of a provided interface, a required interface and an
implementation -- a set of threads plus a local scheduler.  Components are
instantiated and wired into a :class:`~repro.components.assembly.SystemAssembly`
(Section 2.2.1), placed on abstract platforms, and finally transformed into
a :class:`~repro.model.system.TransactionSystem` by the recursive expansion
of Section 2.4 (:mod:`repro.components.transform`), optionally inserting
message tasks on network platforms for cross-node RPCs.
"""

from repro.components.interface import ProvidedMethod, RequiredMethod
from repro.components.threads import (
    CallStep,
    EventThread,
    PeriodicThread,
    TaskStep,
    ThreadSpec,
)
from repro.components.scheduler import (
    EDFScheduler,
    FixedPriorityScheduler,
    LocalScheduler,
)
from repro.components.component import Component
from repro.components.assembly import Binding, Placement, SystemAssembly
from repro.components.transform import derive_transactions
from repro.components.validation import (
    AssemblyError,
    MITViolation,
    validate_assembly,
)

__all__ = [
    "ProvidedMethod",
    "RequiredMethod",
    "TaskStep",
    "CallStep",
    "ThreadSpec",
    "PeriodicThread",
    "EventThread",
    "LocalScheduler",
    "FixedPriorityScheduler",
    "EDFScheduler",
    "Component",
    "SystemAssembly",
    "Binding",
    "Placement",
    "derive_transactions",
    "validate_assembly",
    "AssemblyError",
    "MITViolation",
]
