"""Assembly validation: wiring, placement, cycles and MIT consistency.

:func:`validate_assembly` returns a list of :class:`Problem` records;
problems marked ``fatal`` abort the transform.  The MIT checks implement the
contract of Section 2.1: a provided method's MIT is "the maximum number of
invocations the method is able to handle in an interval of time", so the
*aggregate* invocation rate reaching it -- over all bound callers and all
call sites, each firing once per root periodic thread's period -- must not
exceed ``1/MIT``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.components.threads import CallStep, EventThread

__all__ = ["AssemblyError", "Problem", "MITViolation", "validate_assembly"]


class AssemblyError(RuntimeError):
    """Raised by the transform when the assembly is inconsistent."""


@dataclass(frozen=True)
class Problem:
    """One validation finding."""

    kind: str
    message: str
    fatal: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "error" if self.fatal else "warning"
        return f"[{tag}:{self.kind}] {self.message}"


class MITViolation(AssemblyError):
    """Raised when invocation rates exceed a provided method's MIT."""


def _structural(assembly) -> list[Problem]:
    problems: list[Problem] = []
    known_platforms = set(assembly.platform_names)

    for iname, comp in assembly.instances.items():
        pname = assembly.placements.get(iname)
        if pname is None:
            problems.append(
                Problem("placement", f"instance {iname!r} has no placement", True)
            )
        elif pname not in known_platforms:
            problems.append(
                Problem(
                    "placement",
                    f"instance {iname!r} placed on unknown platform {pname!r}",
                    True,
                )
            )
        # Every call site must be bound.
        for thread in comp.threads:
            for step in thread.body:
                if isinstance(step, CallStep) and (iname, step.method) not in assembly.bindings:
                    problems.append(
                        Problem(
                            "binding",
                            f"{iname}.{thread.name} calls {step.method!r} but "
                            f"{iname}.{step.method} is not bound",
                            True,
                        )
                    )

    for (caller, required), b in assembly.bindings.items():
        if caller not in assembly.instances:
            problems.append(
                Problem("binding", f"binding from unknown instance {caller!r}", True)
            )
            continue
        if b.callee not in assembly.instances:
            problems.append(
                Problem("binding", f"binding to unknown instance {b.callee!r}", True)
            )
            continue
        caller_comp = assembly.instances[caller]
        callee_comp = assembly.instances[b.callee]
        try:
            caller_comp.required_method(required)
        except KeyError:
            problems.append(
                Problem(
                    "binding",
                    f"{caller!r} does not declare required method {required!r}",
                    True,
                )
            )
        try:
            callee_comp.provided_method(b.provided)
        except KeyError:
            problems.append(
                Problem(
                    "binding",
                    f"{b.callee!r} does not provide method {b.provided!r}",
                    True,
                )
            )
            continue
        try:
            callee_comp.realizer_of(b.provided)
        except KeyError:
            problems.append(
                Problem(
                    "binding",
                    f"{b.callee}.{b.provided} is bound but no thread realizes it",
                    True,
                )
            )
        if b.network is not None and b.network not in known_platforms:
            problems.append(
                Problem(
                    "binding",
                    f"binding {caller}.{required}: unknown network platform {b.network!r}",
                    True,
                )
            )
    return problems


def _call_graph(assembly) -> nx.DiGraph:
    """Directed graph over (instance, provided-method) nodes via bindings.

    An edge ``(A, m) -> (B, n)`` exists when the thread realizing ``A.m``
    (or, for roots, a periodic thread of ``A``, encoded as ``(A, thread)``)
    contains a call bound to ``B.n``.
    """
    g = nx.DiGraph()
    for iname, comp in assembly.instances.items():
        for thread in comp.threads:
            src = (
                (iname, f"provided:{thread.realizes}")
                if isinstance(thread, EventThread)
                else (iname, f"thread:{thread.name}")
            )
            g.add_node(src)
            for step in thread.body:
                if isinstance(step, CallStep):
                    b = assembly.bindings.get((iname, step.method))
                    if b is None:
                        continue
                    dst = (b.callee, f"provided:{b.provided}")
                    g.add_edge(src, dst)
    return g


def _cycles(assembly) -> list[Problem]:
    g = _call_graph(assembly)
    problems = []
    for cycle in nx.simple_cycles(g):
        pretty = " -> ".join(f"{i}.{m}" for i, m in cycle)
        problems.append(
            Problem("cycle", f"recursive RPC cycle: {pretty}", True)
        )
    return problems


def _call_rates(assembly) -> dict[tuple[str, str], float]:
    """Aggregate invocation rate per (callee instance, provided method).

    Each call site fires once per activation of the root periodic thread;
    nested calls inherit the root's rate.  Cycles must have been excluded
    before calling this.
    """
    rates: dict[tuple[str, str], float] = {}

    def walk(instance: str, thread, rate: float) -> None:
        for step in thread.body:
            if not isinstance(step, CallStep):
                continue
            b = assembly.bindings.get((instance, step.method))
            if b is None:
                continue
            key = (b.callee, b.provided)
            rates[key] = rates.get(key, 0.0) + rate
            try:
                realizer = assembly.instances[b.callee].realizer_of(b.provided)
            except KeyError:
                continue
            walk(b.callee, realizer, rate)

    for iname, comp in assembly.instances.items():
        for thread in comp.periodic_threads():
            walk(iname, thread, 1.0 / thread.period)
    return rates


def _mit_checks(assembly) -> list[Problem]:
    problems: list[Problem] = []
    tol = 1e-9
    for (callee, provided), rate in _call_rates(assembly).items():
        method = assembly.instances[callee].provided_method(provided)
        if rate > 1.0 / method.mit + tol:
            problems.append(
                Problem(
                    "mit",
                    f"{callee}.{provided}: aggregate invocation rate "
                    f"{rate:.6g}/unit exceeds the sustainable 1/MIT = "
                    f"{1.0 / method.mit:.6g} (MIT = {method.mit:g})",
                    True,
                )
            )
    # Caller-side declarations: a required method invoked faster than its
    # own declared MIT is a specification smell, not a hard error.
    for iname, comp in assembly.instances.items():
        for thread in comp.periodic_threads():
            per_method: dict[str, int] = {}
            for step in thread.body:
                if isinstance(step, CallStep):
                    per_method[step.method] = per_method.get(step.method, 0) + 1
            for mname, count in per_method.items():
                declared = comp.required_method(mname).mit
                actual_mit = thread.period / count
                if actual_mit < declared - 1e-9:
                    problems.append(
                        Problem(
                            "mit",
                            f"{iname}.{thread.name} invokes {mname!r} every "
                            f"{actual_mit:g} but declares MIT {declared:g}",
                            False,
                        )
                    )
    return problems


def validate_assembly(assembly) -> list[Problem]:
    """Run all checks; fatal problems abort the transform.

    Order matters: structural problems (dangling bindings, missing
    placements) make the later graph/MIT analyses meaningless, so when any
    structural problem is fatal the function returns early with just those.
    """
    problems = _structural(assembly)
    if any(p.fatal for p in problems):
        return problems
    problems += _cycles(assembly)
    if any(p.fatal for p in problems):
        return problems
    problems += _mit_checks(assembly)
    return problems
