"""Command-line interface.

Operates on JSON system files (see :mod:`repro.io.spec` for the schema):

.. code-block:: console

   $ python -m repro analyze system.json [--method exact] [--trace]
   $ python -m repro simulate system.json [--horizon T] [--seed N]
   $ python -m repro validate system.json [--seeds 0,1,2]
   $ python -m repro design system.json [--rate-tol X]
   $ python -m repro example --out system.json   # dump the paper example
   $ python -m repro campaign --grid utilization=0.3:0.9:5 --systems 100 \\
         --methods reduced,dedicated --workers 4   # acceptance-ratio sweep
   $ python -m repro campaign ... --shard 0/2 --json shard0.json  # host A
   $ python -m repro campaign ... --shard 1/2 --json shard1.json  # host B
   $ python -m repro campaign-merge shard0.json shard1.json --json all.json
   $ python -m repro campaign-dispatch ... --workers 4 --shards 16 \\
         --partition lpt --json all.json   # unattended sharded deployment
   $ python -m repro serve --port 8000 --store store/  # analysis service

Exit status: 0 when the system is schedulable (or the command succeeded),
1 when unschedulable / bounds violated, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis import AnalysisConfig, analyze
from repro.io import load_system, save_system, system_to_dict
from repro.opt import minimize_bandwidth
from repro.paper import render_table3, sensor_fusion_system
from repro.viz import format_table

# The simulator needs NumPy; the analysis surface of the CLI must not
# (the no-NumPy CI leg pins `import repro`).  Lazy-imported by the
# simulate/validate/gantt commands instead.

__all__ = ["main", "build_parser"]


def _add_campaign_spec_args(p: argparse.ArgumentParser) -> None:
    """The flags that define a CampaignSpec, shared by ``campaign`` and
    ``campaign-dispatch`` (so a dispatch deployment is described exactly
    like the single run it must reproduce)."""
    p.add_argument(
        "--grid", action="append", default=[], metavar="AXIS=SPEC",
        help="grid axis: AXIS=start:stop:count (linspace) or AXIS=v1,v2,... "
        "(repeatable; default 'utilization=0.3:0.9:5')",
    )
    p.add_argument("--transactions", type=int, default=3,
                   help="transactions per system (default 3)")
    p.add_argument("--platforms", type=int, default=2,
                   help="abstract platforms per system (default 2)")
    p.add_argument("--tasks", default="1,3", metavar="LO,HI",
                   help="tasks per transaction range (default 1,3)")
    p.add_argument("--deadline-factor", type=float, default=1.0)
    p.add_argument("--systems", type=int, default=20,
                   help="random systems per grid cell (default 20)")
    p.add_argument("--methods", default="reduced",
                   help="comma-separated method names (default 'reduced'; "
                   "'verdict' runs the early-exit verdict pipeline with "
                   "monotone level pruning along the utilization sweep -- "
                   "identical verdicts, no exact WCRTs on pruned cells)")
    p.add_argument("--generator", default="random_system")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-warm-start", action="store_true",
                   help="disable warm-start chaining along the sweep axis")
    p.add_argument("--spec", dest="spec_file", metavar="PATH",
                   help="load the full CampaignSpec from this JSON file "
                   "(as campaign-dispatch hands to its shard "
                   "subprocesses); the grid/shape flags above are then "
                   "ignored")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical scheduling analysis for component-based "
        "real-time systems (Lorente/Lipari/Bini 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="response-time analysis + verdict")
    p_an.add_argument("system", help="JSON system file")
    p_an.add_argument("--method", choices=("reduced", "exact"), default="reduced")
    p_an.add_argument(
        "--best-case", choices=("simple", "sound", "iterative"), default="simple"
    )
    p_an.add_argument(
        "--mode", choices=("exact", "verdict"), default="exact",
        help="'verdict' computes only the schedulability verdict "
        "(identical to exact mode) with early-exit solves and cheap "
        "pre-filters; response times are then partial/upper bounds",
    )
    p_an.add_argument("--trace", action="store_true",
                      help="print the (J, R) iteration table")
    p_an.add_argument("--report", action="store_true",
                      help="print the full text report instead of the summary")
    p_an.add_argument("--store", metavar="DIR",
                      help="content-addressed result store: serve the "
                      "verdict/WCRTs from DIR when this (system, config) "
                      "was analyzed before, else analyze and write back; "
                      "ignored with --trace/--report (those need the live "
                      "iteration state)")

    p_sim = sub.add_parser("simulate", help="discrete-event simulation")
    p_sim.add_argument("system")
    p_sim.add_argument("--horizon", type=float, default=None)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--placement", choices=("early", "late", "random"), default="random"
    )
    p_sim.add_argument("--scheduler", choices=("fixed_priority", "edf"),
                       default="fixed_priority")

    p_val = sub.add_parser("validate", help="simulation-vs-analysis soundness")
    p_val.add_argument("system")
    p_val.add_argument("--seeds", default="0,1,2",
                       help="comma-separated seed list")
    p_val.add_argument("--horizon", type=float, default=None)

    p_des = sub.add_parser("design", help="bandwidth-minimal platform design")
    p_des.add_argument("system")
    p_des.add_argument("--rate-tol", type=float, default=1e-3)
    p_des.add_argument("--out", help="write the designed system here")

    p_dv = sub.add_parser(
        "derive",
        help="expand a component assembly (Sec. 2.4) into a system file",
    )
    p_dv.add_argument("assembly", help="JSON assembly file")
    p_dv.add_argument("--out", required=True, help="output system JSON path")

    p_g = sub.add_parser("gantt", help="render a simulated schedule as text")
    p_g.add_argument("system")
    p_g.add_argument("--horizon", type=float, default=None)
    p_g.add_argument("--window", type=float, default=None,
                     help="render only the first WINDOW time units")
    p_g.add_argument("--width", type=int, default=100)
    p_g.add_argument("--seed", type=int, default=0)
    p_g.add_argument(
        "--placement", choices=("early", "late", "random"), default="random"
    )

    p_ex = sub.add_parser("example", help="dump the paper's example system")
    p_ex.add_argument("--out", help="output path (default: stdout)")

    p_cp = sub.add_parser(
        "campaign",
        help="parallel schedulability campaign over random systems",
        description="Run a grid of analysis campaigns: generate random "
        "transaction systems per grid cell, analyze each with the chosen "
        "methods on a process pool, and aggregate acceptance ratios and "
        "iteration accounting.",
    )
    _add_campaign_spec_args(p_cp)
    p_cp.add_argument("--workers", type=int, default=1,
                      help="process-pool size; 1 runs inline")
    p_cp.add_argument("--chunk-size", type=int, default=None,
                      help="chains per pool task (default: auto)")
    p_cp.add_argument("--json", dest="json_out", metavar="PATH",
                      help="write the full CampaignResult as JSON")
    p_cp.add_argument("--csv", dest="csv_out", metavar="PATH",
                      help="write the per-cell table as CSV")
    p_cp.add_argument("--acceptance-csv", metavar="PATH",
                      help="write the aggregated acceptance table as CSV")
    p_cp.add_argument("--resume", metavar="PATH",
                      help="load a partial results JSON; completed chains "
                      "(matched by cell seed + parameter point) are reused "
                      "and new cells merged in")
    p_cp.add_argument("--stream-csv", metavar="PATH",
                      help="append each finished cell to this CSV as it "
                      "completes (bounded-memory export for huge sweeps)")
    p_cp.add_argument("--no-collect", action="store_true",
                      help="with --stream-csv: do not keep cells in memory "
                      "(summary output and --json/--csv are then empty); "
                      "streamed rows travel through the shared-memory ring "
                      "instead of the executor's pickle channel")
    p_cp.add_argument("--shard", metavar="K/N",
                      help="run only shard K of a deterministic N-way "
                      "chain partition (0-based, e.g. 0/2); the union of "
                      "all shards is bit-identical to the unsharded run "
                      "and reassembles with 'campaign-merge'")
    p_cp.add_argument("--partition", choices=("hash", "lpt"),
                      default="hash",
                      help="shard partition strategy: 'hash' interleaves "
                      "by seed hash (balances chain counts), 'lpt' does a "
                      "longest-processing-time assignment over per-chain "
                      "costs (see --cost-manifest); every shard of one "
                      "deployment must use the same strategy and manifest")
    p_cp.add_argument("--cost-manifest", metavar="PATH",
                      help="chain-cost source for --partition lpt: a "
                      "previous campaign result JSON of the same spec "
                      "(its chain_costs block records per-chain wall "
                      "seconds) or a bare {chain index: seconds} mapping; "
                      "omitted, lpt falls back to the levels x tasks "
                      "size proxy")
    p_cp.add_argument("--collect", choices=("pickle", "shm"),
                      default="pickle",
                      help="worker result transport: executor pickling "
                      "(default) or a multiprocessing.shared_memory ring "
                      "of fixed-width records with pickle fallback")
    p_cp.add_argument("--max-cells", type=int, default=None,
                      help="stop after this many cells and return the "
                      "truncated partial result (deterministic simulated "
                      "kill; resume later with --resume)")
    p_cp.add_argument("--checkpoint", metavar="PATH",
                      help="atomically rewrite a partial result JSON here "
                      "as cells complete, so a killed run leaves a valid "
                      "--resume input behind")
    p_cp.add_argument("--checkpoint-every", type=int, default=16,
                      metavar="N",
                      help="cells between --checkpoint writes (default 16)")
    p_cp.add_argument("--store", metavar="DIR",
                      help="content-addressed result store: cells whose "
                      "(system, execution context, level, method) was "
                      "solved by any previous run sharing DIR are served "
                      "from disk (bit-identical to solving them), fresh "
                      "solves are written back")
    p_cp.add_argument("--chains", metavar="I,J,...",
                      help="run only the chains with these plan indices "
                      "(the dispatcher's elastic-split primitive; any "
                      "disjoint cover unions bit-identically to the full "
                      "run); mutually exclusive with --shard")
    p_cp.add_argument("--heartbeat", metavar="PATH",
                      help="atomically rewrite a liveness JSON here "
                      "(monotonic cells-completed counter + beat "
                      "sequence) so a dispatcher can tell progressing "
                      "from stalled from dead")
    p_cp.add_argument("--heartbeat-interval", type=float, default=1.0,
                      metavar="S",
                      help="max seconds between --heartbeat writes "
                      "(default 1.0)")

    p_cd = sub.add_parser(
        "campaign-dispatch",
        help="drive a sharded campaign to completion and auto-merge",
        description="Over-partition the campaign into fine shards, run "
        "them on a pool of worker subprocesses fed from a shared queue "
        "(fast workers steal the long tail), relaunch dead or truncated "
        "shards with --resume at their partial output, and auto-merge "
        "the union -- bit-identical to a single-process run.",
    )
    _add_campaign_spec_args(p_cd)
    p_cd.add_argument("--workers", type=int, default=2,
                      help="concurrent shard subprocesses (default 2)")
    p_cd.add_argument("--shards", type=int, default=None,
                      help="shard count (default: 4x workers; finer "
                      "shards give the queue more to balance with)")
    p_cd.add_argument("--partition", choices=("hash", "lpt"),
                      default="hash",
                      help="chain partition strategy (see 'campaign')")
    p_cd.add_argument("--cost-manifest", metavar="PATH",
                      help="chain-cost source for --partition lpt "
                      "(see 'campaign')")
    p_cd.add_argument("--work-dir", metavar="DIR",
                      help="directory for spec/shard/checkpoint files "
                      "(default: a temporary directory, removed on "
                      "success)")
    p_cd.add_argument("--hosts", metavar="ssh:HOST[,HOST...]",
                      help="run shard commands through 'ssh HOST' with "
                      "worker slots pinned round-robin to the hosts "
                      "(shared --work-dir filesystem, or --transport "
                      "copyback); default runs local subprocesses")
    p_cd.add_argument("--transport", choices=("shared", "copyback"),
                      default="shared",
                      help="file movement to/from workers: 'shared' "
                      "(default) assumes one filesystem; 'copyback' "
                      "gives every host its own work dir under "
                      "WORK_DIR/hosts/HOST -- inputs staged out per "
                      "launch, results/checkpoints/heartbeats pulled "
                      "back per poll, every transfer timeout-bounded, "
                      "retried, digest-verified and atomically landed")
    p_cd.add_argument("--host-blacklist-after", type=int, default=None,
                      metavar="N",
                      help="host-level failure domains: quarantine a "
                      "host after N consecutive failures (dead/stalled/"
                      "timeout shards, transport failures) and "
                      "reschedule its shards onto healthy hosts "
                      "(default: off)")
    p_cd.add_argument("--host-cooldown", type=float, default=60.0,
                      metavar="S",
                      help="seconds a quarantined host sits out before "
                      "re-admission on probation -- one probe shard, "
                      "and a probation failure retires the host for "
                      "the rest of the dispatch (default 60)")
    p_cd.add_argument("--max-attempts", type=int, default=3,
                      help="launch attempts per shard before giving up "
                      "(default 3)")
    p_cd.add_argument("--checkpoint-every", type=int, default=16,
                      metavar="N",
                      help="cells between shard checkpoint writes "
                      "(default 16)")
    p_cd.add_argument("--stall-after", type=float, default=None,
                      metavar="S",
                      help="heartbeat liveness window: kill and relaunch "
                      "a shard whose cells-completed counter has not "
                      "advanced for S seconds (still-beating shards count "
                      "as stalled, silent ones as dead; default: off)")
    p_cd.add_argument("--heartbeat-interval", type=float, default=1.0,
                      metavar="S",
                      help="seconds between shard heartbeat writes "
                      "(default 1.0; capped at --stall-after/4 so a "
                      "healthy shard can never look silent)")
    p_cd.add_argument("--shard-timeout", type=float, default=None,
                      metavar="S",
                      help="flat wall-clock budget per shard attempt; "
                      "exceeding it counts as a failed attempt "
                      "(default: off)")
    p_cd.add_argument("--timeout-factor", type=float, default=None,
                      metavar="K",
                      help="with --cost-manifest: per-shard budget of "
                      "K x predicted cost + --timeout-floor seconds "
                      "(--shard-timeout wins when both are set)")
    p_cd.add_argument("--timeout-floor", type=float, default=30.0,
                      metavar="S",
                      help="constant term of the --timeout-factor budget "
                      "(default 30)")
    p_cd.add_argument("--backoff", dest="backoff_base", type=float,
                      default=1.0, metavar="S",
                      help="base of the exponential relaunch backoff "
                      "min(max, S * 2^(attempt-1) + jitter) with "
                      "deterministic seeded jitter (default 1.0; 0 "
                      "relaunches immediately)")
    p_cd.add_argument("--backoff-max", type=float, default=60.0,
                      metavar="S",
                      help="upper bound of the relaunch backoff "
                      "(default 60)")
    p_cd.add_argument("--split-after", type=float, default=None,
                      metavar="S",
                      help="elastic straggler splitting: when the queue "
                      "is empty, slots sit idle and one shard has held "
                      "its slot for S seconds, re-partition its "
                      "unfinished chains onto the idle slots (resumed "
                      "from its checkpoint; the union stays bit-identical;"
                      " default: off)")
    p_cd.add_argument("--json", dest="json_out", metavar="PATH",
                      help="write the merged CampaignResult as JSON "
                      "(its chain_costs block is the natural "
                      "--cost-manifest for the next deployment)")
    p_cd.add_argument("--csv", dest="csv_out", metavar="PATH",
                      help="write the merged per-cell table as CSV")
    p_cd.add_argument("--acceptance-csv", metavar="PATH",
                      help="write the merged acceptance table as CSV")
    p_cd.add_argument("--store", metavar="DIR",
                      help="content-addressed result store passed to every "
                      "shard via --store (must be shared storage when "
                      "--hosts spans machines); repeated or overlapping "
                      "dispatches then skip already-solved cells")

    p_cm = sub.add_parser(
        "campaign-merge",
        help="merge shard/partial campaign result JSONs into one",
        description="Union campaign result files produced with --shard "
        "(or truncated/partial runs) into one canonical-order result. "
        "All inputs must share the exact campaign spec; overlapping "
        "cells and duplicate shard indices are rejected.  Exit status 1 "
        "when the union is still missing cells of the spec.",
    )
    p_cm.add_argument("inputs", nargs="+", metavar="RESULT_JSON",
                      help="campaign result JSON files to merge")
    p_cm.add_argument("--json", dest="json_out", metavar="PATH",
                      help="write the merged CampaignResult as JSON")
    p_cm.add_argument("--csv", dest="csv_out", metavar="PATH",
                      help="write the merged per-cell table as CSV")
    p_cm.add_argument("--acceptance-csv", metavar="PATH",
                      help="write the merged acceptance table as CSV")
    p_cm.add_argument("--quiet", action="store_true",
                      help="suppress the summary table")

    p_ss = sub.add_parser(
        "store-stats",
        help="entry count / size / age histogram of a result store",
        description="Walk a content-addressed result store directory "
        "(as used by analyze/campaign/campaign-dispatch --store) and "
        "report entry count, payload bytes, and an age histogram.",
    )
    p_ss.add_argument("store", metavar="DIR", help="store root directory")
    p_ss.add_argument("--json", dest="json_out", action="store_true",
                      help="emit machine-readable JSON instead of a table")

    p_sg = sub.add_parser(
        "store-gc",
        help="prune a result store by age and/or spec reachability",
        description="Remove store entries condemned by EVERY given "
        "criterion (intersection): older than --older-than, and/or not "
        "reachable from the campaign spec in --spec.  With no criterion "
        "nothing is removed.  Orphaned temp files from crashed writers "
        "are swept once a day old regardless.",
    )
    p_sg.add_argument("store", metavar="DIR", help="store root directory")
    p_sg.add_argument("--older-than", metavar="AGE",
                      help="prune entries whose mtime is older than AGE: "
                      "30s, 10m, 4h, 7d, or bare seconds")
    p_sg.add_argument("--spec", dest="spec_file", metavar="PATH",
                      help="keep only entries a run of this campaign "
                      "spec would consult (a spec JSON as written by "
                      "campaign-dispatch work dirs, or any campaign "
                      "result JSON -- its spec block is used)")
    p_sg.add_argument("--dry-run", action="store_true",
                      help="report what would be removed without deleting")

    p_sv = sub.add_parser(
        "serve",
        help="run the analysis service (persistent worker pool)",
        description="Long-running HTTP service in front of the engine: "
        "POST /analyze (sync single-system analysis), POST /campaigns "
        "(spec JSON -> async job on a persistent process pool, or the "
        "dispatcher for large sweeps), GET /campaigns/{id}[/result], "
        "GET /healthz, GET /stats.  The pool outlives requests so driver "
        "caches amortize across calls; --store makes the content-"
        "addressed result store the response cache.",
    )
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=8000)
    p_sv.add_argument("--store", metavar="DIR",
                      help="content-addressed result store shared by "
                      "/analyze and campaign jobs (and any CLI run "
                      "pointing --store at the same DIR)")
    p_sv.add_argument("--pool-workers", type=int, default=2,
                      help="persistent process-pool size for campaign "
                      "jobs; 1 runs campaigns inline (default 2)")
    p_sv.add_argument("--job-runners", type=int, default=1,
                      help="concurrent campaign jobs (default 1)")
    p_sv.add_argument("--max-queue", type=int, default=8,
                      help="bounded job-queue length; overflow answers "
                      "429 + Retry-After (default 8)")
    p_sv.add_argument("--max-cells", type=int, default=20000,
                      help="per-request ceiling on planned analyses "
                      "(cells x methods); larger specs answer 413 "
                      "(default 20000)")
    p_sv.add_argument("--retry-after", type=float, default=2.0,
                      metavar="S",
                      help="seconds advertised in the 429 Retry-After "
                      "header (default 2)")
    p_sv.add_argument("--dispatch-workers", type=int, default=2,
                      help="subprocess slots for backend=dispatch jobs "
                      "(default 2)")
    p_sv.add_argument("--dispatch-shards", type=int, default=None,
                      help="shard count for backend=dispatch jobs "
                      "(default: 4x dispatch workers)")
    p_sv.add_argument("--http", dest="http_impl",
                      choices=("auto", "uvicorn", "stdlib"),
                      default="auto",
                      help="HTTP layer: uvicorn when installed, else the "
                      "bundled stdlib bridge (default auto)")
    return parser


def _parse_grid_axis(text: str) -> tuple[str, tuple]:
    """Parse ``axis=start:stop:count`` or ``axis=v1,v2,...``."""
    if "=" not in text:
        raise ValueError(f"grid axis {text!r} must look like AXIS=SPEC")
    axis, spec = text.split("=", 1)
    axis = axis.strip()
    spec = spec.strip()
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"grid range {spec!r} must be start:stop:count"
            )
        start, stop, count = float(parts[0]), float(parts[1]), int(parts[2])
        if count < 1:
            raise ValueError(f"grid range {spec!r} needs count >= 1")
        from repro.batch import linspace_levels

        return axis, linspace_levels(start, stop, count)
    values = tuple(float(v) for v in spec.split(",") if v != "")
    if not values:
        raise ValueError(f"grid axis {text!r} has no values")
    # Integer axes (e.g. n_transactions) should stay integers.
    if all(v == int(v) for v in values) and "." not in spec:
        return axis, tuple(int(v) for v in values)
    return axis, values


def _analyze_store(args: argparse.Namespace, config: AnalysisConfig):
    """``(store, key)`` for a ``--store`` analyze call, or ``(None, None)``.

    ``--trace``/``--report`` need the live iteration state a served
    result cannot provide, so the store is skipped for them.  The store
    modules live under ``repro.batch`` (whose import pulls in NumPy), so
    a missing NumPy downgrades ``--store`` to a warning instead of
    breaking the otherwise NumPy-free analyze path.
    """
    if not args.store or args.trace or args.report:
        return None, None
    try:
        from repro.batch.canonical import analysis_config_hash, system_hash
        from repro.batch.store import ResultStore, StoreKey
    except ImportError as exc:
        print(
            f"warning: --store unavailable ({exc}); analyzing uncached",
            file=sys.stderr,
        )
        return None, None
    system = load_system(args.system)
    key = StoreKey(
        system_hash(system), analysis_config_hash(config), None, "analyze"
    )
    return ResultStore(args.store), key


def _cmd_analyze(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    config = AnalysisConfig(
        method=args.method, best_case=args.best_case, mode=args.mode
    )
    store, store_key = _analyze_store(args, config)
    served = store.get(store_key) if store is not None else None
    if served is not None and (
        not isinstance(served.get("transaction_wcrt"), list)
        or len(served["transaction_wcrt"]) != len(system.transactions)
    ):
        served = None  # malformed/foreign entry: analyze normally
    if served is not None:
        schedulable = bool(served["schedulable"])
        wcrts = [float(w) for w in served["transaction_wcrt"]]
    else:
        result = analyze(
            system, config=config, trace=args.trace or args.report
        )
        schedulable = result.schedulable
        wcrts = [
            result.transaction_wcrt[i]
            for i in range(len(system.transactions))
        ]
        if store is not None:
            store.put(
                store_key,
                {
                    "schedulable": bool(result.schedulable),
                    "converged": bool(result.converged),
                    "transaction_wcrt": [float(w) for w in wcrts],
                },
            )

    if args.report:
        from repro.analysis.report import text_report

        print(text_report(system, result, include_trace=args.trace))
        return 0 if result.schedulable else 1

    rows = [
        [
            tr.name or f"Gamma{i + 1}",
            f"{wcrts[i]:.4g}",
            f"{tr.deadline:g}",
            f"{tr.deadline - wcrts[i]:.4g}",
            "yes" if wcrts[i] <= tr.deadline + 1e-9 else "NO",
        ]
        for i, tr in enumerate(system.transactions)
    ]
    print(format_table(
        ["transaction", "wcrt", "deadline", "slack", "meets"],
        rows,
        title=f"analysis of {args.system} (method={args.method})",
    ))
    if args.trace:
        print()
        for i in range(len(system.transactions)):
            if len(system.transactions[i].tasks) > 1:
                print(render_table3(result, transaction=i))
                print()
    if served is not None:
        print(f"(served from result store {args.store})")
    print(f"schedulable: {schedulable}")
    return 0 if schedulable else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim import SimulationConfig, simulate

    system = load_system(args.system)
    cfg = SimulationConfig(
        horizon=args.horizon,
        seed=args.seed,
        placement=args.placement,
        scheduler=args.scheduler,
    )
    trace = simulate(system, config=cfg)
    rows = []
    for (i, j), st in sorted(trace.tasks.items()):
        name = system.transactions[i].tasks[j].name or f"({i},{j})"
        rows.append([
            name, str(st.count), f"{st.min_response:.4g}",
            f"{st.mean_response:.4g}", f"{st.max_response:.4g}",
            str(st.misses),
        ])
    print(format_table(
        ["task", "jobs", "min R", "mean R", "max R", "misses"],
        rows,
        title=f"simulation of {args.system} "
              f"(horizon={trace.horizon:g}, seed={args.seed})",
    ))
    misses = trace.total_misses()
    print(f"total deadline misses: {misses}")
    return 0 if misses == 0 else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.sim import validate_against_analysis

    system = load_system(args.system)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s != "")
    report = validate_against_analysis(system, seeds=seeds, horizon=args.horizon)
    rows = [
        [str(key), f"{report.observed.get(key, 0.0):.4g}",
         f"{report.bound[key]:.4g}", f"{report.tightness(*key):.2f}"]
        for key in sorted(report.bound)
    ]
    print(format_table(
        ["task", "observed", "bound", "tightness"],
        rows,
        title=f"validation of {args.system} ({report.runs} runs)",
    ))
    print(f"sound: {report.sound}")
    if report.violations:
        print(f"bound violations: {report.violations}")
    if report.best_violations:
        print(f"best-case violations: {report.best_violations}")
    return 0 if report.sound else 1


def _cmd_design(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    design = minimize_bandwidth(system, rate_tol=args.rate_tol)
    rows = [
        [getattr(p, "name", "") or f"Pi{k + 1}",
         f"{system.platforms[k].rate:.4g}", f"{p.rate:.4g}"]
        for k, p in enumerate(design.platforms)
    ]
    print(format_table(
        ["platform", "rate before", "rate after"],
        rows,
        title=f"bandwidth-minimal design of {args.system}",
    ))
    print(f"feasible: {design.feasible}; total bandwidth "
          f"{design.initial_bandwidth:.4g} -> {design.total_bandwidth:.4g} "
          f"(saves {design.savings:.1%})")
    if args.out and design.feasible:
        save_system(design.designed_system(system), args.out)
        print(f"designed system written to {args.out}")
    return 0 if design.feasible else 1


def _cmd_derive(args: argparse.Namespace) -> int:
    from repro.io import load_assembly

    assembly = load_assembly(args.assembly)
    problems = assembly.validate()
    for p in problems:
        print(p)
    system = assembly.derive_transactions()
    save_system(system, args.out)
    print(
        f"derived {len(system.transactions)} transactions / "
        f"{system.total_tasks()} tasks over {len(system.platforms)} "
        f"platforms -> {args.out}"
    )
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.sim import SimulationConfig, simulate
    from repro.viz.gantt import render_gantt

    system = load_system(args.system)
    cfg = SimulationConfig(
        horizon=args.horizon,
        seed=args.seed,
        placement=args.placement,
        record_intervals=True,
    )
    trace = simulate(system, config=cfg)
    end = args.window if args.window is not None else trace.horizon
    print(render_gantt(system, trace, end=min(end, trace.horizon),
                       width=args.width))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    system = sensor_fusion_system()
    if args.out:
        save_system(system, args.out)
        print(f"paper example written to {args.out}")
    else:
        json.dump(system_to_dict(system), sys.stdout, indent=2)
        print()
    return 0


def _spec_from_args(args: argparse.Namespace):
    """Build the CampaignSpec described by the shared campaign flags."""
    from pathlib import Path

    from repro.batch import CampaignSpec

    if getattr(args, "spec_file", None):
        return CampaignSpec.from_dict(
            json.loads(Path(args.spec_file).read_text())
        )

    grid_specs = args.grid or ["utilization=0.3:0.9:5"]
    grid: dict[str, tuple] = {}
    for text in grid_specs:
        axis, values = _parse_grid_axis(text)
        grid[axis] = values

    try:
        lo, hi = (int(x) for x in args.tasks.split(","))
    except ValueError:
        raise ValueError(
            f"--tasks must be LO,HI (two integers), got {args.tasks!r}"
        ) from None
    base = {
        "n_platforms": args.platforms,
        "n_transactions": args.transactions,
        "tasks_per_transaction": (lo, hi),
        "deadline_factor": args.deadline_factor,
    }
    if args.generator != "random_system":
        # Custom generators define their own parameter space; make the
        # discard of random_system shape flags visible instead of silent.
        defaults = {"transactions": 3, "platforms": 2, "tasks": "1,3",
                    "deadline_factor": 1.0}
        overridden = [
            f"--{name.replace('_', '-')}"
            for name, default in defaults.items()
            if getattr(args, name) != default
        ]
        if overridden:
            print(
                f"warning: generator {args.generator!r} ignores "
                f"{', '.join(overridden)} (random_system shape flags)",
                file=sys.stderr,
            )
        base = {}

    return CampaignSpec(
        grid=grid,
        base=base,
        methods=tuple(m.strip() for m in args.methods.split(",") if m.strip()),
        systems_per_cell=args.systems,
        seed=args.seed,
        generator=args.generator,
        warm_start=not args.no_warm_start,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.batch import Campaign, CampaignResult, parse_shard
    from repro.batch.campaign import load_cost_manifest

    spec = _spec_from_args(args)
    resume_from = (
        CampaignResult.load_json(args.resume) if args.resume else None
    )
    shard = parse_shard(args.shard) if args.shard else None
    chain_indices = None
    if args.chains:
        try:
            chain_indices = [
                int(token)
                for token in args.chains.split(",")
                if token.strip()
            ]
        except ValueError:
            raise ValueError(
                "--chains must be a comma-separated list of chain plan "
                f"indices, got {args.chains!r}"
            ) from None
    cost_manifest = (
        load_cost_manifest(args.cost_manifest)
        if args.cost_manifest
        else None
    )
    result = Campaign(spec).run(
        workers=args.workers,
        chunk_size=args.chunk_size,
        resume_from=resume_from,
        stream_csv=args.stream_csv,
        collect="none" if args.no_collect else args.collect,
        shard=shard,
        partition=args.partition,
        cost_manifest=cost_manifest,
        max_cells=args.max_cells,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        store=args.store,
        chain_indices=chain_indices,
        heartbeat=args.heartbeat,
        heartbeat_interval=args.heartbeat_interval,
    )
    if args.store:
        print(
            f"result store {args.store}: {result.store_hits} cells served, "
            f"{result.store_misses} solved and stored"
        )
    if shard is not None:
        # Under --no-collect the result keeps no cells; the streamed count
        # is then the number of analyses this shard executed.
        executed = result.n_analyses or result.streamed_cells
        print(f"shard {shard[0]}/{shard[1]}: "
              f"{executed} of {spec.n_analyses()} total analyses")
    if result.reused_cells:
        print(f"resumed: {result.reused_cells} cells reused from {args.resume}"
              + (f" ({result.reseed_solves} warm-start re-seed solves)"
                 if result.reseed_solves else ""))
    if result.truncated:
        print(f"truncated after {args.max_cells} cells (--max-cells); "
              "the JSON result can be resumed with --resume")
    if args.stream_csv:
        print(f"streamed {result.streamed_cells} cells to {args.stream_csv}")
    print(result.format_summary())
    if args.json_out:
        from repro.batch.faults import CORRUPT_PAYLOAD, WorkerFaults

        worker_faults = WorkerFaults.from_env()
        if worker_faults is not None and worker_faults.corrupts_output():
            # Fault injection: damage the output exactly where a crash
            # mid-write would, exercising crash-consistent readers.
            from pathlib import Path as _Path

            _Path(args.json_out).write_text(CORRUPT_PAYLOAD)
            print(f"fault injection: corrupt output written to {args.json_out}")
        else:
            print(
                f"campaign result written to {result.save_json(args.json_out)}"
            )
    if args.csv_out:
        print(f"per-cell CSV written to {result.write_cells_csv(args.csv_out)}")
    if args.acceptance_csv:
        print(
            "acceptance CSV written to "
            f"{result.write_acceptance_csv(args.acceptance_csv)}"
        )
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    from repro.batch import CampaignResult, CampaignSpec, merge_campaign_results

    results = [CampaignResult.load_json(path) for path in args.inputs]
    merged = merge_campaign_results(results)
    spec = CampaignSpec.from_dict(merged.spec)
    expected = spec.n_analyses()
    missing = expected - len(merged.cells)
    print(
        f"merged {len(results)} result file(s): "
        f"{len(merged.cells)}/{expected} cells"
    )
    if missing:
        print(
            f"warning: {missing} cells of the spec are still missing "
            "(merge more shards, or complete with --resume)",
            file=sys.stderr,
        )
    if not args.quiet:
        print(merged.format_summary())
    if args.json_out:
        print(f"merged result written to {merged.save_json(args.json_out)}")
    if args.csv_out:
        print(f"per-cell CSV written to {merged.write_cells_csv(args.csv_out)}")
    if args.acceptance_csv:
        print(
            "acceptance CSV written to "
            f"{merged.write_acceptance_csv(args.acceptance_csv)}"
        )
    return 1 if missing else 0


def _cmd_campaign_dispatch(args: argparse.Namespace) -> int:
    import shutil
    import signal
    import tempfile
    from pathlib import Path

    from repro.batch.campaign import load_cost_manifest
    from repro.batch.dispatch import (
        CampaignDispatcher,
        DispatchError,
        DispatchInterrupted,
        LocalBackend,
        SshBackend,
    )

    spec = _spec_from_args(args)
    workers = args.workers
    shards = args.shards if args.shards is not None else 4 * workers
    cost_manifest = (
        load_cost_manifest(args.cost_manifest)
        if args.cost_manifest
        else None
    )
    backend: LocalBackend | SshBackend = LocalBackend()
    if args.hosts:
        scheme, sep, host_list = args.hosts.partition(":")
        if not sep or scheme != "ssh" or not host_list:
            raise ValueError(
                f"--hosts must look like ssh:HOST[,HOST...], got "
                f"{args.hosts!r}"
            )
        backend = SshBackend(
            [h.strip() for h in host_list.split(",") if h.strip()]
        )
    temp_dir = args.work_dir is None
    work_dir = Path(
        args.work_dir
        if args.work_dir is not None
        else tempfile.mkdtemp(prefix="repro-dispatch-")
    )
    transport = None
    if args.transport == "copyback":
        from repro.batch.transport import CopyBackTransport

        hosts = backend.hosts if isinstance(backend, SshBackend) else ["local"]
        transport = CopyBackTransport(
            work_dir,
            {h: work_dir / "hosts" / h for h in hosts},
            seed=spec.seed,
        )
    dispatcher = CampaignDispatcher(
        spec,
        shards=shards,
        workers=workers,
        partition=args.partition,
        cost_manifest=cost_manifest,
        work_dir=work_dir,
        backend=backend,
        max_attempts=args.max_attempts,
        checkpoint_every=args.checkpoint_every,
        stall_after=args.stall_after,
        heartbeat_interval=args.heartbeat_interval,
        shard_timeout=args.shard_timeout,
        timeout_factor=args.timeout_factor,
        timeout_floor=args.timeout_floor,
        backoff_base=args.backoff_base,
        backoff_max=args.backoff_max,
        split_after=args.split_after,
        store=args.store,
        transport=transport,
        host_blacklist_after=args.host_blacklist_after,
        host_cooldown=args.host_cooldown,
    )

    # SIGTERM (systemd stop, cluster preemption, a plain `kill`) takes
    # the same graceful path SIGINT already does: the dispatcher
    # terminates every child shard, saves the merged partial, and the
    # work dir stays resumable.
    def _graceful_term(signum, frame):
        raise KeyboardInterrupt

    _unset = object()
    previous_term = _unset
    try:
        previous_term = signal.signal(signal.SIGTERM, _graceful_term)
    except ValueError:
        pass  # not the main thread (embedded use); SIGINT still works
    try:
        report = dispatcher.run()
    except DispatchInterrupted as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        print(f"shard files kept under {work_dir}", file=sys.stderr)
        return 1
    except DispatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(f"shard files kept under {work_dir}", file=sys.stderr)
        return 1
    finally:
        if previous_term is not _unset:
            signal.signal(signal.SIGTERM, previous_term)
    print(report.format_summary())
    print(report.result.format_summary())
    if args.json_out:
        path = report.result.save_json(args.json_out)
        print(f"merged result written to {path}")
    if args.csv_out:
        print(
            "per-cell CSV written to "
            f"{report.result.write_cells_csv(args.csv_out)}"
        )
    if args.acceptance_csv:
        print(
            "acceptance CSV written to "
            f"{report.result.write_acceptance_csv(args.acceptance_csv)}"
        )
    if temp_dir:
        shutil.rmtree(work_dir, ignore_errors=True)
    return 0


_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _parse_age(text: str) -> float:
    """``"30s"/"10m"/"4h"/"7d"`` (or bare seconds) -> seconds."""
    raw = text.strip().lower()
    unit = 1.0
    if raw and raw[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        seconds = float(raw) * unit
    except ValueError:
        raise ValueError(
            f"--older-than must be a number with optional s/m/h/d "
            f"suffix, got {text!r}"
        ) from None
    if seconds < 0:
        raise ValueError("--older-than must be >= 0")
    return seconds


def _open_store(root: str):
    """A ResultStore for *root*, or ``None`` when NumPy is missing.

    The store backend itself is stdlib-only, but it lives under
    ``repro.batch`` whose package import pulls in NumPy; a missing NumPy
    should degrade to a clear error, not a traceback.
    """
    try:
        from repro.batch.store import ResultStore
    except ImportError as exc:
        print(f"error: store tooling unavailable ({exc})", file=sys.stderr)
        return None
    return ResultStore(root)


def _cmd_store_stats(args: argparse.Namespace) -> int:
    from pathlib import Path

    store = _open_store(args.store)
    if store is None:
        return 2
    if not Path(args.store).is_dir():
        print(f"error: {args.store} is not a directory", file=sys.stderr)
        return 2
    stats = store.stats()
    histogram = store.age_histogram()
    if args.json_out:
        json.dump(
            {
                "root": str(store.root),
                "entries": stats.entries,
                "bytes": stats.bytes,
                "age_histogram": {label: n for label, n in histogram},
            },
            sys.stdout,
        )
        print()
        return 0
    print(f"result store {store.root}")
    print(f"  entries: {stats.entries}")
    print(f"  payload: {stats.bytes} bytes")
    print("  age histogram:")
    for label, count in histogram:
        print(f"    {label:>5}: {count}")
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    from pathlib import Path

    store = _open_store(args.store)
    if store is None:
        return 2
    if not Path(args.store).is_dir():
        print(f"error: {args.store} is not a directory", file=sys.stderr)
        return 2
    if not args.older_than and not args.spec_file:
        print(
            "error: store-gc needs --older-than and/or --spec "
            "(refusing to interpret no criteria as 'prune everything')",
            file=sys.stderr,
        )
        return 2
    older_than_s = _parse_age(args.older_than) if args.older_than else None
    keep_digests = None
    if args.spec_file:
        from repro.batch import CampaignSpec
        from repro.batch.campaign import store_reachable_digests

        data = json.loads(Path(args.spec_file).read_text())
        if isinstance(data, dict) and isinstance(data.get("spec"), dict):
            data = data["spec"]  # a campaign result JSON: use its spec
        spec = CampaignSpec.from_dict(data)
        keep_digests = store_reachable_digests(spec)
        print(
            f"spec {args.spec_file}: {len(keep_digests)} reachable "
            "entr(ies) kept"
        )
    result = store.gc(
        older_than_s=older_than_s,
        keep_digests=keep_digests,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"{verb} {result.removed} entr(ies) "
        f"({result.bytes_freed} bytes), kept {result.kept}"
        + (
            f"; swept {result.tmp_removed} orphaned temp file(s)"
            if result.tmp_removed
            else ""
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # The serve subsystem sits on repro.batch (NumPy) and optionally
    # uvicorn; both degrade to clear errors, not tracebacks.
    try:
        from repro.serve import ServeConfig, create_app
        from repro.serve.server import serve_forever
    except ImportError as exc:
        print(
            f"error: the analysis service is unavailable ({exc}); "
            "it needs NumPy (the campaign engine runs on it)",
            file=sys.stderr,
        )
        return 2
    app = create_app(ServeConfig(
        store=args.store,
        pool_workers=args.pool_workers,
        job_runners=args.job_runners,
        max_queue=args.max_queue,
        max_cells_per_job=args.max_cells,
        retry_after_s=args.retry_after,
        dispatch_workers=args.dispatch_workers,
        dispatch_shards=args.dispatch_shards,
    ))
    return serve_forever(
        app, host=args.host, port=args.port, http_impl=args.http_impl
    )


_COMMANDS = {
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "validate": _cmd_validate,
    "design": _cmd_design,
    "derive": _cmd_derive,
    "gantt": _cmd_gantt,
    "example": _cmd_example,
    "campaign": _cmd_campaign,
    "campaign-merge": _cmd_campaign_merge,
    "campaign-dispatch": _cmd_campaign_dispatch,
    "store-stats": _cmd_store_stats,
    "store-gc": _cmd_store_gc,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # AssemblyError and friends
        from repro.components.validation import AssemblyError

        if isinstance(exc, AssemblyError):
            print(f"error: {exc}", file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
