"""The stereoscopic sensor-fusion example of the paper.

Three components -- two ``SensorReading`` instances and one
``SensorIntegration`` -- are mapped to three abstract platforms
(Figure 5); the derived transactions and their parameters are the paper's
Tables 1 and 2, and the analysis trace is Table 3.

Reference values embedded here (``paper_table*_rows``) are the *published*
numbers; EXPERIMENTS.md discusses the single cell where the paper's own
equations give a different value (R3 of tau_{1,4}: 31 vs the published 39).
"""

from __future__ import annotations

from repro.model.task import Task
from repro.model.transaction import Transaction
from repro.model.system import TransactionSystem
from repro.platforms.linear import LinearSupplyPlatform

__all__ = [
    "sensor_fusion_system",
    "sensor_fusion_components",
    "paper_table1_rows",
    "paper_table2_rows",
    "paper_table3_rows",
    "PAPER_TABLE3_CORRECTED",
]

# Platform indices in the system's platform list.
PI1, PI2, PI3 = 0, 1, 2


def sensor_fusion_system() -> TransactionSystem:
    """The transaction system of Figure 5 / Tables 1-2, built directly.

    Transaction Gamma_1 is ``Integrator.Thread2`` expanded through the two
    RPCs (``init -> readSensor1 -> readSensor2 -> compute``); Gamma_2/Gamma_3
    are the sensors' periodic acquisition threads; Gamma_4 is a background
    load on the integrator platform.
    """
    platforms = [
        LinearSupplyPlatform(0.4, 1.0, 1.0, name="Pi1(Sensor1)"),
        LinearSupplyPlatform(0.4, 1.0, 1.0, name="Pi2(Sensor2)"),
        LinearSupplyPlatform(0.2, 2.0, 1.0, name="Pi3(Integrator)"),
    ]
    g1 = Transaction(
        period=50.0,
        deadline=50.0,
        name="Gamma1",
        tasks=[
            Task(wcet=1.0, bcet=0.8, platform=PI3, priority=2, name="tau_1_1:init"),
            Task(wcet=1.0, bcet=0.8, platform=PI1, priority=1, name="tau_1_2:readSensor1"),
            Task(wcet=1.0, bcet=0.8, platform=PI2, priority=1, name="tau_1_3:readSensor2"),
            Task(wcet=1.0, bcet=0.8, platform=PI3, priority=3, name="tau_1_4:compute"),
        ],
    )
    g2 = Transaction(
        period=15.0,
        deadline=15.0,
        name="Gamma2",
        tasks=[Task(wcet=1.0, bcet=0.25, platform=PI1, priority=3, name="tau_2_1:sensor1.poll")],
    )
    g3 = Transaction(
        period=15.0,
        deadline=15.0,
        name="Gamma3",
        tasks=[Task(wcet=1.0, bcet=0.25, platform=PI2, priority=3, name="tau_3_1:sensor2.poll")],
    )
    g4 = Transaction(
        period=70.0,
        deadline=70.0,
        name="Gamma4",
        tasks=[Task(wcet=7.0, bcet=5.0, platform=PI3, priority=1, name="tau_4_1:background")],
    )
    return TransactionSystem(
        transactions=[g1, g2, g3, g4],
        platforms=platforms,
        name="sensor-fusion (paper Sec. 2.2 / Fig. 5)",
    )


def sensor_fusion_components():
    """The same system expressed with the component model (Figures 1-2).

    Returns a :class:`repro.components.assembly.SystemAssembly` whose
    :meth:`~repro.components.assembly.SystemAssembly.derive_transactions`
    reproduces :func:`sensor_fusion_system` (benchmark E6 asserts this).

    Imported lazily so :mod:`repro.paper` does not depend on
    :mod:`repro.components` at import time.
    """
    from repro.components import (
        Component,
        EventThread,
        PeriodicThread,
        ProvidedMethod,
        RequiredMethod,
        SystemAssembly,
        TaskStep,
        CallStep,
    )

    def sensor_reading(poll_priority: int = 2, rpc_priority: int = 1) -> Component:
        return Component(
            name="SensorReading",
            provided=[ProvidedMethod("read", mit=50.0)],
            required=[],
            threads=[
                PeriodicThread(
                    name="Thread1",
                    period=15.0,
                    deadline=15.0,
                    priority=poll_priority,
                    body=[TaskStep("poll", wcet=1.0, bcet=0.25)],
                ),
                EventThread(
                    name="Thread2",
                    realizes="read",
                    priority=rpc_priority,
                    body=[TaskStep("serve_read", wcet=1.0, bcet=0.8)],
                ),
            ],
        )

    integrator = Component(
        name="SensorIntegration",
        provided=[ProvidedMethod("read", mit=50.0)],
        required=[
            RequiredMethod("readSensor1", mit=50.0),
            RequiredMethod("readSensor2", mit=50.0),
        ],
        threads=[
            EventThread(
                name="Thread1",
                realizes="read",
                priority=1,
                body=[TaskStep("serve_read", wcet=1.0, bcet=0.8)],
            ),
            PeriodicThread(
                name="Thread2",
                period=50.0,
                deadline=50.0,
                priority=2,
                body=[
                    TaskStep("init", wcet=1.0, bcet=0.8, priority=2),
                    CallStep("readSensor1"),
                    CallStep("readSensor2"),
                    TaskStep("compute", wcet=1.0, bcet=0.8, priority=3),
                ],
            ),
        ],
    )

    background = Component(
        name="Background",
        provided=[],
        required=[],
        threads=[
            PeriodicThread(
                name="Thread1",
                period=70.0,
                deadline=70.0,
                priority=1,
                body=[TaskStep("load", wcet=7.0, bcet=5.0)],
            )
        ],
    )

    assembly = SystemAssembly(name="sensor-fusion")
    assembly.add_instance("Sensor1", sensor_reading())
    assembly.add_instance("Sensor2", sensor_reading())
    assembly.add_instance("Integrator", integrator)
    assembly.add_instance("Load", background)
    assembly.bind("Integrator", "readSensor1", "Sensor1", "read")
    assembly.bind("Integrator", "readSensor2", "Sensor2", "read")
    assembly.place("Sensor1", platform="Pi1")
    assembly.place("Sensor2", platform="Pi2")
    assembly.place("Integrator", platform="Pi3")
    assembly.place("Load", platform="Pi3")
    assembly.add_platform("Pi1", LinearSupplyPlatform(0.4, 1.0, 1.0, name="Pi1"))
    assembly.add_platform("Pi2", LinearSupplyPlatform(0.4, 1.0, 1.0, name="Pi2"))
    assembly.add_platform("Pi3", LinearSupplyPlatform(0.2, 2.0, 1.0, name="Pi3"))
    return assembly


# ---------------------------------------------------------------------------
# Published reference values
# ---------------------------------------------------------------------------

def paper_table1_rows() -> list[dict]:
    """Table 1 of the paper: task parameters (phi_min is the derived offset)."""
    return [
        dict(task="tau_1_1", platform="Pi3", bcet=0.8, wcet=1.0, period=50, deadline=50, priority=2, phi_min=0.0),
        dict(task="tau_1_2", platform="Pi1", bcet=0.8, wcet=1.0, period=50, deadline=50, priority=1, phi_min=3.0),
        dict(task="tau_1_3", platform="Pi2", bcet=0.8, wcet=1.0, period=50, deadline=50, priority=1, phi_min=4.0),
        dict(task="tau_1_4", platform="Pi3", bcet=0.8, wcet=1.0, period=50, deadline=50, priority=3, phi_min=5.0),
        dict(task="tau_2_1", platform="Pi1", bcet=0.25, wcet=1.0, period=15, deadline=15, priority=3, phi_min=0.0),
        dict(task="tau_3_1", platform="Pi2", bcet=0.25, wcet=1.0, period=15, deadline=15, priority=3, phi_min=0.0),
        dict(task="tau_4_1", platform="Pi3", bcet=5.0, wcet=7.0, period=70, deadline=70, priority=1, phi_min=0.0),
    ]


def paper_table2_rows() -> list[dict]:
    """Table 2 of the paper: platform triples."""
    return [
        dict(platform="Pi1(Sensor 1)", alpha=0.4, delta=1.0, beta=1.0),
        dict(platform="Pi2(Sensor 2)", alpha=0.4, delta=1.0, beta=1.0),
        dict(platform="Pi3(Integrator 3)", alpha=0.2, delta=2.0, beta=1.0),
    ]


#: Table 3 as published. ``None`` marks cells the paper leaves blank
#: (the task had already converged).
def paper_table3_rows() -> list[dict]:
    """Table 3 of the paper: (J, R) per outer iteration for Gamma_1."""
    return [
        dict(task="tau_1_1", J=[0, 0, None, None, None], R=[12, 12, None, None, None]),
        dict(task="tau_1_2", J=[0, 9, 9, None, None], R=[9, 18, 18, None, None]),
        dict(task="tau_1_3", J=[0, 5, 14, 14, None], R=[10, 15, 24, 24, None]),
        dict(task="tau_1_4", J=[0, 5, 10, 19, 19], R=[12, 17, 22, 39, 39]),
    ]


#: The value our implementation (and the paper's own equations -- see
#: EXPERIMENTS.md) obtains for the published ``R = 39`` cells of tau_{1,4}.
PAPER_TABLE3_CORRECTED: float = 31.0
