"""Regenerate the paper's tables as formatted text.

Used by the benchmarks (E1-E3) and the examples; the heavy lifting is done
by :mod:`repro.analysis`, this module only formats.
"""

from __future__ import annotations

import math

from repro.analysis.interfaces import SystemAnalysis
from repro.model.system import TransactionSystem
from repro.viz.tables import format_table

__all__ = ["render_table1", "render_table2", "render_table3"]


def _fmt(x: float | None, digits: int = 4) -> str:
    if x is None:
        return ""
    if isinstance(x, float) and math.isinf(x):
        return "inf"
    if float(x) == int(x):
        return str(int(x))
    return f"{x:.{digits}g}"


def render_table1(system: TransactionSystem, analysis: SystemAnalysis) -> str:
    """Table 1: per-task parameters with the derived minimum offsets."""
    header = ["Task", "Platform", "Cbest", "C", "T", "D", "p", "phi_min"]
    rows = []
    for i, tr in enumerate(system.transactions):
        for j, task in enumerate(tr.tasks):
            platform = system.platforms[task.platform]
            rows.append([
                task.name or f"tau_{i + 1}_{j + 1}",
                getattr(platform, "name", "") or f"Pi{task.platform + 1}",
                _fmt(task.bcet),
                _fmt(task.wcet),
                _fmt(tr.period),
                _fmt(tr.deadline),
                str(task.priority),
                _fmt(analysis.tasks[(i, j)].offset),
            ])
    return format_table(header, rows, title="Table 1: task parameters")


def render_table2(system: TransactionSystem) -> str:
    """Table 2: the platform triples."""
    header = ["Platform", "alpha", "Delta", "beta"]
    rows = [
        [
            getattr(p, "name", "") or f"Pi{m + 1}",
            _fmt(p.rate),
            _fmt(p.delay),
            _fmt(p.burstiness),
        ]
        for m, p in enumerate(system.platforms)
    ]
    return format_table(header, rows, title="Table 2: platform parameters")


def render_table3(
    analysis: SystemAnalysis, transaction: int = 0
) -> str:
    """Table 3: the (J, R) iteration trace of one transaction.

    Requires the analysis to have been run with ``trace=True``.  Cells after
    a task's convergence are left blank, matching the paper's layout.
    """
    if not analysis.iterations:
        raise ValueError("analysis was run without trace=True; no iterations recorded")
    keys = sorted(k for k in analysis.tasks if k[0] == transaction)
    n_iter = len(analysis.iterations)

    header = ["Task"]
    for n in range(n_iter):
        header += [f"J({n})", f"R({n})"]

    rows = []
    for (i, j) in keys:
        row = [analysis.tasks[(i, j)].name or f"tau_{i + 1}_{j + 1}"]
        converged_at: int | None = None
        prev: tuple[float, float] | None = None
        for n, it in enumerate(analysis.iterations):
            jv = it.jitters[(i, j)]
            rv = it.responses[(i, j)]
            if prev is not None and converged_at is None and (jv, rv) == prev:
                converged_at = n
            prev = (jv, rv)
            if converged_at is not None and n > converged_at:
                row += ["", ""]
            else:
                row += [_fmt(jv), _fmt(rv)]
        rows.append(row)
    return format_table(
        header, rows, title=f"Table 3: iteration trace of transaction {transaction + 1}"
    )
