"""The paper's worked example (Sections 2.2, 4) as ready-made objects.

* :func:`~repro.paper.example.sensor_fusion_system` -- the transaction
  system of Figure 5 with the parameters of Tables 1-2.
* :func:`~repro.paper.example.sensor_fusion_components` -- the same system
  expressed as components (Figures 1-2), from which the transform of
  Section 2.4 re-derives the transactions.
* :mod:`~repro.paper.tables` -- regenerate Tables 1, 2 and 3 as formatted
  text, used by the benchmarks and EXPERIMENTS.md.
"""

from repro.paper.example import (
    PAPER_TABLE3_CORRECTED,
    paper_table1_rows,
    paper_table2_rows,
    paper_table3_rows,
    sensor_fusion_components,
    sensor_fusion_system,
)
from repro.paper.tables import (
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "PAPER_TABLE3_CORRECTED",
    "sensor_fusion_system",
    "sensor_fusion_components",
    "paper_table1_rows",
    "paper_table2_rows",
    "paper_table3_rows",
    "render_table1",
    "render_table2",
    "render_table3",
]
